//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API the workload generators use:
//! the [`Rng`] extension trait (`gen_range`, `gen_bool`, `gen`), the
//! [`SeedableRng`] constructor `seed_from_u64`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a small, fast,
//! high-quality generator. It is *not* the real `rand` StdRng (ChaCha12),
//! so streams differ from upstream `rand`, but every consumer in this
//! workspace only relies on determinism-per-seed and reasonable uniformity,
//! both of which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method:
/// negligible bias without a rejection loop's unbounded work).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait, matching the `rand 0.8` method names.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n2 = s2 ^ s0;
            let mut n3 = s3 ^ s1;
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.state = [n0, n1, n2, n3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((ratio - 0.25).abs() < 0.01, "got {ratio}");
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
