//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the thin slice of the `bytes` API it actually uses: a
//! growable, zero-initialisable byte buffer ([`BytesMut`]) that freezes into
//! a cheaply-cloneable immutable buffer ([`Bytes`]). The semantics match the
//! real crate for this subset; the implementation favours simplicity over
//! the real crate's zero-copy machinery.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
        }
    }
}

/// A mutable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { data: vec![0; len] }
    }

    /// A buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `slice`.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_then_freeze_round_trips() {
        let mut buf = BytesMut::zeroed(8);
        buf[3] = 0xAB;
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(frozen[3], 0xAB);
        assert_eq!(frozen[0], 0);
    }

    #[test]
    fn clones_share_contents() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
    }
}
