//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly). Performance characteristics are
//! those of std, which is more than adequate for the experiment runner's
//! result cache.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning (a panicked holder).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
