//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the `pv-bench` targets use — `Criterion`,
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! wall-clock measurement loop instead of criterion's statistical machinery.
//!
//! Measurement is calibrated: a probe pass estimates the routine's cost and
//! picks an inner batch size so every timed sample covers at least ~2 ms of
//! work. Nanosecond-scale routines (the packing codec, a single array
//! lookup) are therefore batched thousands of times per timer read instead
//! of paying `Instant::now()` overhead per call, while whole-simulation
//! benches keep a batch of one. Mean and minimum wall-clock time per
//! iteration are printed, which is enough to eyeball regressions and to
//! keep `cargo bench` meaningful and runnable offline.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement markers, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time measurement (the only one supported here).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Runs one benchmark body repeatedly and accumulates elapsed time.
#[derive(Debug)]
pub struct Bencher {
    /// Calls of the routine per timed sample (chosen by calibration).
    batch: u64,
    iters_done: u64,
    elapsed: Duration,
    /// Fastest observed per-iteration time across samples.
    min_per_iter: Duration,
}

impl Bencher {
    fn with_batch(batch: u64) -> Self {
        Bencher {
            batch: batch.max(1),
            iters_done: 0,
            elapsed: Duration::ZERO,
            min_per_iter: Duration::MAX,
        }
    }

    /// Times `routine` over the harness-chosen number of iterations: the
    /// whole batch shares one timer read, so per-call timer overhead does
    /// not drown nanosecond-scale routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.elapsed += elapsed;
        self.iters_done += self.batch;
        let per_iter = elapsed / self.batch as u32;
        if per_iter < self.min_per_iter {
            self.min_per_iter = per_iter;
        }
    }
}

/// Lower bound of work per timed sample; batches are sized to reach it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);

fn run_bench(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration probe: one unbatched pass warms the routine up and
    // estimates its cost so cheap routines get a large inner batch.
    let mut probe = Bencher::with_batch(1);
    f(&mut probe);
    let probe_per_iter = if probe.iters_done == 0 {
        Duration::ZERO
    } else {
        probe.elapsed / probe.iters_done as u32
    };
    let batch = if probe_per_iter >= TARGET_SAMPLE_TIME {
        1
    } else {
        (TARGET_SAMPLE_TIME.as_nanos() / probe_per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64
    };
    let mut bencher = Bencher::with_batch(batch);
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.iters_done == 0 {
        eprintln!("bench: {name:<50} (no iterations run)");
        return;
    }
    let mean = bencher.elapsed / bencher.iters_done as u32;
    eprintln!(
        "bench: {name:<50} mean {mean:>10.2?}/iter  min {:>10.2?}/iter ({} iters)",
        bencher.min_per_iter, bencher.iters_done
    );
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 5,
            _measurement: PhantomData,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = (samples as u64).max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Group sample sizes in this workspace label whole-simulation
        // benches; cap the stub's measured iterations so `cargo bench`
        // stays fast while still producing a stable mean.
        let samples = self.sample_size.min(5);
        run_bench(&format!("{}/{name}", self.name), samples, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut counter = 0u32;
        Criterion::default().bench_function("stub", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(10).bench_function("inner", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 2, "warm-up plus measured samples must run");
    }
}
