//! Feedback-directed prefetch throttling.
//!
//! The virtualized predictors share the L2/DRAM path with demand traffic,
//! so useless prefetches are not merely wasted work — they consume the
//! exact bandwidth the application is starving for. This module closes the
//! loop from the prefetch-accuracy windows `pv-mem` samples (used vs.
//! evicted-unused prefetched lines, per epoch) to the issue path:
//! a [`ThrottleController`] maps windowed accuracy to a throttle *level*
//! with hysteresis, each level caps the number of prefetches issued per
//! demand access (the issue degree), and the deepest level may drop
//! predictions entirely.
//!
//! Throttling is strictly opt-in: only the `PrefetcherKind::Throttled`
//! variants construct a [`ThrottledEngine`], and a run without one never
//! consults the controller, so all pre-existing configurations remain
//! bit-identical.

use crate::engine::{EngineSnapshot, PrefetchEngine};
use pv_mem::{AccuracySample, BlockAddr, DataClass, MemoryHierarchy};
use pv_sms::PrefetchAction;

/// Parameters of the accuracy-to-issue-degree feedback loop.
///
/// The controller moves between `max_level + 1` states: level 0 is
/// unthrottled, level `L >= 1` caps the issue degree at
/// `base_degree >> (L - 1)` prefetches per demand access (so each deeper
/// level halves the cap; a cap of zero drops every prediction). Hysteresis
/// comes from the dead band between the two watermarks: a completed epoch
/// below `low_accuracy_pct` tightens one level, one above
/// `high_accuracy_pct` relaxes one level, and anything in between holds —
/// a constant-accuracy stream therefore ratchets monotonically to a fixed
/// point and stays there, it cannot oscillate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThrottleConfig {
    /// Epoch accuracy (per cent) strictly below which the controller
    /// tightens one level.
    pub low_accuracy_pct: u8,
    /// Epoch accuracy (per cent) strictly above which the controller
    /// relaxes one level. Must exceed `low_accuracy_pct`.
    pub high_accuracy_pct: u8,
    /// Deepest throttle level (>= 1).
    pub max_level: u8,
    /// Issue-degree cap at level 1; halves per deeper level.
    pub base_degree: u8,
}

impl ThrottleConfig {
    /// The default feedback policy used by the throttled prefetcher
    /// presets: tighten below 70% accuracy, relax above 85%, four levels
    /// capping the degree at 4, 2, 1 and 0 (the drop level, which keeps
    /// only the probe trickle — the only level that bites on degree-1
    /// engines like Markov). The wide dead band leaves well-predicting
    /// engines (windowed accuracy in the 80s and above) essentially
    /// untouched; only genuinely wasteful streams are suppressed.
    pub fn feedback_default() -> Self {
        ThrottleConfig {
            low_accuracy_pct: 70,
            high_accuracy_pct: 85,
            max_level: 4,
            base_degree: 4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not an ascending pair of percentages,
    /// if there is no throttled level, or if the base degree is zero
    /// (level 1 would already drop everything, leaving deeper levels
    /// meaningless).
    pub fn assert_valid(&self) {
        assert!(
            self.low_accuracy_pct < self.high_accuracy_pct,
            "throttle watermarks must satisfy low < high ({} vs {})",
            self.low_accuracy_pct,
            self.high_accuracy_pct
        );
        assert!(
            self.high_accuracy_pct <= 100,
            "accuracy watermarks are percentages (got {})",
            self.high_accuracy_pct
        );
        assert!(self.max_level >= 1, "throttling needs at least one level");
        assert!(self.base_degree >= 1, "base issue degree must be positive");
    }

    /// The issue-degree cap at `level`: `None` (unlimited) at level 0,
    /// otherwise `base_degree` halved per deeper level, saturating at 0.
    /// A zero cap is the *drop* decision — but the controller still lets a
    /// probe trickle through (one prediction in
    /// [`ThrottleController::PROBE_INTERVAL`]) so the accuracy signal
    /// never starves and the engine can earn its way back.
    pub fn degree_cap(&self, level: u8) -> Option<usize> {
        if level == 0 {
            None
        } else {
            Some((self.base_degree as usize) >> (level - 1))
        }
    }
}

/// One recorded throttle-level transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelChange {
    /// Core whose controller moved.
    pub core: usize,
    /// 1-based index of the accuracy sample that triggered the move.
    pub sample: u64,
    /// The level after the move.
    pub level: u8,
}

/// Throttling statistics, merged over cores into `RunMetrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThrottleMetrics {
    /// Completed accuracy epochs observed.
    pub samples: u64,
    /// Prefetched lines first used by demand accesses (summed over the
    /// observed epochs).
    pub used: u64,
    /// Prefetched lines evicted unused (summed over the observed epochs).
    pub useless: u64,
    /// Predictions dropped by the issue-degree cap.
    pub dropped_prefetches: u64,
    /// Every level transition, in observation order (the throttle trace).
    pub level_trace: Vec<LevelChange>,
    /// Final level of each core's controller.
    pub final_levels: Vec<u8>,
}

impl ThrottleMetrics {
    /// Overall windowed accuracy in `[0, 1]` (zero before any epoch
    /// completes).
    pub fn accuracy(&self) -> f64 {
        AccuracySample {
            used: self.used,
            useless: self.useless,
        }
        .accuracy()
    }

    /// The deepest level any core reached.
    pub fn max_level_reached(&self) -> u8 {
        self.level_trace
            .iter()
            .map(|change| change.level)
            .max()
            .unwrap_or(0)
            .max(self.final_levels.iter().copied().max().unwrap_or(0))
    }

    /// Folds `other` into `self` (aggregation across cores).
    pub fn merge(&mut self, other: &ThrottleMetrics) {
        self.samples += other.samples;
        self.used += other.used;
        self.useless += other.useless;
        self.dropped_prefetches += other.dropped_prefetches;
        self.level_trace.extend_from_slice(&other.level_trace);
        self.final_levels.extend_from_slice(&other.final_levels);
    }
}

/// The per-core feedback state machine: consumes accuracy samples, holds
/// the current throttle level, and enforces the level's issue-degree cap.
#[derive(Debug, Clone)]
pub struct ThrottleController {
    core: usize,
    config: ThrottleConfig,
    level: u8,
    samples: u64,
    used: u64,
    useless: u64,
    dropped: u64,
    /// Predictions seen while at a zero cap; every
    /// [`Self::PROBE_INTERVAL`]-th one is let through as a probe.
    probe_counter: u64,
    trace: Vec<LevelChange>,
}

impl ThrottleController {
    /// At the drop level (cap 0) one prediction in this many is still
    /// issued. Without the probe trickle a fully-dropped engine would
    /// generate no prefetch outcomes, the accuracy windows would never
    /// complete another epoch, and the controller could never relax —
    /// the feedback loop would starve itself permanently.
    pub const PROBE_INTERVAL: u64 = 16;

    /// Creates a controller for `core` starting unthrottled.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(core: usize, config: ThrottleConfig) -> Self {
        config.assert_valid();
        ThrottleController {
            core,
            config,
            level: 0,
            samples: 0,
            used: 0,
            useless: 0,
            dropped: 0,
            probe_counter: 0,
            trace: Vec::new(),
        }
    }

    /// The current throttle level (0 = unthrottled).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Feeds one completed accuracy epoch and returns the (possibly
    /// unchanged) level. Empty epochs cannot occur (epochs complete on an
    /// event), but an all-zero sample would simply hold the level.
    pub fn observe(&mut self, sample: AccuracySample) -> u8 {
        self.samples += 1;
        self.used += sample.used;
        self.useless += sample.useless;
        let before = self.level;
        if sample.below_pct(self.config.low_accuracy_pct) {
            self.level = (self.level + 1).min(self.config.max_level);
        } else if sample.above_pct(self.config.high_accuracy_pct) {
            self.level = self.level.saturating_sub(1);
        }
        if self.level != before {
            self.trace.push(LevelChange {
                core: self.core,
                sample: self.samples,
                level: self.level,
            });
        }
        self.level
    }

    /// Applies the current level's issue-degree cap to the predictions an
    /// engine appended to `out` beyond `start`, dropping the excess (the
    /// later entries — engines emit in priority order). At a zero cap
    /// (the drop decision) everything is dropped except the deterministic
    /// probe trickle that keeps the accuracy signal alive.
    pub fn enforce(&mut self, out: &mut Vec<PrefetchAction>, start: usize) {
        let Some(cap) = self.config.degree_cap(self.level) else {
            return;
        };
        if cap == 0 {
            let mut kept = start;
            for index in start..out.len() {
                self.probe_counter += 1;
                if self.probe_counter.is_multiple_of(Self::PROBE_INTERVAL) {
                    out[kept] = out[index];
                    kept += 1;
                } else {
                    self.dropped += 1;
                }
            }
            out.truncate(kept);
            return;
        }
        let produced = out.len() - start;
        if produced > cap {
            self.dropped += (produced - cap) as u64;
            out.truncate(start + cap);
        }
    }

    /// This controller's contribution to the run's [`ThrottleMetrics`].
    pub fn metrics(&self) -> ThrottleMetrics {
        ThrottleMetrics {
            samples: self.samples,
            used: self.used,
            useless: self.useless,
            dropped_prefetches: self.dropped,
            level_trace: self.trace.clone(),
            final_levels: vec![self.level],
        }
    }

    /// Clears counters and the trace; the level and the probe phase
    /// persist, like the engines' learned state, across the warm-up/
    /// measurement boundary (resetting them would change behaviour at the
    /// window edge).
    pub fn reset_stats(&mut self) {
        self.samples = 0;
        self.used = 0;
        self.useless = 0;
        self.dropped = 0;
        self.trace.clear();
    }
}

/// A [`PrefetchEngine`] decorator that throttles its inner engine's issue
/// stream with a per-core [`ThrottleController`].
///
/// On every data access the wrapper first drains any accuracy epochs the
/// hierarchy completed for this core's application-class prefetches, then
/// lets the inner engine predict, then enforces the resulting issue-degree
/// cap on what it produced.
#[derive(Debug)]
pub struct ThrottledEngine<E> {
    core: usize,
    inner: E,
    controller: ThrottleController,
}

impl<E: PrefetchEngine> ThrottledEngine<E> {
    /// Wraps `inner`, throttled by `config`'s feedback policy.
    pub fn new(core: usize, inner: E, config: ThrottleConfig) -> Self {
        ThrottledEngine {
            core,
            inner,
            controller: ThrottleController::new(core, config),
        }
    }

    /// The controller (for inspection in tests).
    pub fn controller(&self) -> &ThrottleController {
        &self.controller
    }
}

impl<E: PrefetchEngine> PrefetchEngine for ThrottledEngine<E> {
    fn on_l1_evictions(
        &mut self,
        blocks: &[BlockAddr],
        mem: &mut MemoryHierarchy,
        shared: Option<&mut pv_core::SharedPvProxy>,
        now: u64,
    ) {
        self.inner.on_l1_evictions(blocks, mem, shared, now);
    }

    fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut pv_core::SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) {
        let window = mem.prefetch_accuracy_mut(self.core, DataClass::Application);
        while let Some(sample) = window.pop_completed() {
            self.controller.observe(sample);
        }
        let start = out.len();
        self.inner.on_data_access(pc, address, mem, shared, now, out);
        self.controller.enforce(out, start);
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.controller.reset_stats();
    }

    fn snapshot(&self) -> EngineSnapshot {
        let mut snapshot = self.inner.snapshot();
        snapshot.throttle = Some(self.controller.metrics());
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(used: u64, useless: u64) -> AccuracySample {
        AccuracySample { used, useless }
    }

    #[test]
    fn config_caps_halve_per_level_down_to_the_drop_level() {
        let config = ThrottleConfig::feedback_default();
        config.assert_valid();
        assert_eq!(config.degree_cap(0), None);
        assert_eq!(config.degree_cap(1), Some(4));
        assert_eq!(config.degree_cap(2), Some(2));
        assert_eq!(config.degree_cap(3), Some(1));
        assert_eq!(config.degree_cap(4), Some(0), "the drop decision");
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn inverted_watermarks_are_rejected() {
        ThrottleConfig {
            low_accuracy_pct: 95,
            high_accuracy_pct: 85,
            ..ThrottleConfig::feedback_default()
        }
        .assert_valid();
    }

    #[test]
    fn low_accuracy_ratchets_down_and_saturates() {
        let mut ctrl = ThrottleController::new(0, ThrottleConfig::feedback_default());
        for expected in [1, 2, 3, 4, 4, 4] {
            assert_eq!(ctrl.observe(sample(1, 9)), expected);
        }
        assert_eq!(ctrl.metrics().max_level_reached(), 4);
        assert_eq!(
            ctrl.metrics().level_trace.len(),
            4,
            "saturated holds are not transitions"
        );
    }

    /// The drop level must not silence the feedback signal: one prediction
    /// in PROBE_INTERVAL still goes through, so a degree-1 engine (which a
    /// positive cap can never touch) is throttled yet can earn its way
    /// back.
    #[test]
    fn drop_level_keeps_a_deterministic_probe_trickle() {
        let mut ctrl = ThrottleController::new(0, ThrottleConfig::feedback_default());
        for _ in 0..4 {
            ctrl.observe(sample(0, 10));
        }
        assert_eq!(ctrl.config().degree_cap(ctrl.level()), Some(0));
        let action = |i: u64| PrefetchAction {
            block: BlockAddr::new(i),
            issue_at: 0,
        };
        let mut kept = 0usize;
        let interval = ThrottleController::PROBE_INTERVAL as usize;
        // 64 degree-1 accesses: exactly one in PROBE_INTERVAL survives.
        for i in 0..64u64 {
            let mut out = vec![action(i)];
            ctrl.enforce(&mut out, 0);
            kept += out.len();
        }
        assert_eq!(kept, 64 / interval);
        assert_eq!(
            ctrl.metrics().dropped_prefetches,
            (64 - 64 / interval) as u64
        );
    }

    #[test]
    fn high_accuracy_relaxes_back_to_unthrottled() {
        let mut ctrl = ThrottleController::new(2, ThrottleConfig::feedback_default());
        ctrl.observe(sample(0, 10));
        ctrl.observe(sample(0, 10));
        assert_eq!(ctrl.level(), 2);
        for expected in [1, 0, 0] {
            assert_eq!(ctrl.observe(sample(99, 1)), expected);
        }
        let metrics = ctrl.metrics();
        assert!(metrics.level_trace.iter().all(|c| c.core == 2));
        assert_eq!(metrics.final_levels, vec![0]);
    }

    /// The hysteresis acceptance test: a constant-accuracy stream settles
    /// at a fixed point and never oscillates, wherever the accuracy lies
    /// relative to the watermarks.
    #[test]
    fn constant_accuracy_streams_never_oscillate() {
        for (used, useless) in [(50, 50), (80, 20), (99, 1)] {
            let mut ctrl = ThrottleController::new(0, ThrottleConfig::feedback_default());
            let mut levels = Vec::new();
            for _ in 0..50 {
                levels.push(ctrl.observe(sample(used, useless)));
            }
            // Monotone until the fixed point, then flat: the sequence of
            // levels never changes direction.
            let mut directions: Vec<i32> = levels
                .windows(2)
                .map(|w| (w[1] as i32 - w[0] as i32).signum())
                .filter(|&d| d != 0)
                .collect();
            directions.dedup();
            assert!(
                directions.len() <= 1,
                "accuracy {used}/{useless} oscillated: levels {levels:?}"
            );
            assert_eq!(
                levels[levels.len() - 2],
                levels[levels.len() - 1],
                "stream must settle"
            );
        }
    }

    #[test]
    fn dead_band_holds_the_current_level() {
        let mut ctrl = ThrottleController::new(0, ThrottleConfig::feedback_default());
        ctrl.observe(sample(0, 10));
        assert_eq!(ctrl.level(), 1);
        for _ in 0..10 {
            // 80% sits between the 70/85 watermarks.
            assert_eq!(ctrl.observe(sample(80, 20)), 1);
        }
        assert_eq!(ctrl.metrics().level_trace.len(), 1);
    }

    #[test]
    fn enforce_caps_only_beyond_start_and_counts_drops() {
        let mut ctrl = ThrottleController::new(0, ThrottleConfig::feedback_default());
        ctrl.observe(sample(0, 10));
        ctrl.observe(sample(0, 10));
        assert_eq!(ctrl.config().degree_cap(ctrl.level()), Some(2));
        let action = |i: u64| PrefetchAction {
            block: BlockAddr::new(i),
            issue_at: 0,
        };
        let mut out: Vec<PrefetchAction> = (0..3).map(action).collect();
        let start = out.len();
        out.extend((10..15).map(action));
        ctrl.enforce(&mut out, start);
        assert_eq!(out.len(), start + 2, "cap applies to the new entries only");
        assert_eq!(out[start].block, BlockAddr::new(10));
        assert_eq!(ctrl.metrics().dropped_prefetches, 3);
        // Unthrottled controllers never drop.
        let mut free = ThrottleController::new(0, ThrottleConfig::feedback_default());
        let mut out: Vec<PrefetchAction> = (0..20).map(action).collect();
        free.enforce(&mut out, 0);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn reset_stats_keeps_the_level() {
        let mut ctrl = ThrottleController::new(0, ThrottleConfig::feedback_default());
        ctrl.observe(sample(0, 10));
        ctrl.reset_stats();
        assert_eq!(ctrl.level(), 1, "the level is learned state");
        let metrics = ctrl.metrics();
        assert_eq!(metrics.samples, 0);
        assert!(metrics.level_trace.is_empty());
        assert_eq!(metrics.final_levels, vec![1]);
    }

    #[test]
    fn metrics_merge_across_cores() {
        let mut a = ThrottleController::new(0, ThrottleConfig::feedback_default());
        let mut b = ThrottleController::new(1, ThrottleConfig::feedback_default());
        a.observe(sample(0, 10));
        b.observe(sample(99, 1));
        let mut total = a.metrics();
        total.merge(&b.metrics());
        assert_eq!(total.samples, 2);
        assert_eq!(total.final_levels, vec![1, 0]);
        assert_eq!(total.max_level_reached(), 1);
        assert!((total.accuracy() - 99.0 / 110.0).abs() < 1e-12);
    }
}
