//! The trace-driven core timing model.
//!
//! Each core consumes its trace in order, retiring non-memory instructions
//! at the configured width and exposing a configurable fraction of each
//! memory access's latency as stall cycles. The model is deliberately
//! simple: the paper's conclusions rest on memory-system behaviour, and this
//! model's only job is to convert latencies into cycles consistently across
//! the configurations being compared.

use crate::config::CoreConfig;
use pv_mem::AccessKind;
use pv_workloads::MemOp;

/// Per-core cycle and instruction accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    config: CoreConfig,
    /// Current local time in cycles (fractional cycles accumulate so narrow
    /// retire widths are modelled exactly).
    cycles: f64,
    /// `cycles.ceil()` cached as an integer, maintained on every mutation.
    /// The scheduler compares core clocks once per retired record, so
    /// [`Self::now`] must be a plain load rather than an f64 `ceil`.
    now_cycles: u64,
    /// Instructions retired.
    instructions: u64,
    /// Cycles lost to memory stalls (diagnostic).
    stall_cycles: f64,
    /// L1 hit latency that is considered "free" (pipelined).
    l1_hit_latency: u64,
}

impl CoreModel {
    /// Creates a core model; `l1_hit_latency` is the pipelined L1 latency
    /// that does not stall retirement.
    pub fn new(config: CoreConfig, l1_hit_latency: u64) -> Self {
        config.assert_valid();
        CoreModel {
            config,
            cycles: 0.0,
            now_cycles: 0,
            instructions: 0,
            stall_cycles: 0.0,
            l1_hit_latency,
        }
    }

    /// Current local cycle count (rounded up).
    pub fn now(&self) -> u64 {
        debug_assert_eq!(self.now_cycles, self.cycles.ceil() as u64);
        self.now_cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles attributed to memory stalls so far.
    pub fn stall_cycles(&self) -> f64 {
        self.stall_cycles
    }

    /// Instantaneous IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Retires `count` non-memory instructions.
    pub fn retire_non_memory(&mut self, count: u32) {
        self.instructions += u64::from(count);
        self.cycles += f64::from(count) / self.config.retire_width;
        self.now_cycles = self.cycles.ceil() as u64;
    }

    /// Accounts for a memory operation of kind `op` that completed with
    /// `latency` cycles end-to-end.
    pub fn retire_memory(&mut self, op: MemOp, latency: u64) {
        self.retire_memory_contended(op, latency, 0);
    }

    /// Accounts for a memory operation whose `latency` includes
    /// `queue_delay` cycles of waiting for contended shared resources
    /// (L2 ports, MSHR slots, DRAM queues).
    ///
    /// Out-of-order execution overlaps *pipelined* latency with independent
    /// work, so the non-queued part is exposed at the configured fraction as
    /// before — but backpressure is different: while a request sits in a
    /// queue it occupies the machine's limited buffering (LSQ/MSHR slots),
    /// so queueing cycles stall retirement in full. With `queue_delay == 0`
    /// (always true under `ContentionModel::Ideal`) this is bit-identical to
    /// [`Self::retire_memory`].
    ///
    /// # Panics
    ///
    /// Panics if `queue_delay` exceeds `latency`.
    pub fn retire_memory_contended(&mut self, op: MemOp, latency: u64, queue_delay: u64) {
        assert!(
            queue_delay <= latency,
            "queue delay {queue_delay} cannot exceed total latency {latency}"
        );
        let exposure = match op {
            MemOp::Load => self.config.load_exposure,
            MemOp::Store => self.config.store_exposure,
            MemOp::InstructionFetch => self.config.fetch_exposure,
        };
        if op.is_data() {
            self.instructions += 1;
            self.cycles += 1.0 / self.config.retire_width;
        }
        let overlapped = latency - queue_delay;
        let exposed =
            overlapped.saturating_sub(self.l1_hit_latency) as f64 * exposure + queue_delay as f64;
        self.cycles += exposed;
        self.stall_cycles += exposed;
        self.now_cycles = self.cycles.ceil() as u64;
    }

    /// The cache access kind for a trace operation.
    pub fn access_kind(op: MemOp) -> AccessKind {
        match op {
            MemOp::Store => AccessKind::Write,
            MemOp::Load | MemOp::InstructionFetch => AccessKind::Read,
        }
    }

    /// Resets cycle/instruction counters (end of warm-up) while keeping the
    /// configuration.
    pub fn reset(&mut self) {
        self.cycles = 0.0;
        self.now_cycles = 0;
        self.instructions = 0;
        self.stall_cycles = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreModel {
        CoreModel::new(CoreConfig::paper(), 2)
    }

    #[test]
    fn non_memory_instructions_retire_at_width() {
        let mut core = core();
        core.retire_non_memory(20);
        assert_eq!(core.instructions(), 20);
        assert!(
            (core.now() as f64 - 10.0).abs() <= 1.0,
            "2-wide core retires 20 instructions in ~10 cycles"
        );
    }

    #[test]
    fn l1_hits_do_not_stall() {
        let mut core = core();
        core.retire_memory(MemOp::Load, 2);
        assert_eq!(core.stall_cycles(), 0.0);
        assert_eq!(core.instructions(), 1);
    }

    #[test]
    fn load_misses_expose_configured_fraction() {
        let mut core = core();
        core.retire_memory(MemOp::Load, 402);
        let expected = (402.0 - 2.0) * CoreConfig::paper().load_exposure;
        assert!((core.stall_cycles() - expected).abs() < 1e-9);
    }

    #[test]
    fn stores_are_mostly_hidden() {
        let mut load_core = core();
        let mut store_core = core();
        load_core.retire_memory(MemOp::Load, 402);
        store_core.retire_memory(MemOp::Store, 402);
        assert!(store_core.stall_cycles() < load_core.stall_cycles() / 2.0);
    }

    #[test]
    fn fetches_do_not_count_as_instructions() {
        let mut core = core();
        core.retire_memory(MemOp::InstructionFetch, 20);
        assert_eq!(core.instructions(), 0);
        assert!(core.stall_cycles() > 0.0);
    }

    #[test]
    fn queue_delay_is_fully_exposed() {
        let mut uncontended = core();
        let mut contended = core();
        uncontended.retire_memory_contended(MemOp::Load, 402, 0);
        contended.retire_memory_contended(MemOp::Load, 502, 100);
        // Same overlapped latency, plus 100 fully-stalling queue cycles.
        assert!(
            (contended.stall_cycles() - (uncontended.stall_cycles() + 100.0)).abs() < 1e-9,
            "queueing must stall retirement in full"
        );
    }

    #[test]
    fn zero_queue_delay_matches_plain_retire() {
        let mut plain = core();
        let mut contended = core();
        for latency in [2u64, 20, 402] {
            plain.retire_memory(MemOp::Load, latency);
            contended.retire_memory_contended(MemOp::Load, latency, 0);
        }
        assert_eq!(plain.now(), contended.now());
        assert_eq!(plain.stall_cycles(), contended.stall_cycles());
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn queue_delay_larger_than_latency_panics() {
        core().retire_memory_contended(MemOp::Load, 10, 11);
    }

    #[test]
    fn ipc_improves_when_latency_drops() {
        let mut slow = core();
        let mut fast = core();
        for _ in 0..100 {
            slow.retire_non_memory(3);
            slow.retire_memory(MemOp::Load, 402);
            fast.retire_non_memory(3);
            fast.retire_memory(MemOp::Load, 20);
        }
        assert!(
            fast.ipc() > slow.ipc() * 2.0,
            "removing DRAM latency must pay off"
        );
    }

    #[test]
    fn reset_clears_progress() {
        let mut core = core();
        core.retire_non_memory(10);
        core.retire_memory(MemOp::Load, 100);
        core.reset();
        assert_eq!(core.instructions(), 0);
        assert_eq!(core.now(), 0);
        assert_eq!(core.ipc(), 0.0);
    }

    #[test]
    fn access_kind_maps_stores_to_writes() {
        assert_eq!(CoreModel::access_kind(MemOp::Store), AccessKind::Write);
        assert_eq!(CoreModel::access_kind(MemOp::Load), AccessKind::Read);
        assert_eq!(
            CoreModel::access_kind(MemOp::InstructionFetch),
            AccessKind::Read
        );
    }
}
