//! # pv-sim — cycle-approximate CMP timing model
//!
//! This crate wires the substrates together into the simulated machine the
//! paper evaluates: four cores, each running a workload trace through its
//! private L1 caches and an SMS prefetcher (dedicated or virtualized), all
//! sharing an L2 and main memory.
//!
//! ## Relationship to the paper's methodology
//!
//! The paper uses Flexus, a full-system, cycle-accurate simulator with
//! SMARTS sampling. This reproduction replaces the out-of-order core model
//! with a trace-driven core that retires instructions at a configurable
//! width and exposes a configurable fraction of each memory-access latency
//! (loads mostly exposed, stores and instruction fetches mostly hidden).
//! Every quantity the evaluation reports — miss coverage, L2 request/miss/
//! write-back counts, off-chip traffic and relative performance — is driven
//! by the memory system, which is modelled faithfully; the core model only
//! converts latencies into cycles. Runs are split into a warm-up window and
//! a measurement window (statistics reset in between), mirroring the paper's
//! functional-warming methodology, and the aggregate user-IPC metric matches
//! the paper's throughput metric (committed instructions summed over cores,
//! divided by elapsed cycles).
//!
//! # Example
//!
//! ```no_run
//! use pv_sim::{PrefetcherKind, SimConfig};
//! use pv_workloads::workloads;
//!
//! let config = SimConfig::quick(PrefetcherKind::sms_1k_11a());
//! let metrics = pv_sim::run_workload(&config, &workloads::qry1());
//! println!("aggregate IPC: {:.3}", metrics.aggregate_ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod config;
pub mod core_model;
pub mod engine;
pub mod metrics;
pub mod repartition;
pub mod system;
pub mod throttle;

pub use composite::CompositePrefetcher;
pub use config::{CoreConfig, PrefetcherKind, SimConfig};
pub use core_model::CoreModel;
pub use engine::{EngineSnapshot, PrefetchEngine, PvTableStats};
pub use metrics::{mean_and_ci95, CoverageMetrics, RunMetrics};
pub use repartition::{PlanChange, RepartitionConfig, RepartitionController, RepartitionMetrics};
pub use system::{run_streams, run_workload, run_workload_mix, Scheduler, System};
pub use throttle::{
    LevelChange, ThrottleConfig, ThrottleController, ThrottleMetrics, ThrottledEngine,
};
