//! Utility-driven dynamic PV-region repartitioning.
//!
//! A static [`PvRegionPlan`] fixes each cohabiting table's sub-region for
//! the whole run, but the cohabitation experiments show the win lives in
//! capacity following demand: whichever table is hot deserves the blocks.
//! This module closes that loop. A per-core [`RepartitionController`]
//! samples per-table PVCache misses over fixed-length access windows (the
//! same windowed-sampling pattern as the accuracy epochs driving the
//! throttle controller), converts them to *pressure* — misses per backed
//! block, the marginal utility of one more block — and at each window
//! boundary moves `step_blocks` from the colder table to the hotter one via
//! [`PvRegionPlan::replan`] + [`SharedPvProxy::apply_plan`].
//!
//! Stability needs more than the dead band. Four mechanisms compose:
//!
//! * a **dead band** — the hotter table must beat the colder one's
//!   pressure by `gain_pct` percent before any move, so a balanced split
//!   never thrashes;
//! * a **floor** (`min_blocks`) — no table is ever starved below a
//!   working minimum (a table with zero blocks takes zero backed misses
//!   and could never earn its way back);
//! * a **confirmation streak** — the same table must win two consecutive
//!   windows, because one window of sampling noise looks exactly like one
//!   window of a phase change;
//! * a **cooldown** and a **look-ahead** on every move — re-planning
//!   itself perturbs the miss counters (invalidated entries refill as
//!   misses), so the window after a move is never compared, and a step
//!   that would overshoot the equilibrium is halved until it lands short.
//!
//! Re-planning is strictly opt-in: only the `PrefetcherKind::Repartitioned`
//! variant constructs a controller, so every pre-existing configuration
//! stays bit-identical.

use pv_core::{PvRegionPlan, SharedPvProxy};
use pv_mem::MemoryHierarchy;

/// Parameters of the capacity-reallocation feedback loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RepartitionConfig {
    /// Data accesses per sampling window; the controller re-plans only at
    /// window boundaries (the epoch edges).
    pub window_accesses: u64,
    /// Hysteresis dead band: the hotter table's pressure (misses per backed
    /// block) must exceed the colder one's by this percentage before a
    /// move. The band a flip must cross to reverse a move is therefore
    /// `(1 + gain_pct/100)²` wide, which is what keeps a stable split from
    /// oscillating.
    pub gain_pct: u64,
    /// Blocks moved per replan. `0` freezes the initial plan — the static
    /// control arm of the repartition experiment, identical scarcity with
    /// the loop disabled.
    pub step_blocks: u64,
    /// Blocks no table is ever shrunk below (the starvation floor).
    pub min_blocks: u64,
}

impl RepartitionConfig {
    /// The default feedback policy of the dynamic presets: 1024-access
    /// windows, a 50% dead band, 256-block steps, and a 64-block floor.
    pub fn feedback_default() -> Self {
        RepartitionConfig {
            window_accesses: 1024,
            gain_pct: 50,
            step_blocks: 256,
            min_blocks: 64,
        }
    }

    /// The static control arm: the same scarce plan and interleaved
    /// backing, with the reallocation loop frozen (`step_blocks == 0`).
    pub fn frozen() -> Self {
        RepartitionConfig {
            step_blocks: 0,
            ..Self::feedback_default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the floor is zero (a table shrunk
    /// to nothing could never earn its way back — no misses, no pressure).
    pub fn assert_valid(&self) {
        assert!(
            self.window_accesses >= 1,
            "a repartition window needs at least one access"
        );
        assert!(
            self.min_blocks >= 1,
            "the sub-region floor must keep at least one block per table"
        );
    }
}

/// One recorded boundary move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChange {
    /// Core whose plan moved.
    pub core: usize,
    /// 1-based index of the window whose boundary triggered the move.
    pub window: u64,
    /// Backed blocks per table *after* the move.
    pub backed: Vec<u64>,
}

/// Repartitioning statistics, merged over cores into `RunMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepartitionMetrics {
    /// Completed sampling windows.
    pub windows: u64,
    /// Boundary moves performed.
    pub replans: u64,
    /// Shared-cache entries invalidated by boundary moves.
    pub invalidated_entries: u64,
    /// Migrated dirty entries written back at their old address.
    pub replan_writebacks: u64,
    /// Every boundary move, in observation order (the capacity trace).
    pub plan_trace: Vec<PlanChange>,
    /// Backed blocks per table at collection time, summed element-wise
    /// across cores.
    pub final_backed: Vec<u64>,
}

impl RepartitionMetrics {
    /// Folds `other` into `self` (aggregation across cores).
    pub fn merge(&mut self, other: &RepartitionMetrics) {
        self.windows += other.windows;
        self.replans += other.replans;
        self.invalidated_entries += other.invalidated_entries;
        self.replan_writebacks += other.replan_writebacks;
        self.plan_trace.extend_from_slice(&other.plan_trace);
        if self.final_backed.len() < other.final_backed.len() {
            self.final_backed.resize(other.final_backed.len(), 0);
        }
        for (total, backed) in self.final_backed.iter_mut().zip(&other.final_backed) {
            *total += backed;
        }
    }

    /// The window of the last boundary move any core made (0 when the plan
    /// never moved) — the experiment's re-convergence figure: a controller
    /// that settled stops moving.
    pub fn last_replan_window(&self) -> u64 {
        self.plan_trace.iter().map(|change| change.window).max().unwrap_or(0)
    }
}

/// The per-core capacity-reallocation state machine: counts accesses,
/// samples per-table miss pressure at window boundaries, and applies
/// boundary moves to its core's shared proxy.
#[derive(Debug, Clone)]
pub struct RepartitionController {
    core: usize,
    config: RepartitionConfig,
    /// This core's live plan (each core re-plans independently; sub-regions
    /// never leave the core's own reserved region).
    plan: PvRegionPlan,
    block_bytes: u64,
    /// Accesses into the current window.
    accesses: u64,
    windows: u64,
    replans: u64,
    invalidated: u64,
    writebacks: u64,
    /// Per-table `pvcache_misses` at the last window boundary.
    last_misses: Vec<u64>,
    /// Set by a boundary move: the next window only re-snapshots the miss
    /// counters. A move invalidates every cache entry whose backing block
    /// migrated (including the *winner's*, when its base address shifts),
    /// and the resulting refill burst looks exactly like demand — feeding
    /// it back into the controller is what drives a one-window ping-pong.
    cooldown: bool,
    /// Consecutive compared windows the same table has won past the dead
    /// band; a move needs [`CONFIRM_WINDOWS`] in a row, because one window
    /// of sampling noise is indistinguishable from one window of a phase
    /// change.
    streak: u64,
    streak_winner: usize,
    trace: Vec<PlanChange>,
}

/// Consecutive band-clearing wins required before a boundary moves.
const CONFIRM_WINDOWS: u64 = 2;

impl RepartitionController {
    /// Creates a controller for `core` starting from `plan` (the scarce
    /// initial split the proxy was bound to).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation, if any planned sub-region is
    /// not block-aligned, or if one starts below the floor.
    pub fn new(
        core: usize,
        config: RepartitionConfig,
        plan: PvRegionPlan,
        block_bytes: u64,
    ) -> Self {
        config.assert_valid();
        for table in 0..plan.tables() {
            let bytes = plan.table_bytes(table);
            assert_eq!(
                bytes % block_bytes,
                0,
                "table {table}'s initial sub-region must be block-aligned"
            );
            assert!(
                bytes / block_bytes >= config.min_blocks,
                "table {table} starts below the {}-block floor",
                config.min_blocks
            );
        }
        let tables = plan.tables();
        RepartitionController {
            core,
            config,
            plan,
            block_bytes,
            accesses: 0,
            windows: 0,
            replans: 0,
            invalidated: 0,
            writebacks: 0,
            last_misses: vec![0; tables],
            cooldown: false,
            streak: 0,
            streak_winner: 0,
            trace: Vec::new(),
        }
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &RepartitionConfig {
        &self.config
    }

    /// The live plan.
    pub fn plan(&self) -> &PvRegionPlan {
        &self.plan
    }

    /// Counts one data access; at each window boundary, samples per-table
    /// pressure from `proxy`'s statistics and, when the dead band, the
    /// floor and the hot table's headroom all allow it, moves up to
    /// `step_blocks` from the coldest table to the hottest.
    ///
    /// Three stabilisers bound the move rate. A *confirmation streak*: the
    /// same table must win past the dead band for `CONFIRM_WINDOWS`
    /// consecutive windows, so one window of sampling noise never moves the
    /// boundary. A *cooldown*: the window right after a move only
    /// re-snapshots the counters, so the refill burst the invalidations
    /// caused cannot masquerade as demand. And a *look-ahead*: the step is
    /// halved until the winner is still the hotter table at the post-move
    /// sizes — a full step that would overshoot the equilibrium becomes a
    /// smaller one that lands short of it, and when even that is impossible
    /// the boundary holds instead of limit-cycling around it.
    pub fn on_access(&mut self, proxy: &mut SharedPvProxy, mem: &mut MemoryHierarchy, now: u64) {
        self.accesses += 1;
        if self.accesses < self.config.window_accesses {
            return;
        }
        self.accesses = 0;
        self.windows += 1;
        let tables = self.plan.tables();
        // Misses this window (saturating: the stats reset at the warm-up
        // boundary, where the baseline resets with them).
        let misses: Vec<u64> = (0..tables).map(|t| proxy.table_stats(t).pvcache_misses).collect();
        let delta: Vec<u64> = misses
            .iter()
            .zip(&self.last_misses)
            .map(|(m, last)| m.saturating_sub(*last))
            .collect();
        self.last_misses = misses;
        if self.cooldown {
            self.cooldown = false;
            return;
        }
        let backed: Vec<u64> = (0..tables).map(|t| proxy.backed_blocks(t) as u64).collect();
        // Pressure = misses per backed block; compared cross-multiplied so
        // the arithmetic stays exact (u128 headroom for the counters).
        let hotter = |a: usize, b: usize| {
            (delta[a] as u128) * (backed[b] as u128) > (delta[b] as u128) * (backed[a] as u128)
        };
        let mut winner = 0;
        let mut loser = 0;
        for table in 1..tables {
            if hotter(table, winner) {
                winner = table;
            }
            if hotter(loser, table) {
                loser = table;
            }
        }
        if winner == loser || delta[winner] == 0 {
            self.streak = 0;
            return;
        }
        // Dead band: the winner's pressure must beat the loser's by
        // gain_pct percent, or the boundary holds.
        let advantage = (delta[winner] as u128) * (backed[loser] as u128) * 100;
        let bar = (delta[loser] as u128)
            * (backed[winner] as u128)
            * (100 + self.config.gain_pct as u128);
        if advantage <= bar {
            self.streak = 0;
            return;
        }
        // Confirmation: the same table must win consecutive windows.
        if self.streak == 0 || self.streak_winner != winner {
            self.streak_winner = winner;
            self.streak = 1;
        } else {
            self.streak += 1;
        }
        if self.streak < CONFIRM_WINDOWS {
            return;
        }
        // Clamp the step to the winner's headroom (it cannot back more
        // blocks than it has sets) and the loser's surplus above the floor.
        let headroom = proxy.table_sets(winner) as u64 - backed[winner];
        let surplus = backed[loser].saturating_sub(self.config.min_blocks);
        let mut step = self.config.step_blocks.min(headroom).min(surplus);
        // Look-ahead: at the post-move sizes the winner must still be the
        // hotter table, or the step overshoots the equilibrium and the next
        // window would just move it back. Halve until it lands short.
        while step > 0
            && (delta[winner] as u128) * ((backed[loser] - step) as u128)
                <= (delta[loser] as u128) * ((backed[winner] + step) as u128)
        {
            step /= 2;
        }
        if step == 0 {
            return;
        }
        let mut bytes: Vec<u64> = backed.iter().map(|b| b * self.block_bytes).collect();
        bytes[winner] += step * self.block_bytes;
        bytes[loser] -= step * self.block_bytes;
        let next = self.plan.replan(&bytes);
        let outcome = proxy.apply_plan(&next, mem, now);
        self.plan = next;
        self.replans += 1;
        self.invalidated += outcome.invalidated;
        self.writebacks += outcome.writebacks;
        self.cooldown = true;
        self.streak = 0;
        self.trace.push(PlanChange {
            core: self.core,
            window: self.windows,
            backed: (0..tables).map(|t| proxy.backed_blocks(t) as u64).collect(),
        });
    }

    /// This controller's contribution to the run's [`RepartitionMetrics`].
    pub fn metrics(&self) -> RepartitionMetrics {
        RepartitionMetrics {
            windows: self.windows,
            replans: self.replans,
            invalidated_entries: self.invalidated,
            replan_writebacks: self.writebacks,
            plan_trace: self.trace.clone(),
            final_backed: (0..self.plan.tables())
                .map(|t| self.plan.table_bytes(t) / self.block_bytes)
                .collect(),
        }
    }

    /// Clears counters and the trace; the plan and the window phase are
    /// learned state and persist across the warm-up/measurement boundary.
    /// Call *after* the proxy's own `reset_stats`, so the miss baseline
    /// restarts with the counters it samples.
    pub fn reset_stats(&mut self) {
        self.windows = 0;
        self.replans = 0;
        self.invalidated = 0;
        self.writebacks = 0;
        self.trace.clear();
        self.last_misses.iter_mut().for_each(|m| *m = 0);
        // The proxy reset just flushed the counters any pending refill
        // burst would have landed in; no cooldown left to serve, and any
        // half-built streak restarts with the fresh baseline.
        self.cooldown = false;
        self.streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::PvConfig;
    use pv_mem::{HierarchyConfig, MemoryHierarchy};

    /// A scarce half-and-half split of the paper-default 64 KB region
    /// (512 + 512 blocks) bound to a two-table proxy.
    fn setup(config: RepartitionConfig) -> (MemoryHierarchy, SharedPvProxy, RepartitionController) {
        let hierarchy = HierarchyConfig::paper_baseline(4);
        let mem = MemoryHierarchy::new(hierarchy);
        let mut proxy = SharedPvProxy::new(0, PvConfig::pv8());
        let plan = PvRegionPlan::new(hierarchy.pv_regions, vec![512 * 64, 512 * 64]);
        proxy.add_table(plan.base(0, 0), 1024, 64, "SMS");
        proxy.add_table(plan.base(0, 1), 1024, 64, "Markov");
        proxy.bind_plan(&plan);
        let controller = RepartitionController::new(0, config, plan, 64);
        (mem, proxy, controller)
    }

    /// Generates `misses` distinct-set PVCache misses on `table`.
    fn pressure(proxy: &mut SharedPvProxy, mem: &mut MemoryHierarchy, table: usize, misses: usize) {
        let mut generated = 0;
        let mut set = 0;
        while generated < misses {
            if proxy.set_backed(table, set) {
                proxy.lookup_set(table, set, set as u64, mem, (set as u64) * 1_000);
                generated += 1;
            }
            set += 1;
        }
    }

    fn tick_window(
        ctrl: &mut RepartitionController,
        proxy: &mut SharedPvProxy,
        mem: &mut MemoryHierarchy,
    ) {
        for _ in 0..ctrl.config().window_accesses {
            ctrl.on_access(proxy, mem, 0);
        }
    }

    fn small() -> RepartitionConfig {
        RepartitionConfig {
            window_accesses: 64,
            ..RepartitionConfig::feedback_default()
        }
    }

    #[test]
    fn imbalanced_pressure_moves_capacity_to_the_hot_table() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        // Window 1 confirms the winner; window 2 moves the boundary.
        for _ in 0..2 {
            pressure(&mut proxy, &mut mem, 1, 40);
            pressure(&mut proxy, &mut mem, 0, 2);
            tick_window(&mut ctrl, &mut proxy, &mut mem);
        }
        let metrics = ctrl.metrics();
        assert_eq!(metrics.windows, 2);
        assert_eq!(metrics.replans, 1);
        assert_eq!(proxy.backed_blocks(0), 512 - 256);
        assert_eq!(proxy.backed_blocks(1), 512 + 256);
        assert_eq!(metrics.final_backed, vec![256, 768]);
        assert_eq!(metrics.plan_trace[0].backed, vec![256, 768]);
        assert_eq!(metrics.last_replan_window(), 2);
    }

    #[test]
    fn a_single_window_of_pressure_is_never_confirmed() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        // One noisy window for table 1, then calm: the streak dies and the
        // boundary never moves.
        pressure(&mut proxy, &mut mem, 1, 40);
        pressure(&mut proxy, &mut mem, 0, 2);
        tick_window(&mut ctrl, &mut proxy, &mut mem);
        pressure(&mut proxy, &mut mem, 0, 20);
        pressure(&mut proxy, &mut mem, 1, 20);
        tick_window(&mut ctrl, &mut proxy, &mut mem);
        pressure(&mut proxy, &mut mem, 1, 40);
        pressure(&mut proxy, &mut mem, 0, 2);
        tick_window(&mut ctrl, &mut proxy, &mut mem);
        assert_eq!(ctrl.metrics().windows, 3);
        assert_eq!(
            ctrl.metrics().replans,
            0,
            "isolated wins must not move the boundary"
        );
        assert_eq!(proxy.backed_blocks(0), 512);
    }

    #[test]
    fn the_dead_band_holds_a_balanced_split() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        // Equal pressure — and again with a mild (sub-band) imbalance.
        pressure(&mut proxy, &mut mem, 0, 20);
        pressure(&mut proxy, &mut mem, 1, 20);
        tick_window(&mut ctrl, &mut proxy, &mut mem);
        pressure(&mut proxy, &mut mem, 0, 20);
        pressure(&mut proxy, &mut mem, 1, 26); // 30% hotter < 50% band
        tick_window(&mut ctrl, &mut proxy, &mut mem);
        let metrics = ctrl.metrics();
        assert_eq!(metrics.windows, 2);
        assert_eq!(metrics.replans, 0, "the dead band must hold");
        assert_eq!(proxy.backed_blocks(0), 512);
    }

    #[test]
    fn a_frozen_controller_never_replans() {
        let (mut mem, mut proxy, mut ctrl) = setup(RepartitionConfig {
            window_accesses: 64,
            ..RepartitionConfig::frozen()
        });
        for _ in 0..3 {
            pressure(&mut proxy, &mut mem, 1, 40);
            tick_window(&mut ctrl, &mut proxy, &mut mem);
        }
        assert_eq!(ctrl.metrics().windows, 3);
        assert_eq!(ctrl.metrics().replans, 0);
        assert_eq!(proxy.backed_blocks(0), 512);
    }

    #[test]
    fn the_floor_stops_one_sided_pressure() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        // All pressure on table 1, forever: table 0 shrinks step by step
        // but never below the 64-block floor.
        for _ in 0..10 {
            pressure(&mut proxy, &mut mem, 1, 40);
            tick_window(&mut ctrl, &mut proxy, &mut mem);
        }
        assert_eq!(proxy.backed_blocks(0) as u64, ctrl.config().min_blocks);
        assert_eq!(proxy.backed_blocks(1), 1024 - 64);
        // Replans stop once the floor binds: 512 -> 64 in 256-block steps
        // is one full step plus one 192-block clamp (each preceded by a
        // confirmation window and followed by a cooldown window).
        assert_eq!(ctrl.metrics().replans, 2);
    }

    #[test]
    fn the_winners_headroom_caps_the_step() {
        // Start table 1 near its maximum backing: 960 + 64 blocks.
        let hierarchy = HierarchyConfig::paper_baseline(4);
        let mut mem = MemoryHierarchy::new(hierarchy);
        let mut proxy = SharedPvProxy::new(0, PvConfig::pv8());
        let plan = PvRegionPlan::new(hierarchy.pv_regions, vec![64 * 64, 960 * 64]);
        proxy.add_table(plan.base(0, 0), 1024, 64, "SMS");
        proxy.add_table(plan.base(0, 1), 1024, 64, "Markov");
        proxy.bind_plan(&plan);
        let mut ctrl = RepartitionController::new(0, small(), plan, 64);
        for _ in 0..2 {
            pressure(&mut proxy, &mut mem, 1, 40);
            tick_window(&mut ctrl, &mut proxy, &mut mem);
        }
        // Headroom is 64 blocks (< the 256-block step) but the loser is
        // already at the floor, so nothing moves at all.
        assert_eq!(ctrl.metrics().replans, 0);
        assert_eq!(proxy.backed_blocks(1), 960);
    }

    #[test]
    fn reset_stats_keeps_the_plan_and_clears_the_trace() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        for _ in 0..2 {
            pressure(&mut proxy, &mut mem, 1, 40);
            tick_window(&mut ctrl, &mut proxy, &mut mem);
        }
        assert_eq!(ctrl.metrics().replans, 1);
        proxy.reset_stats();
        ctrl.reset_stats();
        let metrics = ctrl.metrics();
        assert_eq!(metrics.windows, 0);
        assert_eq!(metrics.replans, 0);
        assert!(metrics.plan_trace.is_empty());
        assert_eq!(
            metrics.final_backed,
            vec![256, 768],
            "the plan is learned state"
        );
    }

    #[test]
    fn the_window_after_a_move_is_a_cooldown() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        let mut drive = |proxy: &mut SharedPvProxy, mem: &mut MemoryHierarchy| {
            pressure(proxy, mem, 1, 40);
            tick_window(&mut ctrl, proxy, mem);
            ctrl.metrics().replans
        };
        // Windows 1–2: confirm, then move.
        assert_eq!(drive(&mut proxy, &mut mem), 0);
        assert_eq!(drive(&mut proxy, &mut mem), 1);
        // Window 3: the same pressure again — but this window only
        // re-snapshots the counters (the refill burst a move causes must
        // never feed the next decision).
        assert_eq!(
            drive(&mut proxy, &mut mem),
            1,
            "cooldown must hold the plan"
        );
        // Windows 4–5: sustained pressure re-confirms and resumes moving.
        assert_eq!(drive(&mut proxy, &mut mem), 1);
        assert_eq!(drive(&mut proxy, &mut mem), 2);
    }

    #[test]
    fn the_look_ahead_halves_steps_that_would_overshoot() {
        let (mut mem, mut proxy, mut ctrl) = setup(small());
        // Table 1 is 80% hotter — past the 50% dead band — but a full
        // 256-block move would leave table 0 the hotter one:
        // 36/768 < 20/256. The step halves to 128, which lands short of
        // the equilibrium: 36/640 > 20/384.
        for _ in 0..2 {
            pressure(&mut proxy, &mut mem, 0, 20);
            pressure(&mut proxy, &mut mem, 1, 36);
            tick_window(&mut ctrl, &mut proxy, &mut mem);
        }
        assert_eq!(ctrl.metrics().windows, 2);
        assert_eq!(ctrl.metrics().replans, 1);
        assert_eq!(proxy.backed_blocks(0), 512 - 128, "the step must shrink");
        assert_eq!(proxy.backed_blocks(1), 512 + 128);
    }

    #[test]
    fn metrics_merge_sums_counters_and_final_backing() {
        let mut a = RepartitionMetrics {
            windows: 2,
            replans: 1,
            final_backed: vec![384, 640],
            plan_trace: vec![PlanChange {
                core: 0,
                window: 2,
                backed: vec![384, 640],
            }],
            ..RepartitionMetrics::default()
        };
        let b = RepartitionMetrics {
            windows: 2,
            replans: 0,
            final_backed: vec![512, 512],
            ..RepartitionMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.windows, 4);
        assert_eq!(a.replans, 1);
        assert_eq!(a.final_backed, vec![896, 1152]);
        assert_eq!(a.last_replan_window(), 2);
    }

    #[test]
    #[should_panic(expected = "below the")]
    fn plans_starting_below_the_floor_are_rejected() {
        let hierarchy = HierarchyConfig::paper_baseline(4);
        let plan = PvRegionPlan::new(hierarchy.pv_regions, vec![32 * 64, 512 * 64]);
        let _ = RepartitionController::new(0, RepartitionConfig::feedback_default(), plan, 64);
    }
}
