//! Simulation configuration: core timing parameters, prefetcher selection
//! and run lengths.

use crate::repartition::RepartitionConfig;
use crate::throttle::ThrottleConfig;
use pv_core::PvConfig;
use pv_markov::MarkovConfig;
use pv_mem::HierarchyConfig;
use pv_sms::SmsConfig;

/// Timing parameters of the trace-driven core model.
///
/// The paper's cores are 8-wide out-of-order UltraSPARC III machines with a
/// 256-entry LSQ. The trace-driven model approximates such a core with an
/// effective retire width and per-access *exposure factors*: the fraction of
/// a memory access's latency that actually stalls retirement (out-of-order
/// execution, store buffering and fetch-ahead hide the rest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Instructions retired per cycle when nothing stalls.
    pub retire_width: f64,
    /// Fraction of a demand-load latency (beyond the L1 hit latency) exposed
    /// as stall cycles.
    pub load_exposure: f64,
    /// Fraction of a store latency exposed (stores retire through the store
    /// buffer, so most of their latency is hidden).
    pub store_exposure: f64,
    /// Fraction of an instruction-fetch miss latency exposed (the fetch
    /// buffer hides part of it).
    pub fetch_exposure: f64,
}

impl CoreConfig {
    /// Parameters approximating the paper's Table 1 core: an 8-wide
    /// out-of-order machine with a deep LSQ overlaps a large fraction of
    /// each load's latency with independent work, so only about a third of
    /// the post-L1 latency stalls retirement; stores and instruction fetches
    /// are hidden almost entirely by the store buffer and fetch buffer.
    pub fn paper() -> Self {
        CoreConfig {
            retire_width: 2.0,
            load_exposure: 0.25,
            store_exposure: 0.10,
            fetch_exposure: 0.15,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the retire width is not positive or an exposure factor is
    /// outside `[0, 1]`.
    pub fn assert_valid(&self) {
        assert!(self.retire_width > 0.0, "retire width must be positive");
        for (name, value) in [
            ("load_exposure", self.load_exposure),
            ("store_exposure", self.store_exposure),
            ("fetch_exposure", self.fetch_exposure),
        ] {
            assert!(
                (0.0..=1.0).contains(&value),
                "{name} must be in [0, 1], got {value}"
            );
        }
    }
}

/// Which data prefetcher each core runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No data prefetching (the paper's baseline).
    None,
    /// SMS with a dedicated on-chip PHT of the given configuration.
    Sms(SmsConfig),
    /// SMS with a virtualized PHT: the SMS engine is unchanged, the PHT is
    /// provided by a per-core PVProxy.
    VirtualizedSms {
        /// SMS engine configuration (AGT sizes, region geometry).
        sms: SmsConfig,
        /// Virtualization configuration (PVCache size, table layout).
        pv: PvConfig,
    },
    /// The PC-indexed next-address (Markov) prefetcher with a dedicated
    /// on-chip table — the second optimization engine, proving the
    /// substrate's generality.
    Markov(MarkovConfig),
    /// The Markov prefetcher with its table virtualized through the same
    /// generic PVProxy the SMS backend uses (at a different entry width).
    VirtualizedMarkov {
        /// Markov engine configuration.
        markov: MarkovConfig,
        /// Virtualization configuration (PVCache size, table layout).
        pv: PvConfig,
    },
    /// SMS **and** Markov cohabiting on every core, both virtualized, each
    /// table in its own sub-region of the core's PV region (which must be
    /// sized for both — see `HierarchyConfig::with_pv_bytes_per_core`), each
    /// with its own *dedicated* PVCache of `pv.pvcache_sets` sets. The
    /// control configuration of the `cohabit` experiment.
    CompositeDedicated {
        /// SMS engine configuration.
        sms: SmsConfig,
        /// Markov engine configuration.
        markov: MarkovConfig,
        /// Virtualization configuration; `pvcache_sets` is *per table*.
        pv: PvConfig,
    },
    /// SMS and Markov cohabiting through one **shared**, table-tagged
    /// PVCache of `pv.pvcache_sets` sets, arbitrated by a single proxy per
    /// core — the cohabitation design the paper's economics argue for.
    CompositeShared {
        /// SMS engine configuration.
        sms: SmsConfig,
        /// Markov engine configuration.
        markov: MarkovConfig,
        /// Virtualization configuration; `pvcache_sets` is the shared total.
        pv: PvConfig,
    },
    /// Any of the above wrapped in feedback-directed throttling: the
    /// engine's issue degree is capped (and, at the deepest level, its
    /// predictions dropped) when the windowed prefetch accuracy sampled by
    /// the memory hierarchy falls below the configured watermarks. Opt-in:
    /// only these variants consult the throttle controller, every other
    /// kind behaves bit-identically to before the subsystem existed.
    Throttled {
        /// The throttled engine configuration (must not be
        /// [`PrefetcherKind::None`] or itself be throttled).
        inner: Box<PrefetcherKind>,
        /// The accuracy-feedback policy.
        throttle: ThrottleConfig,
    },
    /// The shared composite under utility-driven dynamic repartitioning:
    /// the PV region is split into a (typically scarce) initial plan and a
    /// per-core controller moves sub-region boundaries toward the
    /// higher-pressure table at window edges. With
    /// `repartition.step_blocks == 0` the loop is frozen — the static
    /// control arm under identical scarcity. Opt-in: only this variant
    /// constructs a controller or binds a scarce interleaved plan, every
    /// other kind behaves bit-identically to before the subsystem existed.
    Repartitioned {
        /// The repartitioned engine configuration (must be
        /// [`PrefetcherKind::CompositeShared`]: one proxy owns the plan).
        inner: Box<PrefetcherKind>,
        /// The capacity-reallocation policy.
        repartition: RepartitionConfig,
    },
}

impl PrefetcherKind {
    /// SMS with the original 1K-set, 16-way PHT.
    pub fn sms_1k_16a() -> Self {
        PrefetcherKind::Sms(SmsConfig::paper_1k_16a())
    }

    /// SMS with the 1K-set, 11-way PHT chosen for virtualization.
    pub fn sms_1k_11a() -> Self {
        PrefetcherKind::Sms(SmsConfig::paper_1k_11a())
    }

    /// SMS with the small 16-set dedicated PHT.
    pub fn sms_16_11a() -> Self {
        PrefetcherKind::Sms(SmsConfig::small_16_11a())
    }

    /// SMS with the small 8-set dedicated PHT.
    pub fn sms_8_11a() -> Self {
        PrefetcherKind::Sms(SmsConfig::small_8_11a())
    }

    /// SMS with an infinite PHT (potential study).
    pub fn sms_infinite() -> Self {
        PrefetcherKind::Sms(SmsConfig::infinite())
    }

    /// The paper's final virtualized design: SMS-PV8.
    pub fn sms_pv8() -> Self {
        PrefetcherKind::VirtualizedSms {
            sms: SmsConfig::paper_1k_11a(),
            pv: PvConfig::pv8(),
        }
    }

    /// The PV-16 variant.
    pub fn sms_pv16() -> Self {
        PrefetcherKind::VirtualizedSms {
            sms: SmsConfig::paper_1k_11a(),
            pv: PvConfig::pv16(),
        }
    }

    /// A virtualized design with an arbitrary PV configuration.
    pub fn sms_virtualized(pv: PvConfig) -> Self {
        PrefetcherKind::VirtualizedSms {
            sms: SmsConfig::paper_1k_11a(),
            pv,
        }
    }

    /// The Markov prefetcher with its dedicated 1K-set table.
    pub fn markov_1k() -> Self {
        PrefetcherKind::Markov(MarkovConfig::paper_1k())
    }

    /// The virtualized Markov prefetcher over the PV-8 proxy.
    pub fn markov_pv8() -> Self {
        PrefetcherKind::VirtualizedMarkov {
            markov: MarkovConfig::paper_1k(),
            pv: PvConfig::pv8(),
        }
    }

    /// SMS + Markov cohabiting with a dedicated PVCache of
    /// `per_table_pvcache_sets` sets per table.
    pub fn composite_dedicated(per_table_pvcache_sets: usize) -> Self {
        PrefetcherKind::CompositeDedicated {
            sms: SmsConfig::paper_1k_11a(),
            markov: MarkovConfig::paper_1k(),
            pv: PvConfig::pv8().with_pvcache_sets(per_table_pvcache_sets),
        }
    }

    /// SMS + Markov cohabiting through one shared table-tagged PVCache of
    /// `shared_pvcache_sets` sets.
    pub fn composite_shared(shared_pvcache_sets: usize) -> Self {
        PrefetcherKind::CompositeShared {
            sms: SmsConfig::paper_1k_11a(),
            markov: MarkovConfig::paper_1k(),
            pv: PvConfig::pv8().with_pvcache_sets(shared_pvcache_sets),
        }
    }

    /// Wraps this configuration in feedback-directed throttling.
    pub fn throttled(self, throttle: ThrottleConfig) -> Self {
        PrefetcherKind::Throttled {
            inner: Box::new(self),
            throttle,
        }
    }

    /// Wraps this configuration (which must be the shared composite) in
    /// utility-driven dynamic repartitioning.
    pub fn repartitioned(self, repartition: RepartitionConfig) -> Self {
        PrefetcherKind::Repartitioned {
            inner: Box::new(self),
            repartition,
        }
    }

    /// The shared composite under the default repartitioning feedback
    /// policy: capacity follows per-table PVC$ pressure at window edges.
    pub fn composite_shared_dynamic(shared_pvcache_sets: usize) -> Self {
        Self::composite_shared(shared_pvcache_sets)
            .repartitioned(RepartitionConfig::feedback_default())
    }

    /// The static control arm: the same scarce even split the dynamic kind
    /// starts from, with the control loop frozen (`step_blocks == 0`).
    pub fn composite_shared_scarce(shared_pvcache_sets: usize) -> Self {
        Self::composite_shared(shared_pvcache_sets).repartitioned(RepartitionConfig::frozen())
    }

    /// The paper's final virtualized design with the default feedback
    /// policy: SMS-PV8 whose issue degree adapts to windowed accuracy.
    pub fn sms_pv8_throttled() -> Self {
        Self::sms_pv8().throttled(ThrottleConfig::feedback_default())
    }

    /// The virtualized Markov prefetcher with the default feedback policy.
    pub fn markov_pv8_throttled() -> Self {
        Self::markov_pv8().throttled(ThrottleConfig::feedback_default())
    }

    /// Bytes of PV region each core needs for this configuration (the sum of
    /// its virtualized tables' footprints; zero when nothing is virtualized).
    pub fn pv_bytes_per_core(&self) -> u64 {
        match self {
            PrefetcherKind::None | PrefetcherKind::Sms(_) | PrefetcherKind::Markov(_) => 0,
            PrefetcherKind::VirtualizedSms { pv, .. }
            | PrefetcherKind::VirtualizedMarkov { pv, .. } => pv.table_bytes(),
            PrefetcherKind::CompositeDedicated { pv, .. }
            | PrefetcherKind::CompositeShared { pv, .. } => 2 * pv.table_bytes(),
            PrefetcherKind::Throttled { inner, .. } => inner.pv_bytes_per_core(),
            // The whole point of repartitioning is running *scarce*: the
            // region only has to hold the floor for both tables, and the
            // system carves whatever is actually reserved into an even
            // block-aligned starting split.
            PrefetcherKind::Repartitioned { inner, repartition } => match &**inner {
                PrefetcherKind::CompositeShared { pv, .. } => {
                    (2 * repartition.min_blocks * pv.block_bytes).min(inner.pv_bytes_per_core())
                }
                _ => inner.pv_bytes_per_core(),
            },
        }
    }

    /// A short label for reports (e.g. `"SMS-1K"`, `"SMS-PV8"`).
    pub fn label(&self) -> String {
        match self {
            PrefetcherKind::None => "NoPrefetch".to_owned(),
            PrefetcherKind::Sms(config) => format!("SMS-{}", config.pht.label()),
            PrefetcherKind::VirtualizedSms { pv, .. } => format!("SMS-PV{}", pv.pvcache_sets),
            PrefetcherKind::Markov(config) => format!("Markov-{}K", config.table_sets / 1024),
            PrefetcherKind::VirtualizedMarkov { pv, .. } => {
                format!("Markov-PV{}", pv.pvcache_sets)
            }
            PrefetcherKind::CompositeDedicated { pv, .. } => {
                format!("SMS+Markov-2xPV{}", pv.pvcache_sets)
            }
            PrefetcherKind::CompositeShared { pv, .. } => {
                format!("SMS+Markov-shPV{}", pv.pvcache_sets)
            }
            PrefetcherKind::Throttled { inner, .. } => format!("{}-throttled", inner.label()),
            PrefetcherKind::Repartitioned { inner, repartition } => {
                if repartition.step_blocks == 0 {
                    format!("{}-scarce", inner.label())
                } else {
                    format!("{}-dyn", inner.label())
                }
            }
        }
    }

    /// Whether this configuration virtualizes the predictor table.
    pub fn is_virtualized(&self) -> bool {
        match self {
            PrefetcherKind::VirtualizedSms { .. }
            | PrefetcherKind::VirtualizedMarkov { .. }
            | PrefetcherKind::CompositeDedicated { .. }
            | PrefetcherKind::CompositeShared { .. } => true,
            PrefetcherKind::Throttled { inner, .. }
            | PrefetcherKind::Repartitioned { inner, .. } => inner.is_virtualized(),
            PrefetcherKind::None | PrefetcherKind::Sms(_) | PrefetcherKind::Markov(_) => false,
        }
    }

    /// Whether this configuration adapts its issue degree to feedback.
    pub fn is_throttled(&self) -> bool {
        matches!(self, PrefetcherKind::Throttled { .. })
    }

    /// Whether this configuration carries a repartitioning controller
    /// (directly or under a throttled wrapper).
    pub fn is_repartitioned(&self) -> bool {
        match self {
            PrefetcherKind::Repartitioned { .. } => true,
            PrefetcherKind::Throttled { inner, .. } => inner.is_repartitioned(),
            _ => false,
        }
    }

    /// Validates the configuration (only the throttled and repartitioned
    /// wrappers carry parameters that can be inconsistent).
    ///
    /// # Panics
    ///
    /// Panics if a throttled wrapper has nothing to throttle, is nested in
    /// another throttled wrapper, or carries an invalid feedback policy; or
    /// if a repartitioned wrapper wraps anything but the shared composite
    /// or carries an invalid reallocation policy.
    pub fn assert_valid(&self) {
        if let PrefetcherKind::Throttled { inner, throttle } = self {
            assert!(
                !matches!(**inner, PrefetcherKind::None),
                "throttling the no-prefetch baseline is meaningless"
            );
            assert!(
                !inner.is_throttled(),
                "throttled configurations must not nest"
            );
            throttle.assert_valid();
            inner.assert_valid();
        }
        if let PrefetcherKind::Repartitioned { inner, repartition } = self {
            assert!(
                matches!(**inner, PrefetcherKind::CompositeShared { .. }),
                "dynamic repartitioning requires the shared composite \
                 (one proxy must own the whole plan)"
            );
            repartition.assert_valid();
            inner.assert_valid();
        }
    }
}

/// A complete simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores (the paper simulates four).
    pub cores: usize,
    /// Memory-system configuration.
    pub hierarchy: HierarchyConfig,
    /// Core timing model.
    pub core: CoreConfig,
    /// Data prefetcher per core.
    pub prefetcher: PrefetcherKind,
    /// Trace records per core consumed during warm-up (statistics are reset
    /// afterwards).
    pub warmup_records: u64,
    /// Trace records per core consumed during measurement.
    pub measure_records: u64,
    /// Workload-generator seed.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's four-core system with the given prefetcher and a
    /// measurement window sized for full experiment runs.
    pub fn paper(prefetcher: PrefetcherKind) -> Self {
        SimConfig {
            cores: 4,
            hierarchy: HierarchyConfig::paper_baseline(4),
            core: CoreConfig::paper(),
            prefetcher,
            warmup_records: 600_000,
            measure_records: 600_000,
            seed: 0x5EED_0001,
        }
    }

    /// A smaller configuration for quick runs, CI and benchmarks.
    pub fn quick(prefetcher: PrefetcherKind) -> Self {
        SimConfig {
            warmup_records: 120_000,
            measure_records: 180_000,
            ..Self::paper(prefetcher)
        }
    }

    /// Replaces the prefetcher, keeping everything else.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Replaces the memory hierarchy, keeping everything else.
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero cores, core count mismatch
    /// with the hierarchy, zero-length measurement window).
    pub fn assert_valid(&self) {
        assert!(self.cores > 0, "at least one core is required");
        assert_eq!(
            self.cores, self.hierarchy.cores,
            "hierarchy core count must match the simulated core count"
        );
        assert!(
            self.measure_records > 0,
            "measurement window must be non-empty"
        );
        assert!(
            self.prefetcher.pv_bytes_per_core() <= self.hierarchy.pv_regions.bytes_per_core,
            "the {} configuration needs {} PV bytes per core but the hierarchy reserves only {} \
             (grow it with HierarchyConfig::with_pv_bytes_per_core)",
            self.prefetcher.label(),
            self.prefetcher.pv_bytes_per_core(),
            self.hierarchy.pv_regions.bytes_per_core
        );
        self.prefetcher.assert_valid();
        assert!(
            self.hierarchy.accuracy_epoch > 0,
            "the prefetch-accuracy sampling epoch must be non-zero \
             (feedback throttling reads the sampled windows)"
        );
        self.core.assert_valid();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_four_core() {
        let config = SimConfig::paper(PrefetcherKind::sms_pv8());
        config.assert_valid();
        assert_eq!(config.cores, 4);
        assert!(config.prefetcher.is_virtualized());
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(PrefetcherKind::None.label(), "NoPrefetch");
        assert_eq!(PrefetcherKind::sms_1k_11a().label(), "SMS-1K-11a");
        assert_eq!(PrefetcherKind::sms_8_11a().label(), "SMS-8-11a");
        assert_eq!(PrefetcherKind::sms_pv8().label(), "SMS-PV8");
        assert_eq!(PrefetcherKind::sms_pv16().label(), "SMS-PV16");
        assert_eq!(PrefetcherKind::sms_infinite().label(), "SMS-Infinite");
        assert_eq!(PrefetcherKind::markov_1k().label(), "Markov-1K");
        assert_eq!(PrefetcherKind::markov_pv8().label(), "Markov-PV8");
        assert!(PrefetcherKind::markov_pv8().is_virtualized());
        assert!(!PrefetcherKind::markov_1k().is_virtualized());
    }

    #[test]
    fn throttled_kinds_wrap_their_inner_configuration() {
        let kind = PrefetcherKind::sms_pv8_throttled();
        assert_eq!(kind.label(), "SMS-PV8-throttled");
        assert!(kind.is_throttled());
        assert!(kind.is_virtualized(), "throttling preserves virtualization");
        assert_eq!(
            kind.pv_bytes_per_core(),
            PrefetcherKind::sms_pv8().pv_bytes_per_core()
        );
        kind.assert_valid();
        assert_eq!(
            PrefetcherKind::markov_pv8_throttled().label(),
            "Markov-PV8-throttled"
        );
        let config = SimConfig::quick(PrefetcherKind::sms_pv8_throttled());
        config.assert_valid();
    }

    #[test]
    fn repartitioned_kinds_wrap_the_shared_composite() {
        let dynamic = PrefetcherKind::composite_shared_dynamic(8);
        assert_eq!(dynamic.label(), "SMS+Markov-shPV8-dyn");
        assert!(dynamic.is_repartitioned());
        assert!(!dynamic.is_throttled());
        assert!(dynamic.is_virtualized());
        dynamic.assert_valid();
        // The dynamic kind runs *scarce*: it fits the 64 KB baseline region
        // the plain shared composite (128 KB of tables) rejects.
        assert_eq!(dynamic.pv_bytes_per_core(), 8 * 1024);
        SimConfig::quick(PrefetcherKind::composite_shared_dynamic(8)).assert_valid();

        let frozen = PrefetcherKind::composite_shared_scarce(8);
        assert_eq!(frozen.label(), "SMS+Markov-shPV8-scarce");
        frozen.assert_valid();

        // Throttling composes on top of repartitioning (not the reverse).
        let throttled = PrefetcherKind::composite_shared_dynamic(8)
            .throttled(ThrottleConfig::feedback_default());
        assert_eq!(throttled.label(), "SMS+Markov-shPV8-dyn-throttled");
        assert!(throttled.is_repartitioned());
        throttled.assert_valid();
    }

    #[test]
    #[should_panic(expected = "shared composite")]
    fn repartitioning_a_single_engine_is_rejected() {
        PrefetcherKind::sms_pv8()
            .repartitioned(RepartitionConfig::feedback_default())
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "shared composite")]
    fn nested_repartitioning_is_rejected() {
        PrefetcherKind::composite_shared_dynamic(8)
            .repartitioned(RepartitionConfig::feedback_default())
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn throttling_the_baseline_is_rejected() {
        PrefetcherKind::None
            .throttled(ThrottleConfig::feedback_default())
            .assert_valid();
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn nested_throttling_is_rejected() {
        PrefetcherKind::sms_pv8_throttled()
            .throttled(ThrottleConfig::feedback_default())
            .assert_valid();
    }

    #[test]
    fn builder_methods_replace_fields() {
        let config = SimConfig::quick(PrefetcherKind::None)
            .with_prefetcher(PrefetcherKind::sms_1k_11a())
            .with_hierarchy(HierarchyConfig::paper_baseline(4).with_l2_size(2 * 1024 * 1024));
        assert_eq!(config.prefetcher.label(), "SMS-1K-11a");
        assert_eq!(config.hierarchy.l2.size_bytes, 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "core count must match")]
    fn mismatched_core_count_panics() {
        let mut config = SimConfig::quick(PrefetcherKind::None);
        config.cores = 2;
        config.assert_valid();
    }

    #[test]
    fn core_config_validation_rejects_bad_exposure() {
        let mut core = CoreConfig::paper();
        core.load_exposure = 1.5;
        let result = std::panic::catch_unwind(move || core.assert_valid());
        assert!(result.is_err());
    }
}
