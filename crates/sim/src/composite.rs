//! Predictor cohabitation at the core level: several prefetch engines
//! running *simultaneously* on one core.
//!
//! The paper's economic argument is that virtualization lets many predictors
//! amortize one physical resource. [`CompositePrefetcher`] realizes it in
//! the simulated CMP as a plain composition of [`PrefetchEngine`]s: any list
//! of labelled boxed engines, fed in a fixed order so runs replay
//! bit-identically regardless of host or thread count. The two paper
//! arrangements are provided as constructors:
//!
//! * **dedicated** — each table gets its own per-predictor `PvProxy` with a
//!   private PVCache (the control configuration: 2 × C/2 sets);
//! * **shared** — both tables arbitrate for one table-tagged
//!   [`SharedPvProxy`] PVCache of C sets and one memory-request stream.
//!
//! Because the composite is itself a [`PrefetchEngine`], the simulator
//! drives it through the exact same feed/issue path as a single engine,
//! and composites can in principle nest or wrap (e.g. under the
//! feedback throttler).

use crate::engine::{EngineSnapshot, PrefetchEngine, PvTableStats};
use crate::repartition::{RepartitionConfig, RepartitionController};
use pv_core::{PvConfig, PvRegionPlan, SharedPvProxy};
use pv_markov::{MarkovConfig, MarkovPrefetcher, SharedVirtualizedMarkov, VirtualizedMarkov};
use pv_mem::{BlockAddr, MemoryHierarchy};
use pv_sms::{PrefetchAction, SharedVirtualizedPht, SmsConfig, SmsPrefetcher, VirtualizedPht};

/// One core's set of cohabiting prefetch engines, composed behind the
/// [`PrefetchEngine`] trait.
///
/// In the shared arrangement the composite *owns* the per-core
/// [`SharedPvProxy`] and lends it to its children as the `shared` parameter
/// of each feed call. That ownership shape (plain value, no `Rc<RefCell>`)
/// is what makes the composite — and the whole `System` above it — `Send`,
/// and removes per-access borrow bookkeeping from the hottest loop.
pub struct CompositePrefetcher {
    /// The cohabiting engines with their table labels, in feed order.
    engines: Vec<(String, Box<dyn PrefetchEngine>)>,
    /// Present only in the shared arrangement: the proxy the children's
    /// cohabitation adapters registered their tables with.
    shared: Option<SharedPvProxy>,
    /// Present only under dynamic repartitioning: the controller that
    /// samples per-table pressure on the owned proxy and moves the
    /// sub-region boundaries at window edges.
    repartition: Option<RepartitionController>,
}

impl std::fmt::Debug for CompositePrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositePrefetcher")
            .field("engines", &self.labels())
            .field("shared", &self.shared.is_some())
            .field("repartition", &self.repartition.is_some())
            .finish()
    }
}

impl CompositePrefetcher {
    /// Composes an arbitrary list of labelled engines, fed in list order on
    /// every event.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty — a composite of nothing would silently
    /// predict nothing.
    pub fn from_engines(engines: Vec<(String, Box<dyn PrefetchEngine>)>) -> Self {
        assert!(!engines.is_empty(), "a composite needs at least one engine");
        CompositePrefetcher {
            engines,
            shared: None,
            repartition: None,
        }
    }

    /// The dedicated arrangement: SMS and Markov each on their own
    /// `PvProxy` (a PVCache of `pv.pvcache_sets` sets apiece), with tables
    /// at `plan.base(core, 0)` and `plan.base(core, 1)`.
    pub fn dedicated(
        core: usize,
        sms: SmsConfig,
        markov: MarkovConfig,
        pv: PvConfig,
        plan: &PvRegionPlan,
    ) -> Self {
        Self::from_engines(vec![
            (
                "SMS".to_owned(),
                Box::new(SmsPrefetcher::new(
                    sms,
                    Box::new(VirtualizedPht::new(core, pv, plan.base(core, 0))),
                )),
            ),
            (
                "Markov".to_owned(),
                Box::new(MarkovPrefetcher::new(
                    markov,
                    Box::new(VirtualizedMarkov::new(core, pv, plan.base(core, 1))),
                )),
            ),
        ])
    }

    /// The shared arrangement: both tables through one [`SharedPvProxy`]
    /// whose table-tagged PVCache holds `pv.pvcache_sets` sets in total.
    pub fn shared(
        core: usize,
        sms: SmsConfig,
        markov: MarkovConfig,
        pv: PvConfig,
        plan: &PvRegionPlan,
    ) -> Self {
        let mut proxy = SharedPvProxy::new(core, pv);
        let pht = SharedVirtualizedPht::new(&mut proxy, pv, plan.base(core, 0));
        let table = SharedVirtualizedMarkov::new(&mut proxy, pv, plan.base(core, 1));
        let mut composite = Self::from_engines(vec![
            (
                "SMS".to_owned(),
                Box::new(SmsPrefetcher::new(sms, Box::new(pht))),
            ),
            (
                "Markov".to_owned(),
                Box::new(MarkovPrefetcher::new(markov, Box::new(table))),
            ),
        ]);
        composite.shared = Some(proxy);
        composite
    }

    /// The shared arrangement under utility-driven dynamic repartitioning:
    /// the (typically scarce) `plan` is bound to the proxy with interleaved
    /// partial backing, and a per-core [`RepartitionController`] moves the
    /// sub-region boundaries toward the higher-pressure table at window
    /// edges. With `repartition.step_blocks == 0` the controller is frozen —
    /// the plan stays put, giving the static control arm under identical
    /// scarcity.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not block-aligned or starts a table below the
    /// controller's sub-region floor.
    pub fn shared_repartitioned(
        core: usize,
        sms: SmsConfig,
        markov: MarkovConfig,
        pv: PvConfig,
        plan: PvRegionPlan,
        repartition: RepartitionConfig,
    ) -> Self {
        let mut composite = Self::shared(core, sms, markov, pv, &plan);
        composite
            .shared
            .as_mut()
            .expect("the shared arrangement owns a proxy")
            .bind_plan(&plan);
        composite.repartition = Some(RepartitionController::new(
            core,
            repartition,
            plan,
            pv.block_bytes,
        ));
        composite
    }

    /// Whether the engines share one PVCache.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// The owned shared proxy (shared arrangement only).
    pub fn shared_proxy(&self) -> Option<&SharedPvProxy> {
        self.shared.as_ref()
    }

    /// The composed engines' labels, in feed order.
    pub fn labels(&self) -> Vec<&str> {
        self.engines.iter().map(|(label, _)| label.as_str()).collect()
    }

    /// The engine labelled `label`, if present.
    pub fn engine(&self, label: &str) -> Option<&dyn PrefetchEngine> {
        self.engines
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, engine)| engine.as_ref() as &dyn PrefetchEngine)
    }

    /// Per-table PVProxy statistics, labelled in feed order. In the shared
    /// arrangement the split comes from the table-tagged proxy; in the
    /// dedicated arrangement each engine reports its own proxy (nested
    /// composites contribute their own per-table split).
    pub fn pv_table_stats(&self) -> Vec<PvTableStats> {
        self.snapshot().pv_tables
    }
}

impl PrefetchEngine for CompositePrefetcher {
    /// Forwards evictions to every engine in feed order (engines that do
    /// not track residency ignore them). The composite's own proxy (shared
    /// arrangement) replaces whatever arrived from above; otherwise the
    /// incoming proxy is forwarded unchanged (nesting).
    fn on_l1_evictions(
        &mut self,
        blocks: &[BlockAddr],
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        let mut proxy = self.shared.as_mut().or(shared);
        for (_, engine) in &mut self.engines {
            engine.on_l1_evictions(blocks, mem, proxy.as_deref_mut(), now);
        }
    }

    /// Feeds the access to every engine in feed order, concatenating their
    /// predictions — the fixed order keeps runs deterministic.
    fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) {
        let mut proxy = self.shared.as_mut().or(shared);
        for (_, engine) in &mut self.engines {
            engine.on_data_access(pc, address, mem, proxy.as_deref_mut(), now, out);
        }
        // The controller ticks after the engines fed, so a window edge sees
        // the miss counters of every access up to and including this one.
        // It only ever pairs with the owned proxy (shared_repartitioned).
        if let (Some(controller), Some(proxy)) = (&mut self.repartition, &mut self.shared) {
            controller.on_access(proxy, mem, now);
        }
    }

    /// Resets engine and proxy statistics (learned state is preserved).
    /// The owned proxy is reset here, once — the cohabitation adapters keep
    /// no statistics of their own.
    fn reset_stats(&mut self) {
        for (_, engine) in &mut self.engines {
            engine.reset_stats();
        }
        if let Some(proxy) = &mut self.shared {
            proxy.reset_stats();
        }
        // After the proxy: the controller re-bases its per-window miss
        // deltas on the proxy's zeroed counters (see its reset contract).
        if let Some(controller) = &mut self.repartition {
            controller.reset_stats();
        }
    }

    /// Merges the engines' snapshots; PV statistics are reported per table
    /// (in [`EngineSnapshot::pv_tables`]) rather than as one aggregate.
    fn snapshot(&self) -> EngineSnapshot {
        let mut snapshot = EngineSnapshot::default();
        for (label, engine) in &self.engines {
            let mut child = engine.snapshot();
            // A single-table child's aggregate is lifted into the per-table
            // split under its feed-order label; a child that already splits
            // per table (a nested composite) passes its tables through.
            if let Some(stats) = child.pv.take() {
                child.pv_tables.push(PvTableStats {
                    label: label.clone(),
                    stats,
                });
            }
            snapshot.merge(child);
        }
        if let Some(proxy) = &self.shared {
            // The shared arrangement's children write through one
            // table-tagged proxy, which owns the authoritative split.
            snapshot.pv_tables = (0..proxy.tables())
                .map(|table| PvTableStats {
                    label: proxy.table_label(table).to_owned(),
                    stats: *proxy.table_stats(table),
                })
                .collect();
        }
        snapshot.repartition = self.repartition.as_ref().map(|c| c.metrics());
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::HierarchyConfig;

    fn setup(shared: bool) -> (MemoryHierarchy, CompositePrefetcher) {
        let config = HierarchyConfig::paper_baseline(4).with_pv_bytes_per_core(128 * 1024);
        let mem = MemoryHierarchy::new(config);
        let pv = PvConfig::pv8();
        let plan = PvRegionPlan::new(config.pv_regions, vec![pv.table_bytes(), pv.table_bytes()]);
        let composite = if shared {
            CompositePrefetcher::shared(
                0,
                SmsConfig::paper_1k_11a(),
                MarkovConfig::paper_1k(),
                PvConfig::pv8(),
                &plan,
            )
        } else {
            CompositePrefetcher::dedicated(
                0,
                SmsConfig::paper_1k_11a(),
                MarkovConfig::paper_1k(),
                PvConfig::pv8().with_pvcache_sets(4),
                &plan,
            )
        };
        (mem, composite)
    }

    /// Drives a short repeating stream through the composed engines.
    fn drive(mem: &mut MemoryHierarchy, composite: &mut CompositePrefetcher) -> usize {
        let mut issued = 0;
        let mut out = Vec::new();
        for round in 0..4u64 {
            for i in 0..64u64 {
                let pc = 0x4000 + (i % 8) * 4;
                let addr = (i * 3 % 50) * 4096 + (i % 16) * 64;
                out.clear();
                composite.on_data_access(
                    pc,
                    addr,
                    mem,
                    None,
                    round * 100_000 + i * 1_000,
                    &mut out,
                );
                issued += out.len();
            }
        }
        issued
    }

    #[test]
    fn both_engines_observe_accesses_and_report_per_table_stats() {
        for shared in [false, true] {
            let (mut mem, mut composite) = setup(shared);
            drive(&mut mem, &mut composite);
            assert_eq!(composite.is_shared(), shared);
            assert_eq!(composite.labels(), ["SMS", "Markov"]);
            let snapshot = composite.snapshot();
            assert!(snapshot.sms.expect("SMS stats").accesses_observed > 0);
            assert!(snapshot.markov.expect("Markov stats").accesses_observed > 0);
            assert!(snapshot.pv.is_none(), "the aggregate lives in pv_tables");
            let tables = composite.pv_table_stats();
            assert_eq!(tables.len(), 2);
            assert_eq!(tables[0].label, "SMS");
            assert_eq!(tables[1].label, "Markov");
            assert!(
                tables.iter().all(|t| t.stats.operations() > 0),
                "both tables must see traffic (shared = {shared})"
            );
            assert!(mem.stats().l2_requests.predictor > 0);
        }
    }

    #[test]
    fn reset_preserves_learned_state_but_clears_counters() {
        let (mut mem, mut composite) = setup(true);
        drive(&mut mem, &mut composite);
        composite.reset_stats();
        let snapshot = composite.snapshot();
        assert_eq!(snapshot.sms.unwrap().accesses_observed, 0);
        assert_eq!(snapshot.markov.unwrap().accesses_observed, 0);
        assert!(composite.pv_table_stats().iter().all(|t| t.stats.operations() == 0));
    }

    #[test]
    fn feed_order_follows_the_engine_list() {
        // A composite of two SMS engines trained on the same pattern emits
        // the first engine's stream before the second's.
        let config = SmsConfig::paper_1k_11a();
        let engines: Vec<(String, Box<dyn PrefetchEngine>)> = vec![
            (
                "A".to_owned(),
                Box::new(SmsPrefetcher::new(config, pv_sms::build_storage(&config))),
            ),
            (
                "B".to_owned(),
                Box::new(SmsPrefetcher::new(config, pv_sms::build_storage(&config))),
            ),
        ];
        let mut composite = CompositePrefetcher::from_engines(engines);
        let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_baseline(1));
        let mut out = Vec::new();
        // Train a two-block pattern, then retrigger it.
        for (i, offset) in [(0u64, 2u32), (1, 5)] {
            composite.on_data_access(
                0x400,
                pv_mem::RegionAddr::new(10).block_at(offset, 32).base_address().raw(),
                &mut mem,
                None,
                i * 10,
                &mut out,
            );
        }
        composite.on_l1_evictions(
            &[pv_mem::RegionAddr::new(10).block_at(2, 32)],
            &mut mem,
            None,
            50,
        );
        out.clear();
        composite.on_data_access(
            0x400,
            pv_mem::RegionAddr::new(20).block_at(2, 32).base_address().raw(),
            &mut mem,
            None,
            100,
            &mut out,
        );
        assert_eq!(out.len(), 2, "both engines predict the trained block");
        assert_eq!(
            out[0].block, out[1].block,
            "identical engines, same prediction"
        );
        assert_eq!(composite.labels(), ["A", "B"]);
        assert!(composite.engine("A").is_some());
        assert!(composite.engine("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn empty_composites_are_rejected() {
        let _ = CompositePrefetcher::from_engines(Vec::new());
    }

    /// The repartitioned arrangement wires the controller into the feed
    /// path: windows advance with data accesses and the snapshot carries
    /// the controller's metrics (reset clears them but keeps the plan).
    #[test]
    fn shared_repartitioned_counts_windows_through_the_feed_path() {
        use crate::repartition::RepartitionConfig;
        // The scarce default: half the 64 KB baseline region per table.
        let config = HierarchyConfig::paper_baseline(4);
        let mut mem = MemoryHierarchy::new(config);
        let plan = PvRegionPlan::new(config.pv_regions, vec![512 * 64, 512 * 64]);
        let mut composite = CompositePrefetcher::shared_repartitioned(
            0,
            SmsConfig::paper_1k_11a(),
            MarkovConfig::paper_1k(),
            PvConfig::pv8(),
            plan,
            RepartitionConfig {
                window_accesses: 64,
                ..RepartitionConfig::feedback_default()
            },
        );
        drive(&mut mem, &mut composite);
        let snapshot = composite.snapshot();
        let repartition = snapshot.repartition.expect("controller metrics present");
        // drive() feeds 256 accesses through 64-access windows.
        assert_eq!(repartition.windows, 4);
        assert_eq!(repartition.final_backed.iter().sum::<u64>(), 1024);
        composite.reset_stats();
        let after = composite.snapshot().repartition.unwrap();
        assert_eq!(after.windows, 0);
        assert_eq!(after.final_backed.iter().sum::<u64>(), 1024);
    }

    /// A nested composite's per-table split survives aggregation: the
    /// outer snapshot passes the inner tables through instead of
    /// discarding them.
    #[test]
    fn nested_composites_keep_their_per_table_stats() {
        let (mut mem, inner) = setup(false);
        let mut outer =
            CompositePrefetcher::from_engines(vec![("pair".to_owned(), Box::new(inner))]);
        drive(&mut mem, &mut outer);
        let snapshot = outer.snapshot();
        assert!(snapshot.sms.is_some());
        assert!(snapshot.markov.is_some());
        let tables = outer.pv_table_stats();
        assert_eq!(
            tables.iter().map(|t| t.label.as_str()).collect::<Vec<_>>(),
            ["SMS", "Markov"],
            "the inner split passes through the outer composite"
        );
        assert!(tables.iter().all(|t| t.stats.operations() > 0));
    }
}
