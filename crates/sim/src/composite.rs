//! Predictor cohabitation at the core level: SMS and Markov running
//! *simultaneously* on one core, both virtualized.
//!
//! The paper's economic argument is that virtualization lets many predictors
//! amortize one physical resource. [`CompositePrefetcher`] realizes it in
//! the simulated CMP: each core runs the unchanged SMS engine *and* the
//! unchanged Markov engine, each table living in its own sub-region of the
//! core's PV region (a [`PvRegionPlan`]), in one of two arrangements:
//!
//! * **dedicated** — each table gets its own per-predictor `PvProxy` with a
//!   private PVCache (the control configuration: 2 × C/2 sets);
//! * **shared** — both tables arbitrate for one table-tagged
//!   [`SharedPvProxy`] PVCache of C sets and one memory-request stream.
//!
//! The engines are fed in a fixed order (SMS first, then Markov) so runs
//! replay bit-identically regardless of host or thread count.

use pv_core::{PvConfig, PvRegionPlan, PvStats, SharedPvProxy, VirtualizedBackend};
use pv_markov::{MarkovConfig, MarkovPrefetcher, SharedVirtualizedMarkov, VirtualizedMarkov};
use pv_mem::{BlockAddr, MemoryHierarchy};
use pv_sms::{PrefetchAction, SharedVirtualizedPht, SmsConfig, SmsPrefetcher, VirtualizedPht};
use std::cell::RefCell;
use std::rc::Rc;

/// Statistics of one cohabiting table, summed over cores by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvTableStats {
    /// Table label (`"SMS"` or `"Markov"`).
    pub label: String,
    /// The table's PVProxy statistics.
    pub stats: PvStats,
}

/// One core's pair of cohabiting virtualized prefetch engines.
#[derive(Debug)]
pub struct CompositePrefetcher {
    sms: SmsPrefetcher,
    markov: MarkovPrefetcher,
    /// Present only in the shared arrangement.
    shared: Option<Rc<RefCell<SharedPvProxy>>>,
}

impl CompositePrefetcher {
    /// The dedicated arrangement: SMS and Markov each on their own
    /// `PvProxy` (a PVCache of `pv.pvcache_sets` sets apiece), with tables
    /// at `plan.base(core, 0)` and `plan.base(core, 1)`.
    pub fn dedicated(
        core: usize,
        sms: SmsConfig,
        markov: MarkovConfig,
        pv: PvConfig,
        plan: &PvRegionPlan,
    ) -> Self {
        CompositePrefetcher {
            sms: SmsPrefetcher::new(
                sms,
                Box::new(VirtualizedPht::new(core, pv, plan.base(core, 0))),
            ),
            markov: MarkovPrefetcher::new(
                markov,
                Box::new(VirtualizedMarkov::new(core, pv, plan.base(core, 1))),
            ),
            shared: None,
        }
    }

    /// The shared arrangement: both tables through one [`SharedPvProxy`]
    /// whose table-tagged PVCache holds `pv.pvcache_sets` sets in total.
    pub fn shared(
        core: usize,
        sms: SmsConfig,
        markov: MarkovConfig,
        pv: PvConfig,
        plan: &PvRegionPlan,
    ) -> Self {
        let proxy = Rc::new(RefCell::new(SharedPvProxy::new(core, pv)));
        let pht = SharedVirtualizedPht::new(Rc::clone(&proxy), pv, plan.base(core, 0));
        let table = SharedVirtualizedMarkov::new(Rc::clone(&proxy), pv, plan.base(core, 1));
        CompositePrefetcher {
            sms: SmsPrefetcher::new(sms, Box::new(pht)),
            markov: MarkovPrefetcher::new(markov, Box::new(table)),
            shared: Some(proxy),
        }
    }

    /// Whether the two tables share one PVCache.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// The SMS engine.
    pub fn sms(&self) -> &SmsPrefetcher {
        &self.sms
    }

    /// The Markov engine.
    pub fn markov(&self) -> &MarkovPrefetcher {
        &self.markov
    }

    /// Notifies the engines that blocks left the L1 data cache (only SMS
    /// reacts: evictions close its spatial generations).
    pub fn on_l1_evictions(&mut self, blocks: &[BlockAddr], mem: &mut MemoryHierarchy, now: u64) {
        self.sms.on_l1_evictions(blocks, mem, now);
    }

    /// Observes one L1 data access and returns every prefetch the two
    /// engines want issued — SMS's stream first, then Markov's prediction,
    /// a fixed order that keeps runs deterministic.
    pub fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) -> Vec<PrefetchAction> {
        let sms_response = self.sms.on_data_access(pc, address, mem, now);
        let mut actions = sms_response.prefetches;
        let markov_response = self.markov.on_data_access(pc, address, mem, now);
        if let Some(block) = markov_response.prefetch {
            actions.push(PrefetchAction {
                block,
                issue_at: markov_response.issue_at,
            });
        }
        actions
    }

    /// Per-table PVProxy statistics (labelled `"SMS"` / `"Markov"`).
    pub fn pv_table_stats(&self) -> Vec<PvTableStats> {
        match &self.shared {
            Some(proxy) => {
                let proxy = proxy.borrow();
                (0..proxy.tables())
                    .map(|table| PvTableStats {
                        label: proxy.table_label(table).to_owned(),
                        stats: *proxy.table_stats(table),
                    })
                    .collect()
            }
            None => {
                let pht = self
                    .sms
                    .storage()
                    .as_any()
                    .downcast_ref::<VirtualizedPht>()
                    .expect("dedicated composite uses VirtualizedPht");
                let table = self
                    .markov
                    .storage()
                    .as_any()
                    .downcast_ref::<VirtualizedMarkov>()
                    .expect("dedicated composite uses VirtualizedMarkov");
                vec![
                    PvTableStats {
                        label: "SMS".to_owned(),
                        stats: *pht.proxy().stats(),
                    },
                    PvTableStats {
                        label: "Markov".to_owned(),
                        stats: *table.proxy().stats(),
                    },
                ]
            }
        }
    }

    /// Resets engine and proxy statistics (learned state is preserved).
    pub fn reset_stats(&mut self) {
        self.sms.reset_stats();
        self.markov.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::HierarchyConfig;

    fn setup(shared: bool) -> (MemoryHierarchy, CompositePrefetcher) {
        let config = HierarchyConfig::paper_baseline(4).with_pv_bytes_per_core(128 * 1024);
        let mem = MemoryHierarchy::new(config);
        let pv = PvConfig::pv8();
        let plan = PvRegionPlan::new(config.pv_regions, vec![pv.table_bytes(), pv.table_bytes()]);
        let composite = if shared {
            CompositePrefetcher::shared(
                0,
                SmsConfig::paper_1k_11a(),
                MarkovConfig::paper_1k(),
                PvConfig::pv8(),
                &plan,
            )
        } else {
            CompositePrefetcher::dedicated(
                0,
                SmsConfig::paper_1k_11a(),
                MarkovConfig::paper_1k(),
                PvConfig::pv8().with_pvcache_sets(4),
                &plan,
            )
        };
        (mem, composite)
    }

    /// Drives a short repeating stream through both engines.
    fn drive(mem: &mut MemoryHierarchy, composite: &mut CompositePrefetcher) -> usize {
        let mut issued = 0;
        for round in 0..4u64 {
            for i in 0..64u64 {
                let pc = 0x4000 + (i % 8) * 4;
                let addr = (i * 3 % 50) * 4096 + (i % 16) * 64;
                let actions = composite.on_data_access(pc, addr, mem, round * 100_000 + i * 1_000);
                issued += actions.len();
            }
        }
        issued
    }

    #[test]
    fn both_engines_observe_accesses_and_report_per_table_stats() {
        for shared in [false, true] {
            let (mut mem, mut composite) = setup(shared);
            drive(&mut mem, &mut composite);
            assert_eq!(composite.is_shared(), shared);
            assert!(composite.sms().stats().accesses_observed > 0);
            assert!(composite.markov().stats().accesses_observed > 0);
            let tables = composite.pv_table_stats();
            assert_eq!(tables.len(), 2);
            assert_eq!(tables[0].label, "SMS");
            assert_eq!(tables[1].label, "Markov");
            assert!(
                tables.iter().all(|t| t.stats.operations() > 0),
                "both tables must see traffic (shared = {shared})"
            );
            assert!(mem.stats().l2_requests.predictor > 0);
        }
    }

    #[test]
    fn reset_preserves_learned_state_but_clears_counters() {
        let (mut mem, mut composite) = setup(true);
        drive(&mut mem, &mut composite);
        composite.reset_stats();
        assert_eq!(composite.sms().stats().accesses_observed, 0);
        assert_eq!(composite.markov().stats().accesses_observed, 0);
        assert!(composite.pv_table_stats().iter().all(|t| t.stats.operations() == 0));
    }
}
