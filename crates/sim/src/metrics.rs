//! Metrics collected from one simulation run.

use pv_core::PvStats;
use pv_markov::MarkovStats;
use pv_mem::HierarchyStats;
use pv_sms::SmsStats;

/// Prefetch-coverage accounting in the form Figure 4/5 report it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageMetrics {
    /// L1 read misses eliminated by prefetching (demand reads whose block
    /// had been prefetched).
    pub covered: u64,
    /// L1 read misses that still occurred.
    pub uncovered: u64,
    /// Prefetched blocks evicted or invalidated before any demand use.
    pub overpredictions: u64,
}

impl CoverageMetrics {
    /// Misses the baseline (no-prefetch) configuration would have had:
    /// covered plus uncovered.
    pub fn baseline_misses(&self) -> u64 {
        self.covered + self.uncovered
    }

    /// Covered misses as a fraction of baseline misses, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let baseline = self.baseline_misses();
        if baseline == 0 {
            0.0
        } else {
            self.covered as f64 / baseline as f64
        }
    }

    /// Over-predictions as a fraction of baseline misses (the part of the
    /// paper's bars that extends above 100%).
    pub fn overprediction_ratio(&self) -> f64 {
        let baseline = self.baseline_misses();
        if baseline == 0 {
            0.0
        } else {
            self.overpredictions as f64 / baseline as f64
        }
    }
}

/// Everything measured during one run's measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Label of the prefetcher configuration that produced these metrics.
    pub configuration: String,
    /// Workload name.
    pub workload: String,
    /// Elapsed cycles (the slowest core's local clock).
    pub elapsed_cycles: u64,
    /// Committed instructions summed over all cores.
    pub total_instructions: u64,
    /// Per-core IPC.
    pub per_core_ipc: Vec<f64>,
    /// Memory-system statistics.
    pub hierarchy: HierarchyStats,
    /// Prefetch coverage (zeroed for the no-prefetch baseline).
    pub coverage: CoverageMetrics,
    /// SMS engine statistics summed over cores (`None` unless an SMS
    /// prefetcher ran).
    pub sms: Option<SmsStats>,
    /// Markov engine statistics summed over cores (`None` unless a Markov
    /// prefetcher ran).
    pub markov: Option<MarkovStats>,
    /// PVProxy statistics summed over cores (`None` for non-virtualized
    /// configurations).
    pub pv: Option<PvStats>,
    /// Per-table PVProxy statistics of cohabiting configurations, summed
    /// over cores and keyed by table label (`"SMS"` / `"Markov"`). Empty for
    /// single-predictor kinds, whose aggregate lives in [`Self::pv`].
    pub pv_tables: Vec<crate::engine::PvTableStats>,
    /// Data prefetches issued into the L1s.
    pub prefetches_issued: u64,
    /// Feedback-throttling statistics summed over cores (`None` unless a
    /// throttled prefetcher kind ran).
    pub throttle: Option<crate::throttle::ThrottleMetrics>,
    /// Dynamic-repartitioning statistics summed over cores (`None` unless a
    /// repartitioned prefetcher kind ran). Deliberately excluded from
    /// [`Self::digest`]: the digest pins simulated outcomes, and the
    /// controller's bookkeeping is already reflected there through cycles
    /// and traffic.
    pub repartition: Option<crate::repartition::RepartitionMetrics>,
}

impl RunMetrics {
    /// Aggregate throughput: committed user instructions per cycle summed
    /// over cores — the paper's performance metric.
    pub fn aggregate_ipc(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.elapsed_cycles as f64
        }
    }

    /// Speedup of this run over `baseline`, as the paper reports it
    /// (per-cent improvement in aggregate IPC).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.aggregate_ipc();
        if base == 0.0 {
            0.0
        } else {
            self.aggregate_ipc() / base - 1.0
        }
    }

    /// Off-chip traffic (L2 misses plus write-backs) in blocks.
    pub fn offchip_blocks(&self) -> u64 {
        self.hierarchy.l2_misses.total() + self.hierarchy.l2_writebacks.total()
    }

    /// Relative increase of this run's off-chip traffic over `baseline`.
    pub fn offchip_increase_over(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.offchip_blocks();
        if base == 0 {
            0.0
        } else {
            self.offchip_blocks() as f64 / base as f64 - 1.0
        }
    }

    /// Relative increase in L2 requests over `baseline` (Figure 6 metric).
    pub fn l2_request_increase_over(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.hierarchy.l2_requests.total();
        if base == 0 {
            0.0
        } else {
            self.hierarchy.l2_requests.total() as f64 / base as f64 - 1.0
        }
    }

    /// Mean DRAM queueing delay per application-class DRAM read, in cycles
    /// (zero under `ContentionModel::Ideal` or when no reads were made).
    /// The denominator is actual DRAM reads of the class — L2 misses that
    /// merged into an in-flight fill issued no read and are excluded.
    pub fn dram_queue_delay_application(&self) -> f64 {
        let reads = self.hierarchy.dram_read_traffic.application;
        self.hierarchy.dram_queue_delay.mean_application(reads)
    }

    /// Mean DRAM queueing delay per predictor-class DRAM read, in cycles.
    pub fn dram_queue_delay_predictor(&self) -> f64 {
        let reads = self.hierarchy.dram_read_traffic.predictor;
        self.hierarchy.dram_queue_delay.mean_predictor(reads)
    }

    /// Aggregate DRAM data-bus utilization: channel-cycles spent
    /// transferring blocks divided by elapsed cycles. May exceed 1.0 when
    /// multiple channels are busy simultaneously; zero in `Ideal` runs.
    pub fn dram_utilization(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.hierarchy.dram_busy_cycles as f64 / self.elapsed_cycles as f64
        }
    }

    /// Total queueing-delay cycles (L2 ports + MSHR stalls + DRAM queues)
    /// per class, as a [`pv_mem::DelayBreakdown`].
    pub fn queue_delay(&self) -> pv_mem::DelayBreakdown {
        self.hierarchy.total_queue_delay()
    }

    /// Next-line instruction prefetches issued, summed over cores (the
    /// baseline I-prefetcher every configuration runs).
    pub fn next_line_issued(&self) -> u64 {
        self.hierarchy.next_line_total().issued
    }

    /// Next-line duplicate-miss suppressions, summed over cores.
    pub fn next_line_suppressed(&self) -> u64 {
        self.hierarchy.next_line_total().suppressed
    }

    /// Prefetches the feedback throttle dropped (zero when throttling is
    /// off or never engaged).
    pub fn dropped_prefetches(&self) -> u64 {
        self.throttle.as_ref().map_or(0, |t| t.dropped_prefetches)
    }

    /// A stable one-line digest of the simulated outcome (cycles, misses,
    /// traffic, coverage). Two runs of the same configuration must produce
    /// identical digests regardless of host, thread count or wall-clock;
    /// perf-only PRs must leave digests unchanged. Queueing-delay fields are
    /// deliberately *excluded* so that `Ideal`-mode digests stay comparable
    /// across the introduction of the contention model; under `Queued`
    /// contention the delays are part of `cycles` anyway.
    pub fn digest(&self) -> String {
        format!(
            "cycles={}|instr={}|l2req={}+{}|l2miss={}+{}|l2wb={}+{}|dram={}r{}w|cov={}c{}u{}o|pf={}",
            self.elapsed_cycles,
            self.total_instructions,
            self.hierarchy.l2_requests.application,
            self.hierarchy.l2_requests.predictor,
            self.hierarchy.l2_misses.application,
            self.hierarchy.l2_misses.predictor,
            self.hierarchy.l2_writebacks.application,
            self.hierarchy.l2_writebacks.predictor,
            self.hierarchy.dram_reads,
            self.hierarchy.dram_writes,
            self.coverage.covered,
            self.coverage.uncovered,
            self.coverage.overpredictions,
            self.prefetches_issued,
        )
    }
}

/// Mean and half-width of a 95% confidence interval for a set of samples
/// (normal approximation), used when experiments run multiple seeds — the
/// analogue of the paper's SMARTS error bars.
pub fn mean_and_ci95(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let variance = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let sem = (variance / n).sqrt();
    (mean, 1.96 * sem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(instructions: u64, cycles: u64) -> RunMetrics {
        RunMetrics {
            configuration: "test".to_owned(),
            workload: "test".to_owned(),
            elapsed_cycles: cycles,
            total_instructions: instructions,
            per_core_ipc: vec![],
            hierarchy: HierarchyStats::new(1),
            coverage: CoverageMetrics::default(),
            sms: None,
            markov: None,
            pv: None,
            pv_tables: Vec::new(),
            prefetches_issued: 0,
            throttle: None,
            repartition: None,
        }
    }

    #[test]
    fn coverage_fractions() {
        let coverage = CoverageMetrics {
            covered: 60,
            uncovered: 40,
            overpredictions: 10,
        };
        assert_eq!(coverage.baseline_misses(), 100);
        assert!((coverage.coverage() - 0.6).abs() < 1e-12);
        assert!((coverage.overprediction_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn coverage_handles_zero_misses() {
        let coverage = CoverageMetrics::default();
        assert_eq!(coverage.coverage(), 0.0);
        assert_eq!(coverage.overprediction_ratio(), 0.0);
    }

    #[test]
    fn aggregate_ipc_and_speedup() {
        let baseline = metrics(1_000, 1_000);
        let faster = metrics(1_000, 800);
        assert!((baseline.aggregate_ipc() - 1.0).abs() < 1e-12);
        assert!((faster.speedup_over(&baseline) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn traffic_increases_relative_to_baseline() {
        let mut baseline = metrics(1, 1);
        baseline.hierarchy.l2_requests.application = 100;
        baseline.hierarchy.l2_misses.application = 50;
        let mut pv = metrics(1, 1);
        pv.hierarchy.l2_requests.application = 100;
        pv.hierarchy.l2_requests.predictor = 30;
        pv.hierarchy.l2_misses.application = 50;
        pv.hierarchy.l2_misses.predictor = 1;
        assert!((pv.l2_request_increase_over(&baseline) - 0.3).abs() < 1e-12);
        assert!((pv.offchip_increase_over(&baseline) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let a = metrics(1_000, 2_000);
        let b = metrics(1_000, 2_000);
        assert_eq!(a.digest(), b.digest());
        let mut c = metrics(1_000, 2_000);
        c.hierarchy.l2_misses.predictor = 7;
        assert_ne!(a.digest(), c.digest());
        assert!(a.digest().starts_with("cycles=2000|instr=1000|"));
    }

    #[test]
    fn contention_helpers_average_over_class_reads() {
        let mut m = metrics(100, 1_000);
        m.hierarchy.dram_read_traffic.application = 10;
        m.hierarchy.dram_read_traffic.predictor = 5;
        m.hierarchy.dram_queue_delay.record(false, 200);
        m.hierarchy.dram_queue_delay.record(true, 50);
        m.hierarchy.dram_busy_cycles = 400;
        assert!((m.dram_queue_delay_application() - 20.0).abs() < 1e-12);
        assert!((m.dram_queue_delay_predictor() - 10.0).abs() < 1e-12);
        assert!((m.dram_utilization() - 0.4).abs() < 1e-12);
        assert_eq!(m.queue_delay().total_cycles(), 250);
    }

    #[test]
    fn ci_of_constant_samples_is_zero() {
        let (mean, ci) = mean_and_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!(ci.abs() < 1e-12);
    }

    #[test]
    fn ci_grows_with_spread() {
        let (_, tight) = mean_and_ci95(&[1.0, 1.01, 0.99, 1.0]);
        let (_, wide) = mean_and_ci95(&[0.5, 1.5, 0.2, 1.8]);
        assert!(wide > tight);
        assert_eq!(mean_and_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_and_ci95(&[3.0]).1, 0.0);
    }
}
