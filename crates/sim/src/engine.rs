//! The prefetch-engine abstraction the simulator drives.
//!
//! Every data prefetcher the simulated CMP can run — SMS, Markov, the
//! cohabiting composite, and the feedback-throttled wrapper — implements
//! [`PrefetchEngine`], so `System` has exactly one feed/issue path instead
//! of a per-variant `match`. The contract mirrors what the paper's
//! "optimization engine" sees: L1 data accesses and L1 evictions flow in,
//! predicted prefetches (with the cycle their prediction became available)
//! flow out, and statistics are collected through a uniform
//! [`EngineSnapshot`].

use crate::repartition::RepartitionMetrics;
use crate::throttle::ThrottleMetrics;
use pv_core::{PvStats, SharedPvProxy, VirtualizedBackend};
use pv_markov::{MarkovPrefetcher, MarkovStats, VirtualizedMarkov};
use pv_mem::{BlockAddr, MemoryHierarchy};
use pv_sms::{PrefetchAction, SmsPrefetcher, SmsStats, VirtualizedPht};

/// Statistics of one cohabiting table, summed over cores by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvTableStats {
    /// Table label (`"SMS"` or `"Markov"`).
    pub label: String,
    /// The table's PVProxy statistics.
    pub stats: PvStats,
}

/// Everything an engine reports at collection time. Single-predictor
/// engines fill their own slot (and `pv` when virtualized); composites
/// additionally split PV statistics per cohabiting table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSnapshot {
    /// SMS engine statistics, when an SMS engine ran.
    pub sms: Option<SmsStats>,
    /// Markov engine statistics, when a Markov engine ran.
    pub markov: Option<MarkovStats>,
    /// Aggregate PVProxy statistics of a single virtualized table (`None`
    /// for dedicated storage; composites report per-table stats in
    /// [`Self::pv_tables`] instead).
    pub pv: Option<PvStats>,
    /// Labelled per-table PVProxy statistics of cohabiting engines (empty
    /// for single-predictor engines).
    pub pv_tables: Vec<PvTableStats>,
    /// Feedback-throttling statistics, when the engine is throttled.
    pub throttle: Option<ThrottleMetrics>,
    /// Dynamic-repartitioning statistics, when a controller moves the
    /// PV-region boundaries.
    pub repartition: Option<RepartitionMetrics>,
}

impl EngineSnapshot {
    /// Folds `other` into `self` (aggregation across engines or cores).
    pub fn merge(&mut self, other: EngineSnapshot) {
        if let Some(s) = other.sms {
            self.sms.get_or_insert_with(SmsStats::default).merge(&s);
        }
        if let Some(m) = other.markov {
            self.markov.get_or_insert_with(MarkovStats::default).merge(&m);
        }
        if let Some(p) = other.pv {
            self.pv.get_or_insert_with(PvStats::default).merge(&p);
        }
        for table in other.pv_tables {
            match self.pv_tables.iter_mut().find(|t| t.label == table.label) {
                Some(total) => total.stats.merge(&table.stats),
                None => self.pv_tables.push(table),
            }
        }
        if let Some(t) = other.throttle {
            self.throttle.get_or_insert_with(ThrottleMetrics::default).merge(&t);
        }
        if let Some(r) = other.repartition {
            self.repartition.get_or_insert_with(RepartitionMetrics::default).merge(&r);
        }
    }
}

/// One core's data-prefetch engine, as the simulator sees it.
///
/// Implementations must be deterministic: the same access stream against
/// the same `MemoryHierarchy` state must produce the same prefetch
/// sequence on every host.
///
/// The `shared` parameter on both feed methods carries the per-core
/// [`SharedPvProxy`] down to cohabitation adapters; whoever owns the proxy
/// (the composite prefetcher, in the shared arrangement) substitutes its
/// own on the way down, and the simulator passes `None` at the top. Engines
/// without shared tables ignore it. `Send` is a supertrait so a boxed
/// engine travels with its `System` across host threads (the fleet driver
/// depends on this).
pub trait PrefetchEngine: Send {
    /// Notifies the engine that blocks left the core's L1 data cache
    /// (evictions or invalidations). Engines that do not track residency
    /// (e.g. Markov) ignore this.
    fn on_l1_evictions(
        &mut self,
        blocks: &[BlockAddr],
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    );

    /// Observes one L1 data access and appends every prefetch the engine
    /// wants issued to `out` (each with the cycle its prediction became
    /// available). `out` is a scratch buffer owned by the caller; the
    /// engine must only push.
    fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    );

    /// Resets statistics; learned predictor state is preserved (the
    /// warm-up/measurement boundary).
    fn reset_stats(&mut self);

    /// Collects the engine's statistics.
    fn snapshot(&self) -> EngineSnapshot;
}

impl<E: PrefetchEngine + ?Sized> PrefetchEngine for Box<E> {
    fn on_l1_evictions(
        &mut self,
        blocks: &[BlockAddr],
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        (**self).on_l1_evictions(blocks, mem, shared, now);
    }

    fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) {
        (**self).on_data_access(pc, address, mem, shared, now, out);
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }

    fn snapshot(&self) -> EngineSnapshot {
        (**self).snapshot()
    }
}

impl PrefetchEngine for SmsPrefetcher {
    fn on_l1_evictions(
        &mut self,
        blocks: &[BlockAddr],
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        SmsPrefetcher::on_l1_evictions(self, blocks, mem, shared, now);
    }

    fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) {
        SmsPrefetcher::on_data_access_into(self, pc, address, mem, shared, now, out);
    }

    fn reset_stats(&mut self) {
        SmsPrefetcher::reset_stats(self);
    }

    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            sms: Some(*self.stats()),
            pv: self
                .storage()
                .as_any()
                .downcast_ref::<VirtualizedPht>()
                .map(|pht| *pht.proxy().stats()),
            ..EngineSnapshot::default()
        }
    }
}

impl PrefetchEngine for MarkovPrefetcher {
    fn on_l1_evictions(
        &mut self,
        _blocks: &[BlockAddr],
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        _now: u64,
    ) {
        // The Markov engine learns from the access stream only; L1
        // residency does not factor into its predictions.
    }

    fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) {
        let response = MarkovPrefetcher::on_data_access(self, pc, address, mem, shared, now);
        if let Some(block) = response.prefetch {
            out.push(PrefetchAction {
                block,
                issue_at: response.issue_at,
            });
        }
    }

    fn reset_stats(&mut self) {
        MarkovPrefetcher::reset_stats(self);
    }

    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            markov: Some(*self.stats()),
            pv: self
                .storage()
                .as_any()
                .downcast_ref::<VirtualizedMarkov>()
                .map(|table| *table.proxy().stats()),
            ..EngineSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_markov::{DedicatedMarkov, MarkovConfig};
    use pv_mem::HierarchyConfig;
    use pv_sms::{build_storage, SmsConfig};

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(4))
    }

    /// Drives an engine through the trait object interface only.
    fn drive(engine: &mut dyn PrefetchEngine, mem: &mut MemoryHierarchy) -> usize {
        let mut out = Vec::new();
        for i in 0..256u64 {
            let pc = 0x4000 + (i % 4) * 4;
            let addr = (i % 32) * 4096 + (i % 8) * 64;
            engine.on_data_access(pc, addr, mem, None, i * 100, &mut out);
        }
        out.len()
    }

    #[test]
    fn sms_engine_reports_through_snapshot() {
        let config = SmsConfig::paper_1k_11a();
        let mut engine = SmsPrefetcher::new(config, build_storage(&config));
        let mut mem = mem();
        drive(&mut engine, &mut mem);
        let snap = engine.snapshot();
        let sms = snap.sms.expect("SMS stats present");
        assert!(sms.accesses_observed > 0);
        assert!(snap.markov.is_none());
        assert!(snap.pv.is_none(), "dedicated PHT exposes no PV stats");
        assert!(snap.pv_tables.is_empty());
    }

    #[test]
    fn markov_engine_ignores_evictions_and_reports_stats() {
        let config = MarkovConfig::paper_1k();
        let mut engine = MarkovPrefetcher::new(config, Box::new(DedicatedMarkov::new(config)));
        let mut mem = mem();
        let before = mem.stats().l2_requests.total();
        PrefetchEngine::on_l1_evictions(&mut engine, &[BlockAddr::new(7)], &mut mem, None, 0);
        assert_eq!(
            mem.stats().l2_requests.total(),
            before,
            "eviction feed must be a no-op for Markov"
        );
        drive(&mut engine, &mut mem);
        let snap = engine.snapshot();
        assert!(snap.markov.expect("Markov stats present").accesses_observed > 0);
        assert!(snap.sms.is_none());
    }

    #[test]
    fn snapshot_merge_accumulates_and_labels() {
        let mut total = EngineSnapshot::default();
        let a = EngineSnapshot {
            sms: Some(SmsStats {
                accesses_observed: 3,
                ..SmsStats::default()
            }),
            pv_tables: vec![PvTableStats {
                label: "SMS".to_owned(),
                stats: PvStats::default(),
            }],
            ..EngineSnapshot::default()
        };
        total.merge(a.clone());
        total.merge(a);
        assert_eq!(total.sms.unwrap().accesses_observed, 6);
        assert_eq!(total.pv_tables.len(), 1, "same label merges in place");
    }
}
