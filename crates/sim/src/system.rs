//! The simulated CMP: cores, traces, prefetchers and the shared memory
//! hierarchy, plus the warm-up/measure run loop.

use crate::composite::CompositePrefetcher;
use crate::config::{PrefetcherKind, SimConfig};
use crate::core_model::CoreModel;
use crate::engine::{EngineSnapshot, PrefetchEngine};
use crate::metrics::{CoverageMetrics, RunMetrics};
use crate::throttle::ThrottledEngine;
use pv_core::PvRegionPlan;
use pv_markov::MarkovPrefetcher;
use pv_mem::{DataClass, EvictionBuffer, MemoryHierarchy, Requester};
use pv_sms::{build_storage, PrefetchAction, SmsPrefetcher, VirtualizedPht};
use pv_workloads::{AccessStream, MemOp, TraceGenerator, TraceRecord, WorkloadParams};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which run-loop picks the next core to step.
///
/// Both schedulers advance the core whose local clock is furthest behind,
/// breaking ties by core index, and therefore produce bit-identical step
/// orders and metrics. The event heap is the production path; the scan is
/// the obviously-correct reference kept for differential testing (the same
/// pattern as `pv_mem::ReferenceSetAssociative`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// `BinaryHeap` of ready cores keyed by `(now, idx)`, with a
    /// run-until-overtaken inner loop: the popped core keeps stepping while
    /// its clock stays ahead of (less than) the heap peek, so long record
    /// runs on one lagging core cost zero heap traffic.
    #[default]
    EventHeap,
    /// The original per-record `min_by_key` scan over every core.
    ReferenceScan,
}

/// Per-core simulation state.
struct CoreState {
    id: usize,
    /// The core's record source — any [`AccessStream`]: a live synthetic
    /// generator, a replayed trace, or a non-stationary scenario stream.
    stream: Box<dyn AccessStream>,
    model: CoreModel,
    /// The core's data-prefetch engine — any [`PrefetchEngine`]: SMS,
    /// Markov, a cohabiting composite, or a throttled wrapper. The
    /// simulator drives all of them through one feed/issue path.
    engine: Option<Box<dyn PrefetchEngine>>,
    covered: u64,
    prefetches_issued: u64,
    records_consumed: u64,
    /// Set when the stream returned `None`; replayed traces are finite and
    /// end the core's run cleanly.
    exhausted: bool,
}

/// The simulated four-core system.
pub struct System {
    config: SimConfig,
    workload_name: String,
    hierarchy: MemoryHierarchy,
    cores: Vec<CoreState>,
    /// Scratch buffer the engines append predictions into (reused across
    /// accesses so the hot path stays allocation-free).
    actions: Vec<PrefetchAction>,
    scheduler: Scheduler,
    /// Ready-core heap for [`Scheduler::EventHeap`], keyed by `(now, idx)`.
    /// Kept across phases so restarts are allocation-free.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-core record targets for the current phase (reused across phases).
    targets: Vec<u64>,
    /// When present, every `step_core` appends the core index it stepped —
    /// the differential tests compare schedulers on this exact sequence.
    step_trace: Option<Vec<u32>>,
}

/// Compile-time guard: a whole [`System`] — streams, engines (including the
/// composite with its owned `SharedPvProxy`) and the hierarchy — must be
/// `Send`, so fleet sweeps can hand complete simulations to worker threads.
/// Reintroducing an `Rc`/`RefCell` anywhere inside the simulator fails this
/// assertion at build time rather than in the fleet.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<CompositePrefetcher>();
    assert_send::<Box<dyn PrefetchEngine>>();
    assert_send::<Box<dyn AccessStream>>();
};

impl System {
    /// Builds the system described by `config`, with every core running an
    /// independent instance of `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `config` or `workload` fail validation.
    pub fn new(config: SimConfig, workload: &WorkloadParams) -> Self {
        let per_core: Vec<WorkloadParams> = (0..config.cores).map(|_| workload.clone()).collect();
        Self::new_mixed(config, &per_core)
    }

    /// Builds a heterogeneous multi-programmed system: core `i` runs
    /// `workloads[i]`. All cores share the L2 and memory, so dissimilar
    /// workloads compete for the same capacity and (under queued contention)
    /// the same bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation, if `workloads.len()` does not
    /// match the core count, or if any workload fails validation.
    pub fn new_mixed(config: SimConfig, workloads: &[WorkloadParams]) -> Self {
        config.assert_valid();
        assert_eq!(
            workloads.len(),
            config.cores,
            "need exactly one workload per core ({} workloads, {} cores)",
            workloads.len(),
            config.cores
        );
        for workload in workloads {
            workload.validate().expect("workload parameters must be valid");
        }
        let streams = workloads
            .iter()
            .enumerate()
            .map(|(core, workload)| {
                Box::new(TraceGenerator::new(workload, config.seed, core)) as Box<dyn AccessStream>
            })
            .collect();
        Self::from_streams(config, streams)
    }

    /// Builds a system whose cores consume the given streams: core `i`
    /// reads `streams[i]`. This is the general entry point — generators,
    /// replayed traces, and scenario compositions all arrive here. Finite
    /// streams end the owning core's run cleanly when they dry up.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation or if `streams.len()` does not
    /// match the core count.
    pub fn from_streams(config: SimConfig, streams: Vec<Box<dyn AccessStream>>) -> Self {
        config.assert_valid();
        assert_eq!(
            streams.len(),
            config.cores,
            "need exactly one stream per core ({} streams, {} cores)",
            streams.len(),
            config.cores
        );
        let labels: Vec<String> = streams.iter().map(|s| s.label().to_owned()).collect();
        let workload_name = if labels.windows(2).all(|pair| pair[0] == pair[1]) {
            labels[0].clone()
        } else {
            labels.join("+")
        };
        let hierarchy = MemoryHierarchy::new(config.hierarchy);
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(core, stream)| {
                let engine = Self::build_prefetcher(&config, core);
                CoreState {
                    id: core,
                    stream,
                    model: CoreModel::new(config.core, config.hierarchy.l1d.data_latency),
                    engine,
                    covered: 0,
                    prefetches_issued: 0,
                    records_consumed: 0,
                    exhausted: false,
                }
            })
            .collect();
        System {
            workload_name,
            config,
            hierarchy,
            cores,
            actions: Vec::new(),
            scheduler: Scheduler::default(),
            ready: BinaryHeap::new(),
            targets: Vec::new(),
            step_trace: None,
        }
    }

    fn build_prefetcher(config: &SimConfig, core: usize) -> Option<Box<dyn PrefetchEngine>> {
        Self::build_engine(&config.prefetcher, config, core)
    }

    /// Builds the [`PrefetchEngine`] a `kind` configuration describes for
    /// one core. Recursion handles the wrapping variants (throttling).
    fn build_engine(
        kind: &PrefetcherKind,
        config: &SimConfig,
        core: usize,
    ) -> Option<Box<dyn PrefetchEngine>> {
        match kind {
            PrefetcherKind::None => None,
            PrefetcherKind::Sms(sms_config) => Some(Box::new(SmsPrefetcher::new(
                *sms_config,
                build_storage(sms_config),
            ))),
            PrefetcherKind::VirtualizedSms { sms, pv } => {
                let base = config.hierarchy.pv_regions.core_base(core);
                Some(Box::new(SmsPrefetcher::new(
                    *sms,
                    Box::new(VirtualizedPht::new(core, *pv, base)),
                )))
            }
            PrefetcherKind::Markov(markov) => Some(Box::new(MarkovPrefetcher::new(
                *markov,
                Box::new(pv_markov::DedicatedMarkov::new(*markov)),
            ))),
            PrefetcherKind::VirtualizedMarkov { markov, pv } => {
                let base = config.hierarchy.pv_regions.core_base(core);
                Some(Box::new(MarkovPrefetcher::new(
                    *markov,
                    Box::new(pv_markov::VirtualizedMarkov::new(core, *pv, base)),
                )))
            }
            PrefetcherKind::CompositeDedicated { sms, markov, pv } => {
                let plan = Self::cohabit_plan(config, pv);
                Some(Box::new(CompositePrefetcher::dedicated(
                    core, *sms, *markov, *pv, &plan,
                )))
            }
            PrefetcherKind::CompositeShared { sms, markov, pv } => {
                let plan = Self::cohabit_plan(config, pv);
                Some(Box::new(CompositePrefetcher::shared(
                    core, *sms, *markov, *pv, &plan,
                )))
            }
            PrefetcherKind::Throttled { inner, throttle } => {
                let engine = Self::build_engine(inner, config, core)
                    .expect("validation rejects throttled no-prefetch configurations");
                Some(Box::new(ThrottledEngine::new(core, engine, *throttle)))
            }
            PrefetcherKind::Repartitioned { inner, repartition } => {
                let PrefetcherKind::CompositeShared { sms, markov, pv } = &**inner else {
                    unreachable!("validation rejects repartitioning non-shared-composite kinds")
                };
                let plan = Self::scarce_plan(config, pv);
                Some(Box::new(CompositePrefetcher::shared_repartitioned(
                    core,
                    *sms,
                    *markov,
                    *pv,
                    plan,
                    *repartition,
                )))
            }
        }
    }

    /// The region plan of a cohabiting configuration: one SMS table and one
    /// Markov table per core, side by side in the core's PV region.
    fn cohabit_plan(config: &SimConfig, pv: &pv_core::PvConfig) -> PvRegionPlan {
        PvRegionPlan::new(
            config.hierarchy.pv_regions,
            vec![pv.table_bytes(), pv.table_bytes()],
        )
    }

    /// The starting plan of a repartitioned configuration: whatever the
    /// hierarchy actually reserves per core, split evenly into two
    /// block-aligned sub-regions (each capped at the table's own footprint —
    /// backing more blocks than a table has sets buys nothing). On the
    /// paper-default 64 KB region this backs half of each 64 KB table, the
    /// scarcity the controller then reallocates.
    fn scarce_plan(config: &SimConfig, pv: &pv_core::PvConfig) -> PvRegionPlan {
        let half = config.hierarchy.pv_regions.bytes_per_core / 2;
        let per_table = ((half / pv.block_bytes) * pv.block_bytes).min(pv.table_bytes());
        PvRegionPlan::new(config.hierarchy.pv_regions, vec![per_table, per_table])
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The shared memory hierarchy (for inspection in tests).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Records each core has consumed so far (warm-up plus measurement),
    /// in core order.
    pub fn records_consumed(&self) -> impl Iterator<Item = u64> + '_ {
        self.cores.iter().map(|c| c.records_consumed)
    }

    /// Whether each core's stream has ended, in core order. Always
    /// all-false for the infinite synthetic generators; replayed traces set
    /// their core's flag when the trace runs out.
    pub fn exhausted(&self) -> impl Iterator<Item = bool> + '_ {
        self.cores.iter().map(|c| c.exhausted)
    }

    /// Selects the run-loop implementation (event heap by default).
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.scheduler = scheduler;
    }

    /// The run-loop implementation in use.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Starts (or stops) recording the core index of every step taken. The
    /// differential tests compare schedulers on this exact sequence.
    pub fn record_step_trace(&mut self, enabled: bool) {
        self.step_trace = if enabled { Some(Vec::new()) } else { None };
    }

    /// Takes the recorded step order, leaving recording enabled with an
    /// empty trace.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::record_step_trace`] was not enabled.
    pub fn take_step_trace(&mut self) -> Vec<u32> {
        self.step_trace
            .replace(Vec::new())
            .expect("step-trace recording is not enabled")
    }

    /// Runs the warm-up and measurement windows and returns the metrics of
    /// the measurement window.
    pub fn run(&mut self) -> RunMetrics {
        self.run_phase(self.config.warmup_records);
        self.reset_measurement_state();
        self.run_phase(self.config.measure_records);
        self.collect_metrics()
    }

    /// Consumes up to `records_per_core` further trace records on every
    /// core (one scheduling phase), without touching warm-up state — the
    /// building block benchmarks and scheduler tests drive directly.
    pub fn run_records(&mut self, records_per_core: u64) {
        self.run_phase(records_per_core);
    }

    /// Consumes up to `records_per_core` further trace records on every
    /// core, always advancing the core whose local clock is furthest behind
    /// so the shared L2 sees a fair interleaving. A core whose stream ends
    /// early simply stops participating: the timing model is synchronous
    /// (no in-flight accesses to drain), so its statistics are coherent at
    /// whatever point the trace ran out.
    fn run_phase(&mut self, records_per_core: u64) {
        self.targets.clear();
        self.targets
            .extend(self.cores.iter().map(|c| c.records_consumed + records_per_core));
        match self.scheduler {
            Scheduler::EventHeap => self.run_phase_heap(),
            Scheduler::ReferenceScan => self.run_phase_reference(),
        }
    }

    /// The event-heap run loop. The heap orders eligible cores by
    /// `(now, idx)`; `Reverse` turns the max-heap into a min-heap, so the
    /// pop is exactly the core the reference scan's first-minimum
    /// `min_by_key` would pick. The popped core then runs until overtaken:
    /// it keeps stepping while its key stays below the heap peek (strict
    /// comparison — keys never tie, the indices differ), which consumes
    /// long record runs on a lagging core with zero heap traffic. Cores
    /// that exhaust or reach their target leave the heap instead of being
    /// re-filtered on every step.
    fn run_phase_heap(&mut self) {
        debug_assert!(self.ready.is_empty(), "the previous phase drained the heap");
        self.ready.clear();
        for (idx, core) in self.cores.iter().enumerate() {
            if !core.exhausted && core.records_consumed < self.targets[idx] {
                self.ready.push(Reverse((core.model.now(), idx)));
            }
        }
        while let Some(Reverse((_, idx))) = self.ready.pop() {
            loop {
                self.step_core(idx);
                let core = &self.cores[idx];
                if core.exhausted || core.records_consumed >= self.targets[idx] {
                    break;
                }
                let key = (core.model.now(), idx);
                if let Some(&Reverse(peek)) = self.ready.peek() {
                    if key > peek {
                        self.ready.push(Reverse(key));
                        break;
                    }
                }
            }
        }
    }

    /// The reference run loop: rescan every core per record (the original
    /// implementation, kept verbatim for differential testing).
    fn run_phase_reference(&mut self) {
        loop {
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(idx, core)| !core.exhausted && core.records_consumed < self.targets[*idx])
                .min_by_key(|(_, core)| core.model.now())
                .map(|(idx, _)| idx);
            let Some(idx) = next else { break };
            self.step_core(idx);
        }
    }

    fn reset_measurement_state(&mut self) {
        self.hierarchy.reset_stats();
        for core in &mut self.cores {
            core.model.reset();
            core.covered = 0;
            core.prefetches_issued = 0;
            if let Some(engine) = &mut core.engine {
                engine.reset_stats();
            }
        }
    }

    fn step_core(&mut self, idx: usize) {
        if let Some(trace) = &mut self.step_trace {
            trace.push(idx as u32);
        }
        let Some(record) = self.cores[idx].stream.next_record() else {
            self.cores[idx].exhausted = true;
            return;
        };
        self.cores[idx].records_consumed += 1;
        match record.op {
            MemOp::InstructionFetch => self.step_fetch(idx, &record),
            MemOp::Load | MemOp::Store => self.step_data(idx, &record),
        }
    }

    fn step_fetch(&mut self, idx: usize, record: &TraceRecord) {
        let core = &mut self.cores[idx];
        let now = core.model.now();
        let response = self.hierarchy.access(
            Requester::instruction(core.id),
            record.address,
            CoreModel::access_kind(record.op),
            DataClass::Application,
            now,
        );
        core.model
            .retire_memory_contended(record.op, response.latency, response.queue_delay);
    }

    fn step_data(&mut self, idx: usize, record: &TraceRecord) {
        let core_id = self.cores[idx].id;
        self.cores[idx].model.retire_non_memory(record.non_mem_instructions);
        let now = self.cores[idx].model.now();
        // The eviction scratch lives on the stack: `EvictionBuffer` is a
        // two-slot inline array, so the whole record path stays heap-free.
        let mut evictions = EvictionBuffer::default();
        let response = self.hierarchy.access_data(
            core_id,
            record.address,
            CoreModel::access_kind(record.op),
            now,
            &mut evictions,
        );
        if record.op == MemOp::Load && response.first_use_of_prefetch {
            self.cores[idx].covered += 1;
        }
        self.cores[idx].model.retire_memory_contended(
            record.op,
            response.latency,
            response.queue_delay,
        );

        // The single engine-agnostic feed/issue path: blocks displaced by
        // the demand fill end residency-tracked state (e.g. SMS spatial
        // generations), the access is fed to the engine, and every
        // prediction it drained into the scratch buffer is issued — with
        // eviction feedback after each issue, since a prefetch fill can
        // itself displace blocks the engine is watching.
        let Some(mut engine) = self.cores[idx].engine.take() else {
            return;
        };
        if !evictions.is_empty() {
            engine.on_l1_evictions(evictions.as_slice(), &mut self.hierarchy, None, now);
        }
        self.actions.clear();
        engine.on_data_access(
            record.pc,
            record.address,
            &mut self.hierarchy,
            None,
            now,
            &mut self.actions,
        );
        for action_idx in 0..self.actions.len() {
            let action = self.actions[action_idx];
            let issue_at = action.issue_at.max(now);
            let outcome =
                self.hierarchy
                    .prefetch_into_l1d(core_id, action.block, issue_at, &mut evictions);
            if outcome.issued {
                self.cores[idx].prefetches_issued += 1;
            }
            if !evictions.is_empty() {
                engine.on_l1_evictions(evictions.as_slice(), &mut self.hierarchy, None, issue_at);
            }
        }
        self.cores[idx].engine = Some(engine);
    }

    fn collect_metrics(&self) -> RunMetrics {
        let elapsed_cycles = self.cores.iter().map(|c| c.model.now()).max().unwrap_or(0);
        let total_instructions = self.cores.iter().map(|c| c.model.instructions()).sum();
        let per_core_ipc = self.cores.iter().map(|c| c.model.ipc()).collect();
        let hierarchy = self.hierarchy.stats();

        let mut coverage = CoverageMetrics::default();
        let mut snapshot = EngineSnapshot::default();
        let mut prefetches_issued = 0;
        for (core_idx, core) in self.cores.iter().enumerate() {
            coverage.covered += core.covered;
            coverage.uncovered += hierarchy.l1d[core_idx].read_misses;
            coverage.overpredictions += hierarchy.l1d[core_idx].prefetched_evicted_unused;
            prefetches_issued += core.prefetches_issued;
            if let Some(engine) = &core.engine {
                snapshot.merge(engine.snapshot());
            }
        }
        // Per-table splits feed the aggregate too (single-table engines
        // already report through `snapshot.pv`, composites only per table).
        let mut pv_total = snapshot.pv;
        for table in &snapshot.pv_tables {
            pv_total.get_or_insert_with(pv_core::PvStats::default).merge(&table.stats);
        }

        RunMetrics {
            configuration: self.config.prefetcher.label(),
            workload: self.workload_name.clone(),
            elapsed_cycles,
            total_instructions,
            per_core_ipc,
            hierarchy,
            coverage,
            sms: snapshot.sms,
            markov: snapshot.markov,
            pv: pv_total,
            pv_tables: snapshot.pv_tables,
            prefetches_issued,
            throttle: snapshot.throttle,
            repartition: snapshot.repartition,
        }
    }
}

/// Builds a [`System`] from `config` and runs it on `workload`.
pub fn run_workload(config: &SimConfig, workload: &WorkloadParams) -> RunMetrics {
    System::new(config.clone(), workload).run()
}

/// Builds a heterogeneous [`System`] (core `i` runs `workloads[i]`) and
/// runs it.
pub fn run_workload_mix(config: &SimConfig, workloads: &[WorkloadParams]) -> RunMetrics {
    System::new_mixed(config.clone(), workloads).run()
}

/// Builds a [`System`] over arbitrary per-core streams (core `i` reads
/// `streams[i]`) and runs it.
pub fn run_streams(config: &SimConfig, streams: Vec<Box<dyn AccessStream>>) -> RunMetrics {
    System::from_streams(config.clone(), streams).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrefetcherKind, SimConfig};
    use pv_workloads::workloads;

    /// A very small configuration so the unit tests stay fast; the full
    /// windows are exercised by the integration tests and experiments.
    fn tiny(prefetcher: PrefetcherKind) -> SimConfig {
        let mut config = SimConfig::quick(prefetcher);
        config.warmup_records = 15_000;
        config.measure_records = 25_000;
        config
    }

    #[test]
    fn baseline_run_produces_consistent_metrics() {
        let metrics = run_workload(&tiny(PrefetcherKind::None), &workloads::qry1());
        assert!(metrics.elapsed_cycles > 0);
        assert!(metrics.total_instructions > 0);
        assert!(metrics.aggregate_ipc() > 0.0);
        assert_eq!(metrics.per_core_ipc.len(), 4);
        assert_eq!(metrics.coverage.covered, 0, "baseline issues no prefetches");
        assert_eq!(metrics.prefetches_issued, 0);
        assert!(metrics.pv.is_none());
        assert!(metrics.hierarchy.l1d_total().read_misses > 0);
    }

    #[test]
    fn sms_covers_misses_and_improves_ipc_on_scan_workload() {
        let workload = workloads::qry1();
        let baseline = run_workload(&tiny(PrefetcherKind::None), &workload);
        let sms = run_workload(&tiny(PrefetcherKind::sms_1k_11a()), &workload);
        assert!(sms.coverage.covered > 0, "SMS must cover some misses");
        assert!(
            sms.coverage.coverage() > 0.2,
            "scan workload should be well covered"
        );
        assert!(
            sms.speedup_over(&baseline) > 0.0,
            "prefetching must help the scan workload (speedup {:.3})",
            sms.speedup_over(&baseline)
        );
        assert!(sms.prefetches_issued > 0);
    }

    #[test]
    fn virtualized_prefetcher_reports_pv_stats_and_predictor_traffic() {
        let workload = workloads::qry1();
        let metrics = run_workload(&tiny(PrefetcherKind::sms_pv8()), &workload);
        let pv = metrics.pv.expect("virtualized run must expose PV stats");
        assert!(pv.lookups > 0);
        assert!(pv.memory_requests > 0);
        assert!(metrics.hierarchy.l2_requests.predictor > 0);
        assert!(
            metrics.coverage.covered > 0,
            "virtualized SMS must still cover misses"
        );
    }

    #[test]
    fn dedicated_runs_have_no_predictor_traffic() {
        let metrics = run_workload(&tiny(PrefetcherKind::sms_1k_11a()), &workloads::qry17());
        assert_eq!(metrics.hierarchy.l2_requests.predictor, 0);
        assert_eq!(metrics.hierarchy.l2_misses.predictor, 0);
        assert!(metrics.pv.is_none());
    }

    #[test]
    fn runs_are_deterministic() {
        let workload = workloads::qry17();
        let a = run_workload(&tiny(PrefetcherKind::sms_pv8()), &workload);
        let b = run_workload(&tiny(PrefetcherKind::sms_pv8()), &workload);
        assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        assert_eq!(a.total_instructions, b.total_instructions);
        assert_eq!(a.hierarchy.l2_requests, b.hierarchy.l2_requests);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn markov_backends_run_and_report_stats() {
        let workload = workloads::qry1();
        let dedicated = run_workload(&tiny(PrefetcherKind::markov_1k()), &workload);
        let stats = dedicated.markov.expect("markov runs must expose engine stats");
        assert!(stats.lookups > 0);
        assert!(
            dedicated.pv.is_none(),
            "the dedicated table issues no PV traffic"
        );
        assert_eq!(dedicated.hierarchy.l2_requests.predictor, 0);

        let virtualized = run_workload(&tiny(PrefetcherKind::markov_pv8()), &workload);
        let pv = virtualized.pv.expect("virtualized Markov must expose PV stats");
        assert!(pv.lookups > 0);
        assert!(pv.memory_requests > 0);
        assert!(virtualized.hierarchy.l2_requests.predictor > 0);
        assert_eq!(virtualized.configuration, "Markov-PV8");
    }

    #[test]
    fn composite_kinds_run_both_engines_and_split_pv_stats_per_table() {
        let workload = workloads::qry1();
        for kind in [
            PrefetcherKind::composite_dedicated(4),
            PrefetcherKind::composite_shared(8),
        ] {
            let mut config = tiny(kind.clone());
            config.hierarchy = config.hierarchy.with_pv_bytes_per_core(kind.pv_bytes_per_core());
            let metrics = run_workload(&config, &workload);
            let sms = metrics.sms.as_ref().expect("composite runs expose SMS stats");
            let markov = metrics.markov.as_ref().expect("composite runs expose Markov stats");
            assert!(sms.accesses_observed > 0);
            assert!(markov.accesses_observed > 0);
            assert!(metrics.hierarchy.l2_requests.predictor > 0);
            let pv = metrics.pv.as_ref().expect("composite runs expose PV stats");
            assert_eq!(metrics.pv_tables.len(), 2, "one entry per cohabiting table");
            assert_eq!(metrics.pv_tables[0].label, "SMS");
            assert_eq!(metrics.pv_tables[1].label, "Markov");
            let per_table_sum: u64 =
                metrics.pv_tables.iter().map(|t| t.stats.memory_requests).sum();
            assert_eq!(
                per_table_sum, pv.memory_requests,
                "per-table split must sum to total"
            );
            assert!(
                metrics.pv_tables.iter().all(|t| t.stats.lookups > 0),
                "both tables must serve their engine ({})",
                metrics.configuration
            );
        }
    }

    #[test]
    fn repartitioned_kind_runs_scarce_on_the_baseline_region() {
        // The plain shared composite needs 128 KB/core and panics on the
        // 64 KB baseline region (test below); the repartitioned kind runs
        // there by design — scarcity is the point.
        let workload = workloads::qry1();
        let metrics = run_workload(
            &tiny(PrefetcherKind::composite_shared_dynamic(8)),
            &workload,
        );
        assert_eq!(metrics.configuration, "SMS+Markov-shPV8-dyn");
        let repartition = metrics.repartition.as_ref().expect("controller metrics");
        assert!(
            repartition.windows > 0,
            "windows must advance with accesses"
        );
        // Four cores, 1024 backed blocks each (half of each 1024-set table).
        assert_eq!(repartition.final_backed.iter().sum::<u64>(), 4 * 1024);
        assert_eq!(repartition.final_backed.len(), 2);
        // Scarcity shows up in the per-table split: some lookups landed on
        // unbacked sets and were counted as misses without memory traffic.
        let unbacked: u64 = metrics.pv_tables.iter().map(|t| t.stats.unbacked_lookups).sum();
        assert!(unbacked > 0, "a half-backed plan must see unbacked lookups");

        // The frozen control arm runs under identical scarcity, zero moves.
        let frozen = run_workload(&tiny(PrefetcherKind::composite_shared_scarce(8)), &workload);
        assert_eq!(frozen.configuration, "SMS+Markov-shPV8-scarce");
        let control = frozen.repartition.as_ref().expect("controller metrics");
        assert_eq!(control.replans, 0);
        assert_eq!(control.final_backed, vec![4 * 512, 4 * 512]);
    }

    #[test]
    fn repartitioned_runs_are_deterministic() {
        let workload = workloads::qry17();
        let a = run_workload(
            &tiny(PrefetcherKind::composite_shared_dynamic(8)),
            &workload,
        );
        let b = run_workload(
            &tiny(PrefetcherKind::composite_shared_dynamic(8)),
            &workload,
        );
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.repartition, b.repartition, "the plan trace must replay");
    }

    #[test]
    #[should_panic(expected = "PV bytes per core")]
    fn composite_kinds_reject_undersized_pv_regions() {
        // The baseline region (64 KB/core) cannot hold two 64 KB tables.
        let _ = run_workload(
            &tiny(PrefetcherKind::composite_shared(8)),
            &workloads::qry1(),
        );
    }

    #[test]
    fn labels_flow_into_metrics() {
        let metrics = run_workload(&tiny(PrefetcherKind::sms_8_11a()), &workloads::qry17());
        assert_eq!(metrics.configuration, "SMS-8-11a");
        assert_eq!(metrics.workload, "Qry17");
    }

    #[test]
    fn mixed_workloads_run_per_core_and_label_the_mix() {
        let mix = [
            workloads::apache(),
            workloads::db2(),
            workloads::qry1(),
            workloads::qry17(),
        ];
        let metrics = run_workload_mix(&tiny(PrefetcherKind::None), &mix);
        assert_eq!(metrics.workload, "Apache+DB2+Qry1+Qry17");
        assert_eq!(metrics.per_core_ipc.len(), 4);
        assert!(metrics.per_core_ipc.iter().all(|&ipc| ipc > 0.0));
        // Every core makes progress against its own trace; the scan query
        // core must behave differently from the OLTP cores.
        let spread = metrics.per_core_ipc.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - metrics.per_core_ipc.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 0.0,
            "heterogeneous cores should not have identical IPC"
        );
    }

    #[test]
    fn mixed_with_identical_workloads_matches_homogeneous_run() {
        let config = tiny(PrefetcherKind::sms_pv8());
        let homogeneous = run_workload(&config, &workloads::qry1());
        let mixed = run_workload_mix(
            &config,
            &[
                workloads::qry1(),
                workloads::qry1(),
                workloads::qry1(),
                workloads::qry1(),
            ],
        );
        assert_eq!(homogeneous.elapsed_cycles, mixed.elapsed_cycles);
        assert_eq!(homogeneous.workload, mixed.workload);
        assert_eq!(
            homogeneous.hierarchy.l2_requests,
            mixed.hierarchy.l2_requests
        );
    }

    #[test]
    #[should_panic(expected = "one workload per core")]
    fn mixed_workload_count_must_match_cores() {
        let config = tiny(PrefetcherKind::None);
        let _ = System::new_mixed(config, &[workloads::qry1(), workloads::qry2()]);
    }

    #[test]
    fn stream_runs_match_generator_runs_exactly() {
        use pv_workloads::AccessStream;
        let config = tiny(PrefetcherKind::sms_pv8());
        let workload = workloads::qry1();
        let direct = run_workload(&config, &workload);
        let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
            .map(|core| {
                Box::new(TraceGenerator::new(&workload, config.seed, core)) as Box<dyn AccessStream>
            })
            .collect();
        let via_streams = run_streams(&config, streams);
        assert_eq!(direct.digest(), via_streams.digest());
        assert_eq!(direct.workload, via_streams.workload);
    }

    #[test]
    fn finite_streams_end_the_run_cleanly() {
        use pv_workloads::{AccessStream, TakeStream};
        let config = tiny(PrefetcherKind::sms_pv8());
        // Core 2's trace dries up mid-measurement; the others run in full.
        let full = config.warmup_records + config.measure_records;
        let short = config.warmup_records + config.measure_records / 2;
        let workload = workloads::qry1();
        let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
            .map(|core| {
                let generator = TraceGenerator::new(&workload, config.seed, core);
                let limit = if core == 2 { short } else { full };
                Box::new(TakeStream::new(generator, limit)) as Box<dyn AccessStream>
            })
            .collect();
        let mut system = System::from_streams(config.clone(), streams);
        let metrics = system.run();
        assert!(
            system.records_consumed().eq([full, full, short, full]),
            "the short core stops at its trace end, the rest finish"
        );
        assert!(system.exhausted().eq([false, false, true, false]));
        assert!(metrics.elapsed_cycles > 0);
        assert!(metrics.total_instructions > 0);
        assert!(
            metrics.per_core_ipc.iter().all(|&ipc| ipc > 0.0),
            "every core, including the exhausted one, reports coherent stats"
        );
    }

    #[test]
    fn all_streams_empty_yields_an_empty_but_coherent_run() {
        use pv_workloads::{AccessStream, TakeStream};
        let config = tiny(PrefetcherKind::None);
        let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
            .map(|core| {
                let generator = TraceGenerator::new(&workloads::qry1(), config.seed, core);
                Box::new(TakeStream::new(generator, 0)) as Box<dyn AccessStream>
            })
            .collect();
        let mut system = System::from_streams(config, streams);
        let metrics = system.run();
        assert!(system.records_consumed().eq([0, 0, 0, 0]));
        assert!(system.exhausted().eq([true, true, true, true]));
        assert_eq!(metrics.total_instructions, 0);
        assert_eq!(metrics.elapsed_cycles, 0);
    }

    #[test]
    fn queued_contention_slows_runs_and_reports_delay() {
        use pv_mem::ContentionModel;
        let workload = workloads::qry1();
        let ideal = tiny(PrefetcherKind::sms_pv8());
        let mut queued = ideal.clone();
        queued.hierarchy = queued.hierarchy.with_contention(ContentionModel::Queued);
        let ideal_metrics = run_workload(&ideal, &workload);
        let queued_metrics = run_workload(&queued, &workload);
        assert_eq!(
            ideal_metrics.hierarchy.total_queue_delay().total_cycles(),
            0,
            "ideal runs must not observe queueing"
        );
        let delay = queued_metrics.hierarchy.total_queue_delay();
        assert!(
            delay.application_cycles() > 0,
            "queued runs must observe application queueing"
        );
        assert!(
            delay.predictor_cycles() > 0,
            "PV traffic must compete too, not ride for free"
        );
        assert!(
            queued_metrics.elapsed_cycles > ideal_metrics.elapsed_cycles,
            "contention must cost cycles ({} vs {})",
            queued_metrics.elapsed_cycles,
            ideal_metrics.elapsed_cycles
        );
        assert!(queued_metrics.hierarchy.dram_busy_cycles > 0);
    }
}
