//! PVProxy statistics.

/// Counters maintained by one PVProxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PvStats {
    /// Predictor lookups received from the optimization engine.
    pub lookups: u64,
    /// Lookups satisfied by the PVCache.
    pub pvcache_hits: u64,
    /// Lookups that missed in the PVCache and required a memory request.
    pub pvcache_misses: u64,
    /// Predictor stores received from the optimization engine.
    pub stores: u64,
    /// Stores whose PVTable set had to be fetched first.
    pub store_misses: u64,
    /// Memory requests issued to the L2 (fetches of PVTable sets).
    pub memory_requests: u64,
    /// Memory requests merged into an already-outstanding fetch (PVProxy
    /// MSHR hits).
    pub mshr_merges: u64,
    /// Dirty PVCache victims written back towards the L2.
    pub dirty_writebacks: u64,
    /// Predictions dropped because the pattern buffer was full.
    pub dropped_lookups: u64,
    /// PVCache hits on sets whose fill was still in flight (the lookup had
    /// to wait for the fill's completion time).
    pub pending_hits: u64,
    /// Lookups that targeted a set the current region plan does not back
    /// (also counted in `pvcache_misses`, so per-table hit rates reflect the
    /// table's allocated capacity). Always zero under a full-capacity plan.
    pub unbacked_lookups: u64,
    /// Stores dropped because the target set is not backed by the current
    /// region plan; the owning table skips its write-through update too.
    pub unbacked_stores: u64,
    /// Cycles this proxy's memory requests spent waiting for contended
    /// shared resources (L2 ports, MSHR slots, DRAM queues) beyond the
    /// unloaded latencies. Always zero under `ContentionModel::Ideal`; under
    /// `Queued` it shows how hard *this table's* traffic was squeezed — the
    /// per-table contention split the cohabitation experiments report.
    pub queue_delay_cycles: u64,
}

impl PvStats {
    /// Adds `other`'s counters into `self` (aggregation across cores).
    pub fn merge(&mut self, other: &PvStats) {
        let PvStats {
            lookups,
            pvcache_hits,
            pvcache_misses,
            stores,
            store_misses,
            memory_requests,
            mshr_merges,
            dirty_writebacks,
            dropped_lookups,
            pending_hits,
            unbacked_lookups,
            unbacked_stores,
            queue_delay_cycles,
        } = *other;
        self.lookups += lookups;
        self.pvcache_hits += pvcache_hits;
        self.pvcache_misses += pvcache_misses;
        self.stores += stores;
        self.store_misses += store_misses;
        self.memory_requests += memory_requests;
        self.mshr_merges += mshr_merges;
        self.dirty_writebacks += dirty_writebacks;
        self.dropped_lookups += dropped_lookups;
        self.pending_hits += pending_hits;
        self.unbacked_lookups += unbacked_lookups;
        self.unbacked_stores += unbacked_stores;
        self.queue_delay_cycles += queue_delay_cycles;
    }

    /// PVCache hit ratio over lookups in [0, 1].
    pub fn pvcache_hit_ratio(&self) -> f64 {
        let total = self.pvcache_hits + self.pvcache_misses;
        if total == 0 {
            0.0
        } else {
            self.pvcache_hits as f64 / total as f64
        }
    }

    /// Total operations (lookups + stores) observed.
    pub fn operations(&self) -> u64 {
        self.lookups + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero() {
        assert_eq!(PvStats::default().pvcache_hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_computes() {
        let stats = PvStats {
            pvcache_hits: 3,
            pvcache_misses: 1,
            lookups: 4,
            stores: 2,
            ..PvStats::default()
        };
        assert!((stats.pvcache_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(stats.operations(), 6);
    }
}
