//! Region planning for cohabiting predictors.
//!
//! The paper's economic argument is that virtualization lets *many*
//! predictors amortize one physical resource: spare memory capacity plus a
//! small on-chip PVCache. A [`PvRegionPlan`] realizes the memory half of
//! that claim: it carves each core's reserved PV region into one contiguous,
//! block-aligned sub-region per virtualized table, so several predictors
//! (SMS, Markov, any future [`crate::PvEntry`] backend) can live side by
//! side in a single region without their addresses aliasing — across tables
//! on one core or across cores.

use pv_mem::{Address, PvRegionConfig};

/// A carve-up of one [`PvRegionConfig`] into per-(core, table) sub-regions.
///
/// Table `t` of core `c` occupies `table_bytes[t]` bytes starting at
/// `core_base(c) + sum(table_bytes[..t])`. The plan validates that every
/// table fits inside the per-core reservation, so no sub-region can bleed
/// into a neighbouring core's region (which would create false sharing in
/// the L2 and misclassify traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvRegionPlan {
    region: PvRegionConfig,
    table_bytes: Vec<u64>,
    offsets: Vec<u64>,
}

impl PvRegionPlan {
    /// Plans `table_bytes.len()` tables of the given sizes (in bytes) inside
    /// each core's region.
    ///
    /// # Panics
    ///
    /// Panics if no tables are given, if any table is empty, or if the
    /// tables together exceed the region's `bytes_per_core` — an overflowing
    /// plan would alias the next core's tables, so it is rejected at
    /// construction instead of corrupting traffic accounting at runtime.
    pub fn new(region: PvRegionConfig, table_bytes: Vec<u64>) -> Self {
        assert!(
            !table_bytes.is_empty(),
            "a region plan needs at least one table"
        );
        let mut offsets = Vec::with_capacity(table_bytes.len());
        let mut used = 0u64;
        for (table, &bytes) in table_bytes.iter().enumerate() {
            assert!(bytes > 0, "table {table} must occupy at least one byte");
            offsets.push(used);
            used += bytes;
        }
        assert!(
            used <= region.bytes_per_core,
            "{} tables need {used} bytes per core but the PV region reserves only {} \
             (grow it with HierarchyConfig::with_pv_bytes_per_core)",
            table_bytes.len(),
            region.bytes_per_core
        );
        PvRegionPlan {
            region,
            table_bytes,
            offsets,
        }
    }

    /// Re-plans the same tables to new sizes inside the same region — the
    /// epoch-boundary move of the dynamic repartitioning loop. Validation is
    /// identical to construction (every table non-empty, total within
    /// `bytes_per_core`), plus the table count must not change: a replan
    /// moves boundaries, it never adds or removes tables.
    ///
    /// # Panics
    ///
    /// Panics if `table_bytes.len()` differs from the planned table count,
    /// if any table would be empty, or if the new sizes overflow the region
    /// (same message as [`Self::new`]).
    pub fn replan(&self, table_bytes: &[u64]) -> PvRegionPlan {
        assert_eq!(
            table_bytes.len(),
            self.table_bytes.len(),
            "a replan must keep the table count"
        );
        PvRegionPlan::new(self.region, table_bytes.to_vec())
    }

    /// The region this plan carves up.
    pub fn region(&self) -> PvRegionConfig {
        self.region
    }

    /// Number of tables per core.
    pub fn tables(&self) -> usize {
        self.table_bytes.len()
    }

    /// Bytes allocated to `table` on each core.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn table_bytes(&self, table: usize) -> u64 {
        self.table_bytes[table]
    }

    /// Bytes of each core's region the plan actually uses.
    pub fn bytes_used_per_core(&self) -> u64 {
        self.table_bytes.iter().sum()
    }

    /// Base physical address of `table`'s sub-region on `core` — the value
    /// loaded into that table's `PVStart` register.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `table` is out of range.
    pub fn base(&self, core: usize, table: usize) -> Address {
        assert!(
            table < self.table_bytes.len(),
            "table {table} out of range ({} tables)",
            self.table_bytes.len()
        );
        Address::new(self.region.core_base(core).raw() + self.offsets[table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_regions_are_contiguous_and_disjoint() {
        let region = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let plan = PvRegionPlan::new(region, vec![64 * 1024, 64 * 1024]);
        assert_eq!(plan.tables(), 2);
        assert_eq!(plan.bytes_used_per_core(), 128 * 1024);
        for core in 0..4 {
            let sms = plan.base(core, 0).raw();
            let markov = plan.base(core, 1).raw();
            assert_eq!(markov, sms + 64 * 1024, "table 1 starts where table 0 ends");
            if core > 0 {
                // The previous core's last table ends exactly at this core's
                // first table.
                assert_eq!(plan.base(core - 1, 1).raw() + 64 * 1024, sms);
            }
            // Every sub-region byte classifies as predictor data.
            assert!(region.contains(Address::new(sms)));
            assert!(region.contains(Address::new(markov + 64 * 1024 - 1)));
        }
    }

    #[test]
    fn single_table_plan_matches_the_legacy_core_base() {
        // One table per core on the paper-default region is exactly the
        // pre-cohabitation layout: base(core, 0) == core_base(core).
        let region = PvRegionConfig::paper_default(4);
        let plan = PvRegionPlan::new(region, vec![64 * 1024]);
        for core in 0..4 {
            assert_eq!(plan.base(core, 0), region.core_base(core));
        }
    }

    #[test]
    fn replan_moves_the_boundary_inside_the_same_region() {
        let region = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let plan = PvRegionPlan::new(region, vec![64 * 1024, 64 * 1024]);
        let moved = plan.replan(&[96 * 1024, 32 * 1024]);
        assert_eq!(moved.region(), region);
        assert_eq!(moved.table_bytes(0), 96 * 1024);
        assert_eq!(moved.table_bytes(1), 32 * 1024);
        // Table 0 keeps its base; table 1 starts where table 0 now ends.
        for core in 0..4 {
            assert_eq!(moved.base(core, 0), plan.base(core, 0));
            assert_eq!(
                moved.base(core, 1).raw(),
                moved.base(core, 0).raw() + 96 * 1024
            );
        }
    }

    #[test]
    #[should_panic(expected = "reserves only")]
    fn replan_rejects_overflow_like_construction() {
        let region = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let plan = PvRegionPlan::new(region, vec![64 * 1024, 64 * 1024]);
        let _ = plan.replan(&[128 * 1024, 64 * 1024]);
    }

    #[test]
    #[should_panic(expected = "keep the table count")]
    fn replan_rejects_table_count_changes() {
        let plan = PvRegionPlan::new(PvRegionConfig::paper_default(4), vec![32 * 1024]);
        let _ = plan.replan(&[16 * 1024, 16 * 1024]);
    }

    #[test]
    #[should_panic(expected = "reserves only")]
    fn overflowing_plans_are_rejected() {
        let region = PvRegionConfig::paper_default(4); // 64 KB per core
        PvRegionPlan::new(region, vec![64 * 1024, 64 * 1024]);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_plans_are_rejected() {
        PvRegionPlan::new(PvRegionConfig::paper_default(4), vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_table_panics() {
        let plan = PvRegionPlan::new(PvRegionConfig::paper_default(4), vec![1024]);
        plan.base(0, 1);
    }
}
