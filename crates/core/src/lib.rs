//! # pv-core — Predictor Virtualization
//!
//! This crate implements the paper's contribution: *Predictor
//! Virtualization* (PV), a technique that emulates large predictor tables by
//! storing them in the ordinary memory hierarchy instead of in dedicated
//! on-chip SRAM.
//!
//! The architecture follows Section 2 of the paper:
//!
//! * the [`PvTable`] is the full predictor table, laid out in a reserved
//!   region of physical memory whose base lives in the per-core
//!   [`PvStartRegister`]; one predictor set (11 entries of 43 bits) is packed
//!   into each 64-byte memory block ([`packing`], Figure 3a);
//! * the [`PvProxy`] is the small on-chip agent between the optimization
//!   engine and the PVTable: it holds a fully-associative [`PvCache`] of a
//!   handful of PVTable sets, an MSHR, an evict buffer and a pattern buffer;
//!   lookups that miss in the PVCache become ordinary memory requests
//!   injected at the L2 (Figure 3b shows the address computation);
//! * [`PvStorageBudget`] reproduces the Section 4.6 accounting of the
//!   on-chip storage the proxy needs (889 bytes for the paper's
//!   configuration, versus ~59 KB for the dedicated table it replaces).
//!
//! The proxy implements [`pv_sms::PatternStorage`], so the unmodified SMS
//! engine from `pv-sms` runs on top of it — exactly the property the paper
//! relies on ("the optimization engine remains unchanged").
//!
//! # Example
//!
//! ```
//! use pv_core::{PvConfig, PvProxy};
//! use pv_mem::{HierarchyConfig, MemoryHierarchy};
//! use pv_sms::{PatternStorage, SmsConfig, SmsPrefetcher};
//!
//! let hierarchy_config = HierarchyConfig::paper_baseline(4);
//! let mut hierarchy = MemoryHierarchy::new(hierarchy_config);
//!
//! // Build the virtualized PHT for core 0 and run SMS over it.
//! let proxy = PvProxy::new(0, PvConfig::pv8(), hierarchy_config.pv_regions.core_base(0));
//! let sms_config = SmsConfig::paper_1k_11a();
//! let mut sms = SmsPrefetcher::new(sms_config, Box::new(proxy));
//! let response = sms.on_data_access(0x400, 0x10_0000, &mut hierarchy, 0);
//! assert!(response.prefetches.is_empty()); // nothing learned yet
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffers;
pub mod config;
pub mod packing;
pub mod proxy;
pub mod pvcache;
pub mod register;
pub mod stats;
pub mod storage;
pub mod table;

pub use buffers::{EvictBuffer, PatternBuffer};
pub use config::PvConfig;
pub use packing::{decode_set, encode_set};
pub use proxy::PvProxy;
pub use pvcache::PvCache;
pub use register::PvStartRegister;
pub use stats::PvStats;
pub use storage::PvStorageBudget;
pub use table::{PvSet, PvTable};
