//! # pv-core — the Predictor Virtualization substrate
//!
//! This crate implements the paper's contribution: *Predictor
//! Virtualization* (PV), a technique that emulates large predictor tables by
//! storing them in the ordinary memory hierarchy instead of in dedicated
//! on-chip SRAM.
//!
//! The crate is a **predictor-agnostic substrate**: it has no knowledge of
//! any particular predictor. A predictor plugs in by implementing
//! [`PvEntry`] for its table-entry type (tag/payload bit-widths plus a
//! packed encoding); everything else — the in-memory [`PvTable`], the
//! bit-level [`packing`] codec, the on-chip [`PvProxy`] with its
//! [`PvCache`], and the Section 4.6 [`PvStorageBudget`] — is generic over
//! that entry type, with the per-block associativity and storage figures
//! *derived* from the entry's widths ([`PvLayout`]). The SMS prefetcher of
//! the paper's case study lives in `pv-sms` and depends on this crate, not
//! the other way around; a second backend (a PC-indexed next-address
//! prefetcher) lives in `pv-markov`.
//!
//! The architecture follows Section 2 of the paper:
//!
//! * the [`PvTable`] is the full predictor table, laid out in a reserved
//!   region of physical memory whose base lives in the per-core
//!   [`PvStartRegister`]; one predictor set is packed into each memory block
//!   ([`packing`], Figure 3a) — eleven 43-bit entries per 64-byte block for
//!   the paper's SMS instance;
//! * the [`PvProxy`] is the small on-chip agent between the optimization
//!   engine and the PVTable: it holds a fully-associative [`PvCache`] of a
//!   handful of PVTable sets, an MSHR, an evict buffer and a pattern buffer;
//!   lookups that miss in the PVCache become ordinary memory requests
//!   injected at the L2 (Figure 3b shows the address computation);
//! * [`PvStorageBudget`] reproduces the Section 4.6 accounting of the
//!   on-chip storage the proxy needs (889 bytes for the paper's SMS
//!   configuration, versus ~59 KB for the dedicated table it replaces).
//!
//! Engines talk to the proxy through the [`VirtualizedBackend`] trait — the
//! same retrieve/store interface a dedicated table offers, which is why "the
//! optimization engine remains unchanged" when its table is virtualized.
//!
//! Several predictors can also *cohabit* one physical resource, which is the
//! paper's economic argument for virtualization: a [`PvRegionPlan`] carves a
//! core's reserved PV region into one sub-region per table, and a
//! [`SharedPvProxy`] with a table-tagged [`SharedPvCache`] arbitrates all of
//! a core's virtualized tables through a single PVCache and a single
//! memory-request stream (see the [`shared`] module docs).
//!
//! # Example
//!
//! A minimal predictor entry (a 12-bit tag with a 20-bit confidence-weighted
//! target) virtualized through the proxy:
//!
//! ```
//! use pv_core::{PvConfig, PvEntry, PvProxy, VirtualizedBackend};
//! use pv_mem::{HierarchyConfig, MemoryHierarchy};
//!
//! #[derive(Debug, Clone, Copy, PartialEq, Eq)]
//! struct TargetEntry { tag: u16, target: u32 }
//!
//! impl PvEntry for TargetEntry {
//!     const TAG_BITS: u32 = 12;
//!     const PAYLOAD_BITS: u32 = 20;
//!     fn tag(&self) -> u64 { u64::from(self.tag) }
//!     // Bias by one so a valid payload is never the all-zero marker.
//!     fn payload(&self) -> u64 { u64::from(self.target) + 1 }
//!     fn from_parts(tag: u64, payload: u64) -> Option<Self> {
//!         (payload != 0).then(|| TargetEntry { tag: tag as u16, target: (payload - 1) as u32 })
//!     }
//! }
//!
//! let hierarchy_config = HierarchyConfig::paper_baseline(4);
//! let mut hierarchy = MemoryHierarchy::new(hierarchy_config);
//! let mut proxy: PvProxy<TargetEntry> =
//!     PvProxy::new(0, PvConfig::pv8(), hierarchy_config.pv_regions.core_base(0));
//!
//! // 32-bit entries pack 16 to a 64-byte block — derived, not hard-coded.
//! assert_eq!(proxy.layout().entries_per_block(), 16);
//!
//! let index = 0x2A7;
//! let entry = TargetEntry { tag: proxy.tag_of(index) as u16, target: 0xBEEF };
//! proxy.store(index, entry, &mut hierarchy, 0);
//! let lookup = proxy.lookup(index, &mut hierarchy, 100);
//! assert_eq!(lookup.entry, Some(entry));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod buffers;
pub mod config;
pub mod entry;
pub mod packing;
pub mod plan;
pub mod proxy;
pub mod pvcache;
pub mod register;
pub mod shared;
pub mod stats;
pub mod storage;
pub mod table;

pub use backend::{PvLookup, VirtualizedBackend};
pub use buffers::{EvictBuffer, PatternBuffer};
pub use config::PvConfig;
pub use entry::{PvEntry, PvLayout, RawEntry};
pub use packing::{decode_set, encode_set};
pub use plan::PvRegionPlan;
pub use proxy::PvProxy;
pub use pvcache::{PvCache, PvCacheEntry, PvCacheEviction};
pub use register::PvStartRegister;
pub use shared::{
    ReplanOutcome, SharedPvCache, SharedPvCacheEntry, SharedPvProxy, SharedSetAccess,
    SharedStoreOutcome,
};
pub use stats::PvStats;
pub use storage::PvStorageBudget;
pub use table::{PvSet, PvTable};
