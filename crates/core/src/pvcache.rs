//! The PVCache: the small, fully-associative cache of PVTable sets inside
//! the PVProxy.

use crate::table::PvSet;

/// A PVTable set resident in the PVCache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvCacheEntry {
    /// Which PVTable set this entry caches.
    pub set_index: usize,
    /// The cached contents.
    pub contents: PvSet,
    /// Whether the contents were modified since they were fetched.
    pub dirty: bool,
}

/// An entry evicted from the PVCache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvCacheEviction {
    /// Which PVTable set was evicted.
    pub set_index: usize,
    /// Its contents at eviction time.
    pub contents: PvSet,
    /// Whether it must be written back (dirty).
    pub dirty: bool,
}

/// The fully-associative PVCache with LRU replacement.
///
/// The paper's final design uses eight entries; each entry caches one whole
/// PVTable set (one 64-byte block worth of predictor entries), with a dirty
/// bit per entry.
#[derive(Debug, Clone, Default)]
pub struct PvCache {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<PvCacheEntry>,
}

impl PvCache {
    /// Creates a PVCache with room for `capacity` PVTable sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the PVCache needs at least one entry");
        PvCache {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Configured capacity in PVTable sets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of sets currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of dirty entries.
    pub fn dirty_count(&self) -> usize {
        self.entries.iter().filter(|e| e.dirty).count()
    }

    /// Whether `set_index` is cached (no recency update).
    pub fn contains(&self, set_index: usize) -> bool {
        self.entries.iter().any(|e| e.set_index == set_index)
    }

    /// Looks up `set_index`, promoting it to most-recently-used and returning
    /// a mutable reference to the entry.
    pub fn lookup(&mut self, set_index: usize) -> Option<&mut PvCacheEntry> {
        let pos = self.entries.iter().position(|e| e.set_index == set_index)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&mut self.entries[0])
    }

    /// Installs `set_index` with `contents`, evicting the LRU entry when the
    /// cache is full. If the set is already present its contents are
    /// replaced (and the dirty flag ORed).
    pub fn insert(&mut self, set_index: usize, contents: PvSet, dirty: bool) -> Option<PvCacheEviction> {
        if let Some(entry) = self.lookup(set_index) {
            entry.contents = contents;
            entry.dirty |= dirty;
            return None;
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.entries.pop().map(|e| PvCacheEviction {
                set_index: e.set_index,
                contents: e.contents,
                dirty: e.dirty,
            })
        } else {
            None
        };
        self.entries.insert(
            0,
            PvCacheEntry {
                set_index,
                contents,
                dirty,
            },
        );
        evicted
    }

    /// Removes every entry, returning the dirty ones (used when draining the
    /// proxy at the end of a run).
    pub fn drain_dirty(&mut self) -> Vec<PvCacheEviction> {
        let drained: Vec<PvCacheEviction> = self
            .entries
            .drain(..)
            .filter(|e| e.dirty)
            .map(|e| PvCacheEviction {
                set_index: e.set_index,
                contents: e.contents,
                dirty: true,
            })
            .collect();
        drained
    }

    /// Total number of predictor entries cached across all resident sets.
    pub fn resident_patterns(&self) -> usize {
        self.entries.iter().map(|e| e.contents.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_sms::SpatialPattern;

    fn set_with(tag: u16) -> PvSet {
        let mut set = PvSet::new(11);
        set.insert(tag, SpatialPattern::single(1));
        set
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut cache = PvCache::new(8);
        assert!(cache.insert(5, set_with(1), false).is_none());
        assert!(cache.contains(5));
        let entry = cache.lookup(5).expect("set 5 was just inserted");
        assert_eq!(entry.set_index, 5);
        assert!(!entry.dirty);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_picks_least_recently_used() {
        let mut cache = PvCache::new(2);
        cache.insert(1, set_with(1), false);
        cache.insert(2, set_with(2), true);
        cache.lookup(1);
        let evicted = cache.insert(3, set_with(3), false).expect("cache was full");
        assert_eq!(evicted.set_index, 2);
        assert!(evicted.dirty);
        assert!(cache.contains(1));
        assert!(cache.contains(3));
    }

    #[test]
    fn reinsert_merges_dirty_flag() {
        let mut cache = PvCache::new(4);
        cache.insert(9, set_with(1), false);
        cache.insert(9, set_with(2), true);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(9).unwrap().dirty);
        // Re-inserting clean must not clear the dirty bit.
        cache.insert(9, set_with(3), false);
        assert!(cache.lookup(9).unwrap().dirty);
    }

    #[test]
    fn drain_dirty_returns_only_dirty_entries() {
        let mut cache = PvCache::new(4);
        cache.insert(1, set_with(1), false);
        cache.insert(2, set_with(2), true);
        cache.insert(3, set_with(3), true);
        let drained = cache.drain_dirty();
        assert_eq!(drained.len(), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn dirty_count_and_resident_patterns() {
        let mut cache = PvCache::new(4);
        cache.insert(1, set_with(1), true);
        let mut multi = PvSet::new(11);
        multi.insert(1, SpatialPattern::single(1));
        multi.insert(2, SpatialPattern::single(2));
        cache.insert(2, multi, false);
        assert_eq!(cache.dirty_count(), 1);
        assert_eq!(cache.resident_patterns(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        PvCache::new(0);
    }
}
