//! The PVCache: the small, fully-associative cache of PVTable sets inside
//! the PVProxy.

use crate::entry::PvEntry;
use crate::table::PvSet;

/// A PVTable set resident in the PVCache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvCacheEntry<E> {
    /// Which PVTable set this entry caches.
    pub set_index: usize,
    /// The cached contents.
    pub contents: PvSet<E>,
    /// Whether the contents were modified since they were fetched.
    pub dirty: bool,
    /// Cycle at which the fill that installed this entry completes. The
    /// entry is installed at request time (so later requests merge instead
    /// of duplicating memory traffic), but its data is not usable before
    /// `ready_at` — lookups hitting earlier must report this time, not their
    /// own cycle.
    pub ready_at: u64,
}

/// An entry evicted from the PVCache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvCacheEviction<E> {
    /// Which PVTable set was evicted.
    pub set_index: usize,
    /// Its contents at eviction time.
    pub contents: PvSet<E>,
    /// Whether it must be written back (dirty).
    pub dirty: bool,
}

/// The fully-associative PVCache with LRU replacement.
///
/// The paper's final design uses eight entries; each entry caches one whole
/// PVTable set (one memory block worth of predictor entries), with a dirty
/// bit per entry.
#[derive(Debug, Clone)]
pub struct PvCache<E> {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<PvCacheEntry<E>>,
}

impl<E: PvEntry> PvCache<E> {
    /// Creates a PVCache with room for `capacity` PVTable sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the PVCache needs at least one entry");
        PvCache {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Configured capacity in PVTable sets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of sets currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of dirty entries.
    pub fn dirty_count(&self) -> usize {
        self.entries.iter().filter(|e| e.dirty).count()
    }

    /// Whether `set_index` is cached (no recency update).
    pub fn contains(&self, set_index: usize) -> bool {
        self.entries.iter().any(|e| e.set_index == set_index)
    }

    /// Looks up `set_index`, promoting it to most-recently-used and returning
    /// a mutable reference to the entry.
    pub fn lookup(&mut self, set_index: usize) -> Option<&mut PvCacheEntry<E>> {
        let pos = self.entries.iter().position(|e| e.set_index == set_index)?;
        self.entries[..=pos].rotate_right(1);
        Some(&mut self.entries[0])
    }

    /// Installs `set_index` with `contents` and a fill completing at
    /// `ready_at`, evicting the LRU entry when the cache is full. If the set
    /// is already present its contents are replaced (the dirty flag is ORed
    /// and the earlier of the two ready times kept).
    pub fn insert(
        &mut self,
        set_index: usize,
        contents: PvSet<E>,
        dirty: bool,
        ready_at: u64,
    ) -> Option<PvCacheEviction<E>> {
        if let Some(entry) = self.lookup(set_index) {
            entry.contents = contents;
            entry.dirty |= dirty;
            entry.ready_at = entry.ready_at.min(ready_at);
            return None;
        }
        let fresh = PvCacheEntry {
            set_index,
            contents,
            dirty,
            ready_at,
        };
        if self.entries.len() >= self.capacity {
            self.entries.rotate_right(1);
            let lru = std::mem::replace(&mut self.entries[0], fresh);
            return Some(PvCacheEviction {
                set_index: lru.set_index,
                contents: lru.contents,
                dirty: lru.dirty,
            });
        }
        self.entries.push(fresh);
        self.entries.rotate_right(1);
        None
    }

    /// Removes every entry, returning the dirty ones (used when draining the
    /// proxy at the end of a run).
    pub fn drain_dirty(&mut self) -> Vec<PvCacheEviction<E>> {
        let drained: Vec<PvCacheEviction<E>> = self
            .entries
            .drain(..)
            .filter(|e| e.dirty)
            .map(|e| PvCacheEviction {
                set_index: e.set_index,
                contents: e.contents,
                dirty: true,
            })
            .collect();
        drained
    }

    /// Total number of predictor entries cached across all resident sets.
    pub fn resident_entries(&self) -> usize {
        self.entries.iter().map(|e| e.contents.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RawEntry;

    fn set_with(tag: u64) -> PvSet<RawEntry> {
        let mut set = PvSet::new(11);
        set.insert(RawEntry::new(tag, 1));
        set
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut cache = PvCache::new(8);
        assert!(cache.insert(5, set_with(1), false, 0).is_none());
        assert!(cache.contains(5));
        let entry = cache.lookup(5).expect("set 5 was just inserted");
        assert_eq!(entry.set_index, 5);
        assert!(!entry.dirty);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_picks_least_recently_used() {
        let mut cache = PvCache::new(2);
        cache.insert(1, set_with(1), false, 0);
        cache.insert(2, set_with(2), true, 0);
        cache.lookup(1);
        let evicted = cache.insert(3, set_with(3), false, 0).expect("cache was full");
        assert_eq!(evicted.set_index, 2);
        assert!(evicted.dirty);
        assert!(cache.contains(1));
        assert!(cache.contains(3));
    }

    #[test]
    fn reinsert_merges_dirty_flag() {
        let mut cache = PvCache::new(4);
        cache.insert(9, set_with(1), false, 0);
        cache.insert(9, set_with(2), true, 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(9).unwrap().dirty);
        // Re-inserting clean must not clear the dirty bit.
        cache.insert(9, set_with(3), false, 0);
        assert!(cache.lookup(9).unwrap().dirty);
    }

    #[test]
    fn reinsert_keeps_earliest_ready_time() {
        let mut cache = PvCache::new(4);
        cache.insert(9, set_with(1), false, 400);
        // A merged re-install must not push the ready time later.
        cache.insert(9, set_with(1), false, 900);
        assert_eq!(cache.lookup(9).unwrap().ready_at, 400);
    }

    #[test]
    fn drain_dirty_returns_only_dirty_entries() {
        let mut cache = PvCache::new(4);
        cache.insert(1, set_with(1), false, 0);
        cache.insert(2, set_with(2), true, 0);
        cache.insert(3, set_with(3), true, 0);
        let drained = cache.drain_dirty();
        assert_eq!(drained.len(), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn dirty_count_and_resident_entries() {
        let mut cache = PvCache::new(4);
        cache.insert(1, set_with(1), true, 0);
        let mut multi = PvSet::new(11);
        multi.insert(RawEntry::new(1, 1));
        multi.insert(RawEntry::new(2, 2));
        cache.insert(2, multi, false, 0);
        assert_eq!(cache.dirty_count(), 1);
        assert_eq!(cache.resident_entries(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        PvCache::<RawEntry>::new(0);
    }
}
