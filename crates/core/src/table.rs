//! The PVTable: the virtualized predictor table living in main memory.
//!
//! The simulator tracks the table's *contents* functionally (the actual
//! pattern values) while the *movement* of those contents through the memory
//! hierarchy is modelled by issuing real block requests for the table's
//! addresses. This mirrors how an RTL implementation would behave: the
//! values live in DRAM/caches, and what the architecture controls is which
//! blocks move when.

use crate::config::PvConfig;
use crate::register::PvStartRegister;
use pv_mem::Address;
use pv_sms::SpatialPattern;
use serde::{Deserialize, Serialize};

/// One entry of a PVTable set: the tag that disambiguates indices mapping to
/// the same set, and the stored spatial pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PvEntry {
    /// Tag bits of the PHT index (11 bits for a 1K-set table).
    pub tag: u16,
    /// The stored spatial pattern.
    pub pattern: SpatialPattern,
}

/// One set of the PVTable: up to `ways` entries, kept in recency order
/// (most recently used first) so that within-set replacement is LRU.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PvSet {
    entries: Vec<PvEntry>,
    ways: usize,
}

impl PvSet {
    /// Creates an empty set with the given associativity.
    pub fn new(ways: usize) -> Self {
        PvSet {
            entries: Vec::new(),
            ways,
        }
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Associativity of the set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Looks up `tag`, promoting it to most-recently-used on a hit.
    pub fn lookup(&mut self, tag: u16) -> Option<SpatialPattern> {
        let pos = self.entries.iter().position(|e| e.tag == tag)?;
        let entry = self.entries.remove(pos);
        let pattern = entry.pattern;
        self.entries.insert(0, entry);
        Some(pattern)
    }

    /// Looks up `tag` without modifying recency.
    pub fn peek(&self, tag: u16) -> Option<SpatialPattern> {
        self.entries.iter().find(|e| e.tag == tag).map(|e| e.pattern)
    }

    /// Inserts or updates `tag`, evicting the least-recently-used entry when
    /// the set is full. Returns the evicted entry if one was pushed out.
    pub fn insert(&mut self, tag: u16, pattern: SpatialPattern) -> Option<PvEntry> {
        if let Some(pos) = self.entries.iter().position(|e| e.tag == tag) {
            self.entries.remove(pos);
            self.entries.insert(0, PvEntry { tag, pattern });
            return None;
        }
        let evicted = if self.entries.len() >= self.ways {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, PvEntry { tag, pattern });
        evicted
    }

    /// Iterates over the entries, most recently used first.
    pub fn iter(&self) -> impl Iterator<Item = &PvEntry> {
        self.entries.iter()
    }
}

/// The in-memory predictor table of one core.
#[derive(Debug, Clone)]
pub struct PvTable {
    start: PvStartRegister,
    block_bytes: u64,
    sets: Vec<PvSet>,
}

impl PvTable {
    /// Creates an empty PVTable for the layout in `config`, based at
    /// `start`.
    pub fn new(config: &PvConfig, start: PvStartRegister) -> Self {
        config.assert_valid();
        PvTable {
            start,
            block_bytes: config.block_bytes,
            sets: (0..config.table_sets).map(|_| PvSet::new(config.ways)).collect(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// The `PVStart` register value this table is based at.
    pub fn start(&self) -> PvStartRegister {
        self.start
    }

    /// Main-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.sets.len() as u64 * self.block_bytes
    }

    /// The physical address of set `set_index` (Figure 3b).
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn set_address(&self, set_index: usize) -> Address {
        assert!(set_index < self.sets.len(), "set index {set_index} out of range");
        self.start.set_address(set_index, self.block_bytes)
    }

    /// Reads the contents of set `set_index`.
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn read_set(&self, set_index: usize) -> &PvSet {
        &self.sets[set_index]
    }

    /// Overwrites set `set_index` (a dirty PVCache victim being written
    /// back).
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn write_set(&mut self, set_index: usize, contents: PvSet) {
        self.sets[set_index] = contents;
    }

    /// Total number of patterns stored across all sets.
    pub fn resident_patterns(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::Address;

    fn table() -> PvTable {
        PvTable::new(&PvConfig::pv8(), PvStartRegister::new(Address::new(0x10_0000)))
    }

    #[test]
    fn set_addresses_are_block_strided() {
        let table = table();
        assert_eq!(table.set_address(0), Address::new(0x10_0000));
        assert_eq!(table.set_address(2), Address::new(0x10_0080));
        assert_eq!(table.footprint_bytes(), 64 * 1024);
        assert_eq!(table.sets(), 1024);
    }

    #[test]
    fn pv_set_lru_eviction() {
        let mut set = PvSet::new(2);
        assert!(set.insert(1, SpatialPattern::single(1)).is_none());
        assert!(set.insert(2, SpatialPattern::single(2)).is_none());
        // Touch tag 1; tag 2 becomes LRU.
        assert!(set.lookup(1).is_some());
        let evicted = set.insert(3, SpatialPattern::single(3)).expect("full set must evict");
        assert_eq!(evicted.tag, 2);
        assert_eq!(set.len(), 2);
        assert!(set.peek(1).is_some());
        assert!(set.peek(3).is_some());
    }

    #[test]
    fn pv_set_update_replaces_in_place() {
        let mut set = PvSet::new(4);
        set.insert(7, SpatialPattern::single(1));
        set.insert(7, SpatialPattern::single(2));
        assert_eq!(set.len(), 1);
        assert_eq!(set.peek(7), Some(SpatialPattern::single(2)));
    }

    #[test]
    fn write_and_read_set_round_trip() {
        let mut table = table();
        let mut contents = PvSet::new(11);
        contents.insert(5, SpatialPattern::from_offsets([1, 2, 3]));
        table.write_set(100, contents.clone());
        assert_eq!(table.read_set(100), &contents);
        assert_eq!(table.resident_patterns(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        table().set_address(5000);
    }
}
