//! The PVTable: the virtualized predictor table living in main memory.
//!
//! The simulator tracks the table's *contents* functionally (the actual
//! entry values) while the *movement* of those contents through the memory
//! hierarchy is modelled by issuing real block requests for the table's
//! addresses. This mirrors how an RTL implementation would behave: the
//! values live in DRAM/caches, and what the architecture controls is which
//! blocks move when.
//!
//! The table is generic over the predictor's [`PvEntry`] type: its
//! associativity is however many packed entries fit in one memory block
//! under the entry's [`PvLayout`].

use crate::config::PvConfig;
use crate::entry::{PvEntry, PvLayout};
use crate::register::PvStartRegister;
use pv_mem::Address;

/// One set of the PVTable: up to `ways` entries, kept in recency order
/// (most recently used first) so that within-set replacement is LRU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvSet<E> {
    entries: Vec<E>,
    ways: usize,
}

impl<E: PvEntry> PvSet<E> {
    /// Creates an empty set with the given associativity. Storage for all
    /// `ways` entries is reserved up front so inserts never reallocate.
    pub fn new(ways: usize) -> Self {
        PvSet {
            entries: Vec::with_capacity(ways),
            ways,
        }
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Associativity of the set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Looks up the entry tagged `tag`, promoting it to most-recently-used
    /// on a hit.
    pub fn lookup(&mut self, tag: u64) -> Option<&E> {
        let pos = self.entries.iter().position(|e| e.tag() == tag)?;
        self.entries[..=pos].rotate_right(1);
        Some(&self.entries[0])
    }

    /// Looks up `tag` without modifying recency.
    pub fn peek(&self, tag: u64) -> Option<&E> {
        self.entries.iter().find(|e| e.tag() == tag)
    }

    /// Inserts or updates `entry` (keyed by its tag), evicting the
    /// least-recently-used entry when the set is full. Returns the evicted
    /// entry if one was pushed out.
    pub fn insert(&mut self, entry: E) -> Option<E> {
        if let Some(pos) = self.entries.iter().position(|e| e.tag() == entry.tag()) {
            self.entries[pos] = entry;
            self.entries[..=pos].rotate_right(1);
            return None;
        }
        if self.entries.len() >= self.ways {
            self.entries.rotate_right(1);
            return Some(std::mem::replace(&mut self.entries[0], entry));
        }
        self.entries.push(entry);
        self.entries.rotate_right(1);
        None
    }

    /// Iterates over the entries, most recently used first.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.entries.iter()
    }

    /// Appends `entry` at the least-recently-used position if its tag is not
    /// already present, returning whether it was appended. Used by the
    /// packing codec to rebuild a set in recency order without the
    /// promote-on-insert shuffling (and without temporary buffers).
    ///
    /// # Panics
    ///
    /// Panics if the set is already full.
    pub(crate) fn push_lru(&mut self, entry: E) -> bool {
        if self.entries.iter().any(|e| e.tag() == entry.tag()) {
            return false;
        }
        assert!(self.entries.len() < self.ways, "set is full");
        self.entries.push(entry);
        true
    }
}

/// The in-memory predictor table of one core.
#[derive(Debug, Clone)]
pub struct PvTable<E> {
    start: PvStartRegister,
    layout: PvLayout,
    sets: Vec<PvSet<E>>,
}

impl<E: PvEntry> PvTable<E> {
    /// Creates an empty PVTable for the geometry in `config`, packed per
    /// `E`'s layout, based at `start`.
    pub fn new(config: &PvConfig, start: PvStartRegister) -> Self {
        config.assert_valid();
        let layout = PvLayout::of::<E>(config.block_bytes);
        PvTable {
            start,
            layout,
            sets: (0..config.table_sets).map(|_| PvSet::new(layout.entries_per_block())).collect(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// The packed layout of this table's entries.
    pub fn layout(&self) -> &PvLayout {
        &self.layout
    }

    /// The `PVStart` register value this table is based at.
    pub fn start(&self) -> PvStartRegister {
        self.start
    }

    /// Main-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.sets.len() as u64 * self.layout.block_bytes
    }

    /// The physical address of set `set_index` (Figure 3b).
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn set_address(&self, set_index: usize) -> Address {
        assert!(
            set_index < self.sets.len(),
            "set index {set_index} out of range"
        );
        self.start.set_address(set_index, self.layout.block_bytes)
    }

    /// Reads the contents of set `set_index`.
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn read_set(&self, set_index: usize) -> &PvSet<E> {
        &self.sets[set_index]
    }

    /// Mutable access to set `set_index` — used by the write-through
    /// cohabitation adapters, which keep the authoritative contents in the
    /// table and leave only residency metadata to the shared PVCache.
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn set_mut(&mut self, set_index: usize) -> &mut PvSet<E> {
        &mut self.sets[set_index]
    }

    /// Overwrites set `set_index` (a dirty PVCache victim being written
    /// back).
    ///
    /// # Panics
    ///
    /// Panics if `set_index` is out of range.
    pub fn write_set(&mut self, set_index: usize, contents: PvSet<E>) {
        self.sets[set_index] = contents;
    }

    /// Total number of entries stored across all sets.
    pub fn resident_entries(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RawEntry;
    use pv_mem::Address;

    /// An SMS-shaped test entry: 11-bit tag, 32-bit payload.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct NarrowEntry {
        tag: u16,
        payload: u32,
    }

    impl PvEntry for NarrowEntry {
        const TAG_BITS: u32 = 11;
        const PAYLOAD_BITS: u32 = 32;

        fn tag(&self) -> u64 {
            u64::from(self.tag)
        }

        fn payload(&self) -> u64 {
            u64::from(self.payload)
        }

        fn from_parts(tag: u64, payload: u64) -> Option<Self> {
            (payload != 0).then_some(NarrowEntry {
                tag: tag as u16,
                payload: payload as u32,
            })
        }
    }

    fn table() -> PvTable<NarrowEntry> {
        PvTable::new(
            &PvConfig::pv8(),
            PvStartRegister::new(Address::new(0x10_0000)),
        )
    }

    #[test]
    fn set_addresses_are_block_strided() {
        let table = table();
        assert_eq!(table.set_address(0), Address::new(0x10_0000));
        assert_eq!(table.set_address(2), Address::new(0x10_0080));
        assert_eq!(table.footprint_bytes(), 64 * 1024);
        assert_eq!(table.sets(), 1024);
        assert_eq!(table.layout().entries_per_block(), 11);
    }

    #[test]
    fn associativity_derives_from_entry_widths() {
        // RawEntry is 128 bits wide, so only 4 fit in a 64-byte block.
        let table: PvTable<RawEntry> =
            PvTable::new(&PvConfig::pv8(), PvStartRegister::new(Address::new(0)));
        assert_eq!(table.layout().entries_per_block(), 4);
        assert_eq!(table.read_set(0).ways(), 4);
    }

    #[test]
    fn pv_set_lru_eviction() {
        let mut set: PvSet<NarrowEntry> = PvSet::new(2);
        assert!(set.insert(NarrowEntry { tag: 1, payload: 1 }).is_none());
        assert!(set.insert(NarrowEntry { tag: 2, payload: 2 }).is_none());
        // Touch tag 1; tag 2 becomes LRU.
        assert!(set.lookup(1).is_some());
        let evicted = set.insert(NarrowEntry { tag: 3, payload: 3 }).expect("full set must evict");
        assert_eq!(evicted.tag, 2);
        assert_eq!(set.len(), 2);
        assert!(set.peek(1).is_some());
        assert!(set.peek(3).is_some());
    }

    #[test]
    fn pv_set_update_replaces_in_place() {
        let mut set: PvSet<NarrowEntry> = PvSet::new(4);
        set.insert(NarrowEntry { tag: 7, payload: 1 });
        set.insert(NarrowEntry { tag: 7, payload: 2 });
        assert_eq!(set.len(), 1);
        assert_eq!(set.peek(7).map(|e| e.payload), Some(2));
    }

    #[test]
    fn write_and_read_set_round_trip() {
        let mut table = table();
        let mut contents = PvSet::new(11);
        contents.insert(NarrowEntry {
            tag: 5,
            payload: 0xE,
        });
        table.write_set(100, contents.clone());
        assert_eq!(table.read_set(100), &contents);
        assert_eq!(table.resident_entries(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        table().set_address(5000);
    }
}
