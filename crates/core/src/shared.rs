//! Predictor cohabitation: one PVProxy and one PVCache shared by several
//! virtualized tables on the same core.
//!
//! The per-predictor [`crate::PvProxy`] dedicates a full PVCache to a single
//! table. The paper's economics point the other way: *many* predictors
//! should amortize one physical resource. This module provides that sharing:
//!
//! * a [`SharedPvCache`] whose entries are tagged with a **table id** in
//!   addition to the set index, so sets from different predictors (SMS,
//!   Markov, any future [`crate::PvEntry`] backend) arbitrate for the same
//!   cache lines under one LRU order;
//! * a [`SharedPvProxy`] that owns the shared cache plus one MSHR, pattern
//!   buffer and evict buffer, and funnels *all* cohabiting tables' fills and
//!   write-backs through a single `Requester::pv_proxy(core)` stream — so
//!   the tables also compete for the same L2 ports, MSHR slots and DRAM
//!   bandwidth, with per-table statistics kept separately.
//!
//! # Contents are write-through
//!
//! The shared cache tracks *residency and timing only* (which (table, set)
//! is cached, dirty bit, fill completion time). The authoritative entry
//! values live in each predictor's own [`crate::PvTable`], which the typed
//! adapters (in `pv-sms` / `pv-markov`) update write-through. Because each
//! table has exactly one owner, this is observationally equivalent to the
//! per-predictor proxy's copy-on-fetch scheme — with one deliberate
//! exception: in-set recency promotions made by lookups survive a *clean*
//! eviction (the dedicated proxy discards the cached copy, promotions
//! included). Keeping the table current makes the cache metadata-only, which
//! is what lets two entry types share one cache without type erasure.

//! # Partial backing and re-planning
//!
//! Under a scarce [`crate::PvRegionPlan`] (sub-regions smaller than the full
//! table), a table binding backs only the first `backed_blocks` *backing
//! blocks* of its sub-region. Sets map to backing blocks bit-reversed
//! ([`SharedPvProxy::bind_plan`]), so workloads whose hot sets cluster in a
//! narrow index range still spread across the backed/unbacked split.
//! Lookups to unbacked sets miss without traffic; stores to unbacked sets
//! are dropped and the owner must skip its write-through update
//! ([`SharedStoreOutcome`]). [`SharedPvProxy::apply_plan`] moves the
//! boundaries at an epoch edge: because contents are write-through, the
//! move only invalidates cache entries whose backing block address changed
//! (writing dirty ones back at their *old* address) — data is never copied.

use crate::buffers::{EvictBuffer, PatternBuffer};
use crate::config::PvConfig;
use crate::plan::PvRegionPlan;
use crate::stats::PvStats;
use pv_mem::{AccessKind, Address, DataClass, MemoryHierarchy, MshrFile, Requester};

/// A PVTable set resident in the shared PVCache: residency metadata only
/// (see the module docs — contents are write-through in the owning table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedPvCacheEntry {
    /// Which cohabiting table the set belongs to.
    pub table: usize,
    /// Which PVTable set of that table this entry caches.
    pub set_index: usize,
    /// Whether the set was modified since it was fetched.
    pub dirty: bool,
    /// Cycle at which the fill that installed this entry completes; lookups
    /// hitting earlier must report this time, not their own cycle.
    pub ready_at: u64,
}

/// The fully-associative, LRU, *table-tagged* PVCache shared by every
/// cohabiting predictor on one core. Identical replacement behaviour to
/// [`crate::PvCache`], with the key widened from `set_index` to
/// `(table, set_index)`.
#[derive(Debug, Clone)]
pub struct SharedPvCache {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<SharedPvCacheEntry>,
}

impl SharedPvCache {
    /// Creates a shared PVCache with room for `capacity` PVTable sets
    /// (across all tables).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the PVCache needs at least one entry");
        SharedPvCache {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Configured capacity in PVTable sets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of sets currently cached, all tables together.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of resident sets belonging to `table`.
    pub fn occupancy_of(&self, table: usize) -> usize {
        self.entries.iter().filter(|e| e.table == table).count()
    }

    /// Whether `(table, set_index)` is cached (no recency update).
    pub fn contains(&self, table: usize, set_index: usize) -> bool {
        self.entries.iter().any(|e| e.table == table && e.set_index == set_index)
    }

    /// Looks up `(table, set_index)`, promoting it to most-recently-used.
    pub fn lookup(&mut self, table: usize, set_index: usize) -> Option<&mut SharedPvCacheEntry> {
        let pos = self.entries.iter().position(|e| e.table == table && e.set_index == set_index)?;
        self.entries[..=pos].rotate_right(1);
        Some(&mut self.entries[0])
    }

    /// Installs `(table, set_index)` with a fill completing at `ready_at`,
    /// evicting the LRU entry — *of whichever table holds it* — when the
    /// cache is full. Re-inserting a resident set ORs the dirty flag and
    /// keeps the earlier ready time, as in [`crate::PvCache::insert`].
    pub fn insert(
        &mut self,
        table: usize,
        set_index: usize,
        dirty: bool,
        ready_at: u64,
    ) -> Option<SharedPvCacheEntry> {
        if let Some(entry) = self.lookup(table, set_index) {
            entry.dirty |= dirty;
            entry.ready_at = entry.ready_at.min(ready_at);
            return None;
        }
        let fresh = SharedPvCacheEntry {
            table,
            set_index,
            dirty,
            ready_at,
        };
        if self.entries.len() >= self.capacity {
            self.entries.rotate_right(1);
            return Some(std::mem::replace(&mut self.entries[0], fresh));
        }
        self.entries.push(fresh);
        self.entries.rotate_right(1);
        None
    }

    /// Removes every entry, returning the dirty ones (end-of-run drain).
    pub fn drain_dirty(&mut self) -> Vec<SharedPvCacheEntry> {
        self.entries.drain(..).filter(|e| e.dirty).collect()
    }
}

/// One table bound to a [`SharedPvProxy`]: where its sub-region lives and
/// how big it is.
#[derive(Debug, Clone)]
struct TableBinding {
    /// The table's `PVStart`: base address of its sub-region.
    base: Address,
    /// Number of PVTable sets.
    table_sets: usize,
    /// Backing blocks the sub-region provides (≤ `table_sets`); sets whose
    /// backing block falls past this bound are unbacked. Equal to
    /// `table_sets` unless a scarce plan is bound.
    backed_blocks: usize,
    /// Block size each set packs into.
    block_bytes: u64,
    /// Report label (e.g. `"SMS"`, `"Markov"`).
    label: String,
}

/// Outcome of one shared-proxy store.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedStoreOutcome {
    /// The store was applied; the caller updates its own table
    /// write-through.
    Accepted,
    /// The target set is not backed by the current plan: the store was
    /// dropped, and the caller must *not* update its table — an entry that
    /// survived in the owner's table without backing capacity would resurface
    /// for free once the set becomes backed again.
    Unbacked,
}

/// What applying a new region plan did to the shared cache
/// ([`SharedPvProxy::apply_plan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplanOutcome {
    /// Cache entries removed because their backing block migrated (address
    /// changed) or lost its backing.
    pub invalidated: u64,
    /// Invalidated dirty entries written back at their old address.
    pub writebacks: u64,
}

/// Timing outcome of one shared-cache set access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSetAccess {
    /// Whether the set is (or will be) resident. `false` when the lookup
    /// was dropped because the pattern buffer was full, or when the set is
    /// not backed by the current region plan — the caller must then report
    /// a predictor miss without touching its table.
    pub resident: bool,
    /// Cycle at which the set's data is available.
    pub ready_at: u64,
}

/// The shared PVProxy: one per core, arbitrating every cohabiting
/// virtualized table through one PVCache and one memory-request stream.
///
/// Typed adapters register their tables with [`Self::add_table`] and then
/// drive [`Self::lookup_set`] / [`Self::store_set`]; the proxy handles
/// residency, replacement across tables, fill merging, dirty write-backs
/// and per-table statistics. It is deliberately untyped: because contents
/// are write-through in the owners' tables (module docs), the proxy only
/// ever needs a set's *address*, which it computes from the binding's base.
#[derive(Debug)]
pub struct SharedPvProxy {
    core: usize,
    config: PvConfig,
    cache: SharedPvCache,
    mshr: MshrFile,
    pattern_buffer: PatternBuffer,
    evict_buffer: EvictBuffer,
    tables: Vec<TableBinding>,
    stats: Vec<PvStats>,
    /// Whether sets map to backing blocks bit-reversed (scarce-plan mode,
    /// set by [`Self::bind_plan`]); the identity mapping otherwise.
    interleaved: bool,
}

impl SharedPvProxy {
    /// Creates the shared proxy for `core`. `config.pvcache_sets` is the
    /// *total* shared capacity; `table_sets`/`block_bytes` of `config` apply
    /// to tables added without an explicit geometry.
    pub fn new(core: usize, config: PvConfig) -> Self {
        config.assert_valid();
        SharedPvProxy {
            core,
            cache: SharedPvCache::new(config.pvcache_sets),
            mshr: MshrFile::new(config.mshr_entries),
            pattern_buffer: PatternBuffer::new(config.pattern_buffer_entries),
            evict_buffer: EvictBuffer::new(config.evict_buffer_entries),
            tables: Vec::new(),
            stats: Vec::new(),
            interleaved: false,
            config,
        }
    }

    /// Registers a cohabiting table based at `base` with `table_sets` sets
    /// of one `block_bytes` block each, returning its table id.
    pub fn add_table(
        &mut self,
        base: Address,
        table_sets: usize,
        block_bytes: u64,
        label: &str,
    ) -> usize {
        assert!(
            table_sets > 0 && table_sets.is_power_of_two(),
            "table_sets must be a power of two"
        );
        self.tables.push(TableBinding {
            base,
            table_sets,
            backed_blocks: table_sets,
            block_bytes,
            label: label.to_owned(),
        });
        self.stats.push(PvStats::default());
        self.tables.len() - 1
    }

    /// The proxy's configuration.
    pub fn config(&self) -> &PvConfig {
        &self.config
    }

    /// Which core this proxy serves.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Number of registered tables.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Report label of `table`.
    pub fn table_label(&self, table: usize) -> &str {
        &self.tables[table].label
    }

    /// The shared table-tagged PVCache.
    pub fn cache(&self) -> &SharedPvCache {
        &self.cache
    }

    /// Statistics of one table.
    pub fn table_stats(&self, table: usize) -> &PvStats {
        &self.stats[table]
    }

    /// Statistics summed over every table.
    pub fn stats_merged(&self) -> PvStats {
        let mut total = PvStats::default();
        for stats in &self.stats {
            total.merge(stats);
        }
        total
    }

    /// Resets every table's statistics (residency state is preserved).
    pub fn reset_stats(&mut self) {
        for stats in &mut self.stats {
            *stats = PvStats::default();
        }
    }

    /// The backing-block index of `(table, set_index)`: the identity map by
    /// default, or the set index bit-reversed (within the table's index
    /// width) once a scarce plan is bound. Bit reversal makes "the first
    /// `backed_blocks` blocks" an even sampling of the set space, so
    /// workloads whose hot sets cluster in a narrow range (e.g. low Markov
    /// set indices under few contexts) still feel capacity proportionally.
    fn block_of(&self, table: usize, set_index: usize) -> usize {
        let binding = &self.tables[table];
        assert!(
            set_index < binding.table_sets,
            "set index {set_index} out of range for table {table} ({} sets)",
            binding.table_sets
        );
        if !self.interleaved || binding.table_sets <= 1 {
            set_index
        } else {
            let bits = binding.table_sets.trailing_zeros();
            set_index.reverse_bits() >> (usize::BITS - bits)
        }
    }

    /// Whether the current plan backs `(table, set_index)` with memory.
    pub fn set_backed(&self, table: usize, set_index: usize) -> bool {
        self.block_of(table, set_index) < self.tables[table].backed_blocks
    }

    /// Backing blocks the current plan gives `table` (equals the table's
    /// set count unless a scarce plan is bound).
    pub fn backed_blocks(&self, table: usize) -> usize {
        self.tables[table].backed_blocks
    }

    /// Total sets of `table` (the registration-time geometry).
    pub fn table_sets(&self, table: usize) -> usize {
        self.tables[table].table_sets
    }

    /// The memory address of `(table, set_index)`'s backing block — the
    /// shared-proxy analogue of Figure 3b's `PVStart + set * block`
    /// computation (identical to it under the identity mapping).
    ///
    /// # Panics
    ///
    /// Panics if `table` or `set_index` is out of range, or if the set is
    /// not backed by the current plan (unbacked sets have no address).
    pub fn set_address(&self, table: usize, set_index: usize) -> Address {
        let block = self.block_of(table, set_index);
        let binding = &self.tables[table];
        assert!(
            block < binding.backed_blocks,
            "set {set_index} of table {table} is not backed by the current plan \
             ({} of {} blocks backed)",
            binding.backed_blocks,
            binding.table_sets
        );
        Address::new(binding.base.raw() + block as u64 * binding.block_bytes)
    }

    /// Validates `plan` against this proxy's bindings and returns the
    /// per-table `(base, backed_blocks)` geometry it implies.
    fn plan_geometry(&self, plan: &PvRegionPlan) -> Vec<(Address, usize)> {
        assert_eq!(
            plan.tables(),
            self.tables.len(),
            "the plan must cover exactly the registered tables"
        );
        self.tables
            .iter()
            .enumerate()
            .map(|(table, binding)| {
                let bytes = plan.table_bytes(table);
                assert_eq!(
                    bytes % binding.block_bytes,
                    0,
                    "table {table}'s sub-region must be block-aligned"
                );
                let backed = (bytes / binding.block_bytes) as usize;
                assert!(
                    backed <= binding.table_sets,
                    "table {table} cannot back more blocks than it has sets"
                );
                (plan.base(self.core, table), backed)
            })
            .collect()
    }

    /// Binds a (possibly scarce) region plan to the registered tables and
    /// switches set→block mapping to bit-reversed interleaving. Must be
    /// called before any traffic; re-planning a live proxy goes through
    /// [`Self::apply_plan`] instead.
    ///
    /// # Panics
    ///
    /// Panics if traffic already ran, if the plan's table count differs
    /// from the registered tables, or if any sub-region is misaligned or
    /// larger than its table.
    pub fn bind_plan(&mut self, plan: &PvRegionPlan) {
        assert!(
            self.cache.is_empty(),
            "bind_plan must run before any traffic reaches the proxy"
        );
        let geometry = self.plan_geometry(plan);
        self.interleaved = true;
        for (binding, (base, backed)) in self.tables.iter_mut().zip(geometry) {
            binding.base = base;
            binding.backed_blocks = backed;
        }
    }

    /// Applies a new region plan to a live proxy: the epoch-boundary move
    /// of dynamic repartitioning. Contents are write-through in the owning
    /// tables, so no data moves — the only work is invalidating cache
    /// entries whose backing block migrated (its address changed, or it
    /// lost backing entirely). Migrated dirty entries are written back at
    /// their *old* address first, as predictor-class traffic.
    ///
    /// # Panics
    ///
    /// Same validation as [`Self::bind_plan`] (minus the no-traffic
    /// requirement).
    pub fn apply_plan(
        &mut self,
        plan: &PvRegionPlan,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) -> ReplanOutcome {
        let geometry = self.plan_geometry(plan);
        let mut outcome = ReplanOutcome::default();
        let entries = std::mem::take(&mut self.cache.entries);
        let mut kept = Vec::with_capacity(entries.len());
        for entry in entries {
            let block = self.block_of(entry.table, entry.set_index);
            let binding = &self.tables[entry.table];
            let old_address = binding.base.raw() + block as u64 * binding.block_bytes;
            let block_bytes = binding.block_bytes;
            let (new_base, new_backed) = geometry[entry.table];
            let survives =
                block < new_backed && new_base.raw() + block as u64 * block_bytes == old_address;
            if survives {
                kept.push(entry);
                continue;
            }
            outcome.invalidated += 1;
            if entry.dirty {
                outcome.writebacks += 1;
                self.stats[entry.table].dirty_writebacks += 1;
                self.evict_buffer.push(entry.set_index, now, now + mem.config().l2.data_latency);
                mem.writeback(Requester::pv_proxy(self.core), old_address, now);
            }
        }
        self.cache.entries = kept;
        for (binding, (base, backed)) in self.tables.iter_mut().zip(geometry) {
            binding.base = base;
            binding.backed_blocks = backed;
        }
        outcome
    }

    /// Fetches `(table, set_index)` through the memory hierarchy and installs
    /// it in the shared cache, evicting (and writing back if dirty) whatever
    /// set — of any table — is LRU. Mirrors `PvProxy::fetch_set`: the entry
    /// is installed at request time so later requests merge, and it
    /// remembers the fill's completion time for early hits.
    fn fetch_set(
        &mut self,
        table: usize,
        set_index: usize,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) -> u64 {
        let address = self.set_address(table, set_index);
        self.mshr.retire(now);
        let ready_at = if let Some(entry) = self.mshr.lookup(address.block()) {
            self.stats[table].mshr_merges += 1;
            let ready = entry.ready_at;
            let _ = self.mshr.register(address.block(), now, ready);
            ready
        } else {
            self.stats[table].memory_requests += 1;
            let response = mem.access(
                Requester::pv_proxy(self.core),
                address.raw(),
                AccessKind::Read,
                DataClass::Predictor,
                now,
            );
            self.stats[table].queue_delay_cycles += response.queue_delay;
            let ready = now + response.latency;
            let _ = self.mshr.register(address.block(), now, ready);
            ready
        };
        if let Some(evicted) = self.cache.insert(table, set_index, false, ready_at) {
            self.handle_eviction(evicted, mem, now);
        }
        ready_at
    }

    fn handle_eviction(
        &mut self,
        evicted: SharedPvCacheEntry,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) {
        if !evicted.dirty {
            // Non-modified entries are discarded (paper Section 2.2); the
            // owning table already holds the authoritative contents.
            return;
        }
        self.stats[evicted.table].dirty_writebacks += 1;
        let address = self.set_address(evicted.table, evicted.set_index);
        self.evict_buffer
            .push(evicted.set_index, now, now + mem.config().l2.data_latency);
        mem.writeback(Requester::pv_proxy(self.core), address.raw(), now);
    }

    /// A predictor lookup touching `(table, set_index)` (raw predictor index
    /// `index`, used to key the pattern buffer). On a shared-cache hit the
    /// data is available after the PVCache latency (or the in-flight fill);
    /// on a miss the set is fetched — unless the pattern buffer is full, in
    /// which case the lookup is dropped (`resident == false`).
    pub fn lookup_set(
        &mut self,
        table: usize,
        set_index: usize,
        index: u64,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) -> SharedSetAccess {
        self.stats[table].lookups += 1;
        if !self.set_backed(table, set_index) {
            // No backing capacity: the set behaves like a permanent miss
            // (counted as one, so hit rates reflect allocation) with no
            // memory traffic.
            self.stats[table].pvcache_misses += 1;
            self.stats[table].unbacked_lookups += 1;
            return SharedSetAccess {
                resident: false,
                ready_at: now,
            };
        }
        let pvcache_latency = self.config.pvcache_latency;
        if let Some(entry) = self.cache.lookup(table, set_index) {
            let ready_at = (now + pvcache_latency).max(entry.ready_at);
            let pending = entry.ready_at > now;
            self.stats[table].pvcache_hits += 1;
            if pending {
                self.stats[table].pending_hits += 1;
            }
            return SharedSetAccess {
                resident: true,
                ready_at,
            };
        }
        self.stats[table].pvcache_misses += 1;
        // The pattern buffer is a shared structural resource too: a full
        // buffer drops the prediction regardless of which table wanted it.
        // Keys are disambiguated per table so two tables' indices never
        // merge into one slot.
        let provisional_done = now + mem.config().l2.tag_latency + mem.config().l2.data_latency;
        let key = ((table as u64) << 48) | index;
        if !self.pattern_buffer.try_reserve(key, now, provisional_done) {
            self.stats[table].dropped_lookups += 1;
            return SharedSetAccess {
                resident: false,
                ready_at: now,
            };
        }
        let ready_at = self.fetch_set(table, set_index, mem, now);
        SharedSetAccess {
            resident: true,
            ready_at,
        }
    }

    /// A predictor store touching `(table, set_index)`: write-allocate (the
    /// set is fetched on a miss, so its other entries are preserved) and
    /// mark the resident set dirty. On [`SharedStoreOutcome::Accepted`] the
    /// caller updates its own table write-through *after* this returns; on
    /// [`SharedStoreOutcome::Unbacked`] it must skip that update.
    pub fn store_set(
        &mut self,
        table: usize,
        set_index: usize,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) -> SharedStoreOutcome {
        self.stats[table].stores += 1;
        if !self.set_backed(table, set_index) {
            self.stats[table].unbacked_stores += 1;
            return SharedStoreOutcome::Unbacked;
        }
        if !self.cache.contains(table, set_index) {
            self.stats[table].store_misses += 1;
            let _ = self.fetch_set(table, set_index, mem, now);
        }
        let cached = self
            .cache
            .lookup(table, set_index)
            .expect("the set was just installed in the shared PVCache");
        cached.dirty = true;
        SharedStoreOutcome::Accepted
    }

    /// Writes every dirty resident set back to the memory hierarchy (used at
    /// the end of a simulation window so no learned state is stranded).
    pub fn drain(&mut self, mem: &mut MemoryHierarchy, now: u64) {
        for evicted in self.cache.drain_dirty() {
            self.handle_eviction(evicted, mem, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::{HierarchyConfig, MemoryHierarchy, PvRegionConfig};

    fn setup() -> (MemoryHierarchy, SharedPvProxy) {
        let mut config = HierarchyConfig::paper_baseline(4);
        config.pv_regions = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let mem = MemoryHierarchy::new(config);
        let mut proxy = SharedPvProxy::new(0, PvConfig::pv8());
        let base = config.pv_regions.core_base(0);
        let a = proxy.add_table(base, 1024, 64, "A");
        let b = proxy.add_table(Address::new(base.raw() + 64 * 1024), 1024, 64, "B");
        assert_eq!((a, b), (0, 1));
        (mem, proxy)
    }

    #[test]
    fn tables_have_disjoint_addresses_inside_one_region() {
        let (mem, proxy) = setup();
        let last_a = proxy.set_address(0, 1023).raw() + 63;
        let first_b = proxy.set_address(1, 0).raw();
        assert!(last_a < first_b);
        // Both tables classify as predictor data.
        assert!(mem.dram().is_predictor_address(proxy.set_address(0, 0)));
        assert!(mem.dram().is_predictor_address(proxy.set_address(1, 1023)));
    }

    #[test]
    fn cold_lookup_fetches_and_later_hits_are_fast() {
        let (mut mem, mut proxy) = setup();
        let cold = proxy.lookup_set(0, 3, 0x803, &mut mem, 0);
        assert!(cold.resident);
        assert!(cold.ready_at >= 400, "cold set must come from DRAM");
        assert_eq!(proxy.table_stats(0).memory_requests, 1);
        let warm = proxy.lookup_set(0, 3, 0x803, &mut mem, cold.ready_at + 10);
        assert_eq!(
            warm.ready_at,
            cold.ready_at + 10 + proxy.config().pvcache_latency
        );
        assert_eq!(proxy.table_stats(0).pvcache_hits, 1);
    }

    #[test]
    fn early_rereference_merges_and_waits_for_the_fill() {
        let (mut mem, mut proxy) = setup();
        let first = proxy.lookup_set(0, 3, 0x803, &mut mem, 0);
        let second = proxy.lookup_set(0, 3, 0x803, &mut mem, 1);
        assert_eq!(proxy.table_stats(0).memory_requests, 1);
        assert_eq!(second.ready_at, first.ready_at);
        assert_eq!(proxy.table_stats(0).pending_hits, 1);
    }

    #[test]
    fn both_tables_share_the_capacity_and_evict_each_other() {
        let (mut mem, mut proxy) = setup();
        let capacity = proxy.cache().capacity();
        // Fill the whole cache with table 0's sets...
        for set in 0..capacity {
            proxy.lookup_set(0, set, set as u64, &mut mem, (set as u64) * 1_000);
        }
        assert_eq!(proxy.cache().occupancy_of(0), capacity);
        // ...then stream table 1 through: its fills must displace table 0.
        for set in 0..capacity / 2 {
            proxy.lookup_set(
                1,
                set,
                set as u64,
                &mut mem,
                1_000_000 + (set as u64) * 1_000,
            );
        }
        assert_eq!(proxy.cache().occupancy_of(1), capacity / 2);
        assert_eq!(proxy.cache().occupancy_of(0), capacity - capacity / 2);
        assert_eq!(proxy.cache().len(), capacity);
    }

    #[test]
    fn dirty_cross_table_eviction_writes_back_to_the_owners_address() {
        let (mut mem, mut proxy) = setup();
        // Dirty one set of table 1, then flood with table 0 until it is
        // evicted: the write-back must be attributed to table 1.
        assert_eq!(
            proxy.store_set(1, 7, &mut mem, 0),
            SharedStoreOutcome::Accepted
        );
        let capacity = proxy.cache().capacity();
        for set in 0..capacity {
            proxy.lookup_set(0, set, set as u64, &mut mem, 1_000 + (set as u64) * 1_000);
        }
        assert_eq!(proxy.table_stats(1).dirty_writebacks, 1);
        assert_eq!(proxy.table_stats(0).dirty_writebacks, 0);
        // The written-back block is table 1's address, resident in the L2.
        assert!(mem.l2_contains(proxy.set_address(1, 7).block()));
    }

    #[test]
    fn full_pattern_buffer_drops_lookups_per_proxy_not_per_table() {
        let (mut mem, mut proxy) = setup();
        let slots = proxy.config().pattern_buffer_entries;
        // Reserve every slot with distinct sets of table 0 at cycle 0 (all
        // fills still in flight)...
        for set in 0..slots {
            let access = proxy.lookup_set(0, set, set as u64, &mut mem, 0);
            assert!(access.resident);
        }
        // ...now table 1 misses too: the shared buffer is exhausted.
        let dropped = proxy.lookup_set(1, 0, 0, &mut mem, 0);
        assert!(!dropped.resident);
        assert_eq!(proxy.table_stats(1).dropped_lookups, 1);
    }

    #[test]
    fn drain_writes_back_only_dirty_sets() {
        let (mut mem, mut proxy) = setup();
        proxy.lookup_set(0, 1, 1, &mut mem, 0);
        let _ = proxy.store_set(1, 2, &mut mem, 10);
        let writes_before = mem.stats().l2_requests.predictor;
        proxy.drain(&mut mem, 1_000);
        assert_eq!(proxy.table_stats(1).dirty_writebacks, 1);
        assert_eq!(proxy.table_stats(0).dirty_writebacks, 0);
        assert!(mem.stats().l2_requests.predictor > writes_before);
        assert!(proxy.cache().is_empty());
    }

    #[test]
    fn merged_stats_sum_over_tables() {
        let (mut mem, mut proxy) = setup();
        proxy.lookup_set(0, 1, 1, &mut mem, 0);
        proxy.lookup_set(1, 2, 2, &mut mem, 0);
        let merged = proxy.stats_merged();
        assert_eq!(merged.lookups, 2);
        assert_eq!(merged.memory_requests, 2);
        proxy.reset_stats();
        assert_eq!(proxy.stats_merged().lookups, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let (_, proxy) = setup();
        proxy.set_address(0, 4096);
    }

    /// Two 1024-set tables bound to a scarce half-capacity plan (512 backing
    /// blocks each) inside the paper-default 64 KB region.
    fn scarce_setup() -> (MemoryHierarchy, SharedPvProxy, PvRegionPlan) {
        let config = HierarchyConfig::paper_baseline(4);
        let mem = MemoryHierarchy::new(config);
        let mut proxy = SharedPvProxy::new(0, PvConfig::pv8());
        let plan = PvRegionPlan::new(config.pv_regions, vec![512 * 64, 512 * 64]);
        let a = proxy.add_table(plan.base(0, 0), 1024, 64, "A");
        let b = proxy.add_table(plan.base(0, 1), 1024, 64, "B");
        assert_eq!((a, b), (0, 1));
        proxy.bind_plan(&plan);
        (mem, proxy, plan)
    }

    #[test]
    fn scarce_plans_back_an_even_sample_of_the_set_space() {
        let (_, proxy, _) = scarce_setup();
        assert_eq!(proxy.backed_blocks(0), 512);
        assert_eq!(proxy.table_sets(0), 1024);
        // Bit-reversed mapping: half capacity backs every *other* set, so a
        // workload clustered in a narrow index range (like Markov sets under
        // few contexts) still sees exactly its proportional share.
        let backed_in_cluster = (0..400).filter(|&s| proxy.set_backed(0, s)).count();
        assert_eq!(backed_in_cluster, 200);
        // Backed sets of both tables stay inside their own sub-regions.
        let boundary = proxy.set_address(1, 0).raw();
        for set in (0..1024).filter(|&s| proxy.set_backed(0, s)) {
            assert!(proxy.set_address(0, set).raw() < boundary);
        }
    }

    #[test]
    fn unbacked_accesses_miss_without_memory_traffic() {
        let (mut mem, mut proxy, _) = scarce_setup();
        // With 512 of 1024 blocks backed, odd sets are unbacked
        // (rev10(odd) >= 512).
        assert!(!proxy.set_backed(0, 1));
        let access = proxy.lookup_set(0, 1, 1, &mut mem, 0);
        assert!(!access.resident);
        assert_eq!(
            proxy.store_set(0, 1, &mut mem, 0),
            SharedStoreOutcome::Unbacked
        );
        let stats = proxy.table_stats(0);
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.pvcache_misses, 1, "unbacked lookups count as misses");
        assert_eq!(stats.unbacked_lookups, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.unbacked_stores, 1);
        assert_eq!(stats.store_misses, 0);
        assert_eq!(stats.memory_requests, 0, "no traffic for unbacked sets");
    }

    #[test]
    fn apply_plan_invalidates_only_migrated_blocks() {
        let (mut mem, mut proxy, plan) = scarce_setup();
        // Table 0: sets 0, 2, 4 map to blocks 0, 256, 128. Table 1: set 0
        // maps to block 0 and is dirtied.
        for set in [0, 2, 4] {
            assert!(proxy.lookup_set(0, set, set as u64, &mut mem, 0).resident);
        }
        assert_eq!(
            proxy.store_set(1, 0, &mut mem, 0),
            SharedStoreOutcome::Accepted
        );
        let old_table1_addr = proxy.set_address(1, 0);
        // Shrink table 0 to 256 blocks, grow table 1 to 768.
        let moved = plan.replan(&[256 * 64, 768 * 64]);
        let outcome = proxy.apply_plan(&moved, &mut mem, 1_000);
        // Table 0 keeps its base: blocks 0 and 128 survive, block 256 lost
        // its backing. Table 1's base moved: its entry migrates (dirty, so
        // it is written back at the old address first).
        assert_eq!(outcome.invalidated, 2);
        assert_eq!(outcome.writebacks, 1);
        assert!(proxy.cache().contains(0, 0));
        assert!(proxy.cache().contains(0, 4));
        assert!(!proxy.cache().contains(0, 2), "no stale entry survives");
        assert!(!proxy.cache().contains(1, 0));
        assert!(mem.l2_contains(old_table1_addr.block()));
        assert_eq!(proxy.table_stats(1).dirty_writebacks, 1);
        // The new geometry is live: table 0 halved, table 1 re-based.
        assert_eq!(proxy.backed_blocks(0), 256);
        assert!(!proxy.set_backed(0, 2));
        assert_eq!(proxy.backed_blocks(1), 768);
        assert!(proxy.set_address(1, 0).raw() < old_table1_addr.raw());
    }

    #[test]
    fn apply_plan_keeps_every_entry_of_a_table_whose_blocks_did_not_move() {
        let (mut mem, mut proxy, plan) = scarce_setup();
        for set in [0, 4, 8, 12] {
            assert!(proxy.lookup_set(0, set, set as u64, &mut mem, 0).resident);
        }
        // Growing table 0 keeps its base and every backed block address.
        let moved = plan.replan(&[768 * 64, 256 * 64]);
        let outcome = proxy.apply_plan(&moved, &mut mem, 1_000);
        assert_eq!(outcome.invalidated, 0);
        assert_eq!(outcome.writebacks, 0);
        for set in [0, 4, 8, 12] {
            assert!(proxy.cache().contains(0, set));
        }
    }

    #[test]
    #[should_panic(expected = "is not backed")]
    fn unbacked_sets_have_no_address() {
        let (_, proxy, _) = scarce_setup();
        proxy.set_address(0, 1);
    }

    #[test]
    #[should_panic(expected = "before any traffic")]
    fn bind_plan_rejects_a_live_proxy() {
        let (mut mem, mut proxy, plan) = scarce_setup();
        proxy.lookup_set(0, 0, 0, &mut mem, 0);
        proxy.bind_plan(&plan);
    }
}
