//! The predictor-facing entry abstraction: what `pv-core` virtualizes.
//!
//! Predictor Virtualization is a *substrate*: any predictor whose metadata
//! lives in an indexed table can have that table emulated in the memory
//! hierarchy (paper Sections 2 and 3). The substrate does not know what a
//! "spatial pattern" or a "next address" is — it only needs each table entry
//! to expose a tag and a payload of fixed bit-widths so sets of entries can
//! be packed into memory blocks (the Figure 3a layout, generalised).
//!
//! A predictor plugs in by implementing [`PvEntry`] for its entry type; the
//! packed layout ([`PvLayout`]) — bits per entry, entries per block, unused
//! trailer — is then *derived* from the entry's widths instead of being
//! hard-coded to the paper's 11 × 43-bit SMS instance.

/// One entry of a virtualized predictor table.
///
/// The tag disambiguates table indices that map to the same set; the payload
/// is the predictor's actual metadata (a spatial pattern, a target address,
/// a confidence counter, ...). Both are exposed as raw bit-fields so the
/// packing codec can lay entries out back to back in a memory block.
///
/// # Encoding contract
///
/// * `tag()` must fit in [`PvEntry::TAG_BITS`] bits and `payload()` in
///   [`PvEntry::PAYLOAD_BITS`] bits.
/// * The all-zero payload is reserved as the *invalid marker* for empty
///   packed slots: `from_parts(tag, 0)` must return `None`, and a valid
///   entry must never encode to payload `0` (bias the encoding if the
///   natural payload can be zero).
/// * `from_parts(entry.tag(), entry.payload())` must reconstruct `entry`.
pub trait PvEntry: Clone + PartialEq + Eq + std::fmt::Debug {
    /// Number of tag bits stored per packed entry.
    const TAG_BITS: u32;
    /// Number of payload bits stored per packed entry.
    const PAYLOAD_BITS: u32;

    /// The tag bits of this entry.
    fn tag(&self) -> u64;

    /// The payload bits of this entry (never zero for a valid entry).
    fn payload(&self) -> u64;

    /// Reconstructs an entry from its packed fields; `None` when `payload`
    /// is the invalid marker.
    fn from_parts(tag: u64, payload: u64) -> Option<Self>;

    /// Total bits per packed entry.
    fn entry_bits() -> u32 {
        Self::TAG_BITS + Self::PAYLOAD_BITS
    }
}

/// The derived bit-level layout of one virtualized table: how entries of
/// given widths pack into memory blocks.
///
/// For the paper's SMS instance (11-bit tags, 32-bit patterns, 64-byte
/// blocks) this reproduces Figure 3a: eleven 43-bit entries per block with a
/// 39-bit unused trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvLayout {
    /// Tag bits per packed entry.
    pub tag_bits: u32,
    /// Payload bits per packed entry.
    pub payload_bits: u32,
    /// Size of the memory block one table set packs into.
    pub block_bytes: u64,
}

impl PvLayout {
    /// Builds a layout from explicit widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero or exceeds 64 bits, or if a single
    /// entry does not fit in one block.
    pub fn new(tag_bits: u32, payload_bits: u32, block_bytes: u64) -> Self {
        assert!(
            tag_bits > 0 && tag_bits <= 64,
            "tag width must be in 1..=64 bits, got {tag_bits}"
        );
        assert!(
            payload_bits > 0 && payload_bits <= 64,
            "payload width must be in 1..=64 bits, got {payload_bits}"
        );
        assert!(block_bytes > 0, "block size must be positive");
        let layout = PvLayout {
            tag_bits,
            payload_bits,
            block_bytes,
        };
        assert!(
            layout.entries_per_block() >= 1,
            "a {}-bit entry does not fit in a {}-byte block",
            layout.entry_bits(),
            block_bytes
        );
        layout
    }

    /// The layout of entry type `E` packed into `block_bytes`-byte blocks.
    pub fn of<E: PvEntry>(block_bytes: u64) -> Self {
        Self::new(E::TAG_BITS, E::PAYLOAD_BITS, block_bytes)
    }

    /// Bits per packed entry.
    pub fn entry_bits(&self) -> u32 {
        self.tag_bits + self.payload_bits
    }

    /// How many entries pack into one block — the associativity of the
    /// virtualized table (11 for the paper's 43-bit SMS entries in 64-byte
    /// blocks).
    pub fn entries_per_block(&self) -> usize {
        (self.block_bytes * 8 / u64::from(self.entry_bits())) as usize
    }

    /// Unused bits at the end of each packed block (Figure 3a's trailer; 39
    /// for the SMS instance).
    pub fn unused_trailing_bits(&self) -> u64 {
        self.block_bytes * 8 - self.entries_per_block() as u64 * u64::from(self.entry_bits())
    }

    /// The largest value `tag()` may return under this layout.
    pub fn max_tag(&self) -> u64 {
        ones(self.tag_bits)
    }

    /// The largest value `payload()` may return under this layout.
    pub fn max_payload(&self) -> u64 {
        ones(self.payload_bits)
    }
}

/// A bit-mask of `bits` ones (handles `bits == 64`).
pub(crate) fn ones(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A width-agnostic raw entry for tests, tools and layout experiments: the
/// tag and payload are stored as full words and interpreted at whatever
/// widths the [`PvLayout`] in use prescribes.
///
/// Payload `0` is the invalid marker, per the [`PvEntry`] contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEntry {
    /// Tag bits.
    pub tag: u64,
    /// Payload bits (non-zero for a valid entry).
    pub payload: u64,
}

impl RawEntry {
    /// Creates a raw entry.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is zero (the invalid marker).
    pub fn new(tag: u64, payload: u64) -> Self {
        assert!(payload != 0, "payload 0 is reserved as the invalid marker");
        RawEntry { tag, payload }
    }
}

impl PvEntry for RawEntry {
    const TAG_BITS: u32 = 64;
    const PAYLOAD_BITS: u32 = 64;

    fn tag(&self) -> u64 {
        self.tag
    }

    fn payload(&self) -> u64 {
        self.payload
    }

    fn from_parts(tag: u64, payload: u64) -> Option<Self> {
        (payload != 0).then_some(RawEntry { tag, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_instance_layout_matches_figure_3a() {
        let layout = PvLayout::new(11, 32, 64);
        assert_eq!(layout.entry_bits(), 43);
        assert_eq!(layout.entries_per_block(), 11);
        assert_eq!(layout.unused_trailing_bits(), 39);
        assert_eq!(layout.max_tag(), 0x7FF);
        assert_eq!(layout.max_payload(), u64::from(u32::MAX));
    }

    #[test]
    fn different_widths_give_different_associativity() {
        // A 40-bit entry (12-bit tag + 28-bit payload) packs 12 per block.
        let layout = PvLayout::new(12, 28, 64);
        assert_eq!(layout.entries_per_block(), 12);
        assert_eq!(layout.unused_trailing_bits(), 32);
        // Wide entries pack fewer.
        assert_eq!(PvLayout::new(16, 48, 64).entries_per_block(), 8);
    }

    #[test]
    fn raw_entry_round_trips_through_parts() {
        let entry = RawEntry::new(0x2A, 0xDEAD_BEEF);
        assert_eq!(
            RawEntry::from_parts(entry.tag(), entry.payload()),
            Some(entry)
        );
        assert_eq!(RawEntry::from_parts(7, 0), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_entries_panic() {
        PvLayout::new(64, 64, 8);
    }

    #[test]
    #[should_panic(expected = "invalid marker")]
    fn zero_payload_raw_entry_panics() {
        RawEntry::new(1, 0);
    }
}
