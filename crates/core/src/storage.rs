//! On-chip storage accounting for the PVProxy (paper Section 4.6).
//!
//! The paper breaks the proxy's dedicated storage down — for the SMS
//! instance — as: PVCache data (473 bytes), PVCache tags (11 bytes), dirty
//! bits (1 byte), MSHRs (84 bytes), a 4-entry evict buffer (256 bytes) and a
//! 16-entry pattern buffer (64 bytes), for a total of 889 bytes per core —
//! a 68× reduction over the 59.125 KB dedicated PHT it replaces. The
//! accounting here is generic: the PVCache data term is computed from the
//! plugged-in entry type's [`PvLayout`], so a different backend (different
//! entry widths) gets its own budget from the same formulas.

use crate::config::PvConfig;
use crate::entry::{PvEntry, PvLayout};

/// Per-component on-chip storage of one PVProxy, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvStorageBudget {
    /// PVCache data array (cached PVTable sets).
    pub pvcache_data_bytes: u64,
    /// PVCache tags (PVTable set index plus a valid bit per entry).
    pub tag_bytes: u64,
    /// Dirty bits, one per PVCache entry.
    pub dirty_bytes: u64,
    /// MSHR storage.
    pub mshr_bytes: u64,
    /// Evict buffer (one block per entry).
    pub evict_buffer_bytes: u64,
    /// Pattern buffer (one pending request per entry).
    pub pattern_buffer_bytes: u64,
}

/// Bytes per MSHR entry: a 32-bit set address, the requesting index, a few
/// state bits and the merged-request list, rounded to the paper's per-proxy
/// total (84 bytes for 4 entries).
const MSHR_ENTRY_BYTES: u64 = 21;
/// Bytes per pattern-buffer entry (a 32-bit request descriptor).
const PATTERN_BUFFER_ENTRY_BYTES: u64 = 4;

impl PvStorageBudget {
    /// Computes the storage budget of a proxy with resources `config`
    /// caching sets packed per `layout`.
    pub fn new(config: &PvConfig, layout: &PvLayout) -> Self {
        let entries_per_set = layout.entries_per_block() as u64;
        let pvcache_bits =
            config.pvcache_sets as u64 * entries_per_set * u64::from(layout.entry_bits());
        let tag_bits = config.pvcache_sets as u64 * (u64::from(config.pvcache_tag_bits()) + 1);
        PvStorageBudget {
            pvcache_data_bytes: pvcache_bits.div_ceil(8),
            tag_bytes: tag_bits.div_ceil(8),
            dirty_bytes: (config.pvcache_sets as u64).div_ceil(8),
            mshr_bytes: config.mshr_entries as u64 * MSHR_ENTRY_BYTES,
            evict_buffer_bytes: config.evict_buffer_entries as u64 * config.block_bytes,
            pattern_buffer_bytes: config.pattern_buffer_entries as u64 * PATTERN_BUFFER_ENTRY_BYTES,
        }
    }

    /// The budget of a proxy virtualizing entries of type `E`.
    pub fn for_entry<E: PvEntry>(config: &PvConfig) -> Self {
        Self::new(config, &PvLayout::of::<E>(config.block_bytes))
    }

    /// Total dedicated on-chip bytes per core.
    pub fn total_bytes(&self) -> u64 {
        self.pvcache_data_bytes
            + self.tag_bytes
            + self.dirty_bytes
            + self.mshr_bytes
            + self.evict_buffer_bytes
            + self.pattern_buffer_bytes
    }

    /// Reduction factor versus a dedicated table of `dedicated_bytes`.
    pub fn reduction_factor(&self, dedicated_bytes: u64) -> f64 {
        dedicated_bytes as f64 / self.total_bytes() as f64
    }

    /// The rows of the Section 4.6 breakdown as `(component, bytes)` pairs,
    /// in the order the paper lists them.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("PVCache data", self.pvcache_data_bytes),
            ("PVCache tags", self.tag_bytes),
            ("Dirty bits", self.dirty_bytes),
            ("MSHRs", self.mshr_bytes),
            ("Evict buffer", self.evict_buffer_bytes),
            ("Pattern buffer", self.pattern_buffer_bytes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The SMS instance's widths (11-bit tag + 32-bit pattern).
    fn sms_layout() -> PvLayout {
        PvLayout::new(11, 32, 64)
    }

    #[test]
    fn sms_instance_matches_paper_section_4_6() {
        let budget = PvStorageBudget::new(&PvConfig::pv8(), &sms_layout());
        assert_eq!(budget.pvcache_data_bytes, 473);
        assert_eq!(budget.tag_bytes, 11);
        assert_eq!(budget.dirty_bytes, 1);
        assert_eq!(budget.mshr_bytes, 84);
        assert_eq!(budget.evict_buffer_bytes, 256);
        assert_eq!(budget.pattern_buffer_bytes, 64);
        assert_eq!(budget.total_bytes(), 889);
    }

    #[test]
    fn larger_pvcache_costs_more_storage() {
        let pv8 = PvStorageBudget::new(&PvConfig::pv8(), &sms_layout()).total_bytes();
        let pv16 = PvStorageBudget::new(&PvConfig::pv16(), &sms_layout()).total_bytes();
        let pv32 = PvStorageBudget::new(&PvConfig::pv32(), &sms_layout()).total_bytes();
        assert!(pv8 < pv16 && pv16 < pv32);
        assert!(
            pv32 < 4 * 1024,
            "even PV-32 stays well under the dedicated table size"
        );
    }

    #[test]
    fn budget_scales_with_entry_widths() {
        // A 12+28-bit entry packs 12 per block: 8 sets x 12 x 40 bits = 480B
        // of PVCache data, versus the SMS instance's 473B.
        let narrow = PvStorageBudget::new(&PvConfig::pv8(), &PvLayout::new(12, 28, 64));
        assert_eq!(narrow.pvcache_data_bytes, 480);
        // Only the data term depends on the widths.
        let sms = PvStorageBudget::new(&PvConfig::pv8(), &sms_layout());
        assert_eq!(narrow.tag_bytes, sms.tag_bytes);
        assert_eq!(narrow.mshr_bytes, sms.mshr_bytes);
    }

    #[test]
    fn rows_cover_every_component() {
        let budget = PvStorageBudget::new(&PvConfig::pv8(), &sms_layout());
        let sum: u64 = budget.rows().iter().map(|(_, bytes)| bytes).sum();
        assert_eq!(sum, budget.total_bytes());
        assert_eq!(budget.rows().len(), 6);
    }
}
