//! The predictor-facing storage interface of the virtualization substrate.
//!
//! An optimization engine (SMS, a Markov prefetcher, a branch predictor, …)
//! talks to its virtualized table through [`VirtualizedBackend`]: retrieve
//! the entry stored for an index, or store an entry for an index — the same
//! two operations a dedicated table supports, which is exactly why the
//! engine itself can stay unchanged when its table is virtualized (the
//! paper's central requirement).

use crate::entry::PvEntry;
use crate::stats::PvStats;
use pv_mem::MemoryHierarchy;

/// Result of a backend lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvLookup<E> {
    /// The stored entry, or `None` on a predictor miss.
    pub entry: Option<E>,
    /// Cycle at which the result is available to the engine (a virtualized
    /// lookup may have to fetch its table set from the L2 or from memory).
    pub ready_at: u64,
}

/// A virtualized predictor-table backend storing entries of type `E`.
///
/// The canonical implementation is [`crate::PvProxy`]; the trait exists so
/// engines and tests can also run over mocks or alternative substrates
/// without depending on the proxy's internals.
pub trait VirtualizedBackend<E: PvEntry>: std::fmt::Debug {
    /// Looks up the entry stored for `index`.
    fn lookup(&mut self, index: u64, mem: &mut MemoryHierarchy, now: u64) -> PvLookup<E>;

    /// Stores `entry` for `index`, replacing any previous entry.
    ///
    /// `entry.tag()` must equal the tag bits of `index` for this backend's
    /// table geometry.
    fn store(&mut self, index: u64, entry: E, mem: &mut MemoryHierarchy, now: u64);

    /// Writes all dirty cached state back to the memory hierarchy (end of a
    /// simulation window).
    fn drain(&mut self, mem: &mut MemoryHierarchy, now: u64);

    /// Statistics collected so far.
    fn stats(&self) -> &PvStats;

    /// Resets statistics; learned state is preserved.
    fn reset_stats(&mut self);

    /// Human-readable label for reports (e.g. `"PV-8"`).
    fn label(&self) -> String;

    /// Dedicated on-chip storage this backend needs, in bytes.
    fn dedicated_storage_bytes(&self) -> u64;

    /// Number of entries currently retained (diagnostic).
    fn resident_entries(&self) -> usize;
}
