//! Bit-level packing of PVTable sets into memory blocks (Figure 3a,
//! generalised to arbitrary entry widths).
//!
//! Entries are packed back to back — tag bits first, then payload bits —
//! into one memory block per set, with any remaining bits left unused (the
//! paper suggests using the trailer for LRU state or future extensions).
//! For the paper's SMS instance (11-bit tag + 32-bit pattern, 64-byte
//! blocks) this yields eleven 43-bit entries and a 39-bit trailer; other
//! [`PvEntry`] implementations get whatever geometry their widths imply via
//! [`PvLayout`]. The simulator keeps table contents in structured form for
//! speed, but this codec is what defines the in-memory layout, and the
//! proxy's footprint and tests are checked against it.

use crate::entry::{ones, PvEntry, PvLayout};
use crate::table::PvSet;
use bytes::{Bytes, BytesMut};

/// Mask of the low `bits` bits of a 128-bit window (`bits <= 64`).
fn low_mask(bits: u32) -> u128 {
    (1u128 << bits) - 1
}

/// ORs the low `bits` bits of `value` into `buffer` starting at `bit_offset`,
/// little-endian within and across bytes.
///
/// A field of up to 64 bits at an arbitrary bit offset spans at most 9 bytes,
/// so the whole operation is one 128-bit shift/mask over that byte window
/// instead of a per-bit loop. The OR semantics (set bits are never cleared)
/// match the bit-at-a-time original; `encode_set` always writes into a zeroed
/// buffer.
pub fn write_bits(buffer: &mut [u8], bit_offset: usize, value: u64, bits: u32) {
    debug_assert!(bits <= 64);
    let first = bit_offset / 8;
    let shift = bit_offset % 8;
    let span = (shift + bits as usize).div_ceil(8);
    let mut window = [0u8; 16];
    window[..span].copy_from_slice(&buffer[first..first + span]);
    let word = u128::from_le_bytes(window) | ((u128::from(value) & low_mask(bits)) << shift);
    buffer[first..first + span].copy_from_slice(&word.to_le_bytes()[..span]);
}

/// Reads `bits` bits starting at `bit_offset` as one 128-bit window
/// shift/mask; the exact inverse of [`write_bits`].
pub fn read_bits(buffer: &[u8], bit_offset: usize, bits: u32) -> u64 {
    debug_assert!(bits <= 64);
    let first = bit_offset / 8;
    let shift = bit_offset % 8;
    let span = (shift + bits as usize).div_ceil(8);
    let mut window = [0u8; 16];
    window[..span].copy_from_slice(&buffer[first..first + span]);
    ((u128::from_le_bytes(window) >> shift) & low_mask(bits)) as u64
}

/// Encodes a PVTable set into its packed one-block representation.
///
/// Entries are written in recency order; empty ways are encoded as all-zero
/// entries (the all-zero payload is the invalid marker per the [`PvEntry`]
/// contract).
///
/// # Panics
///
/// Panics if the set holds more entries than fit in one block under
/// `layout`, or if an entry's tag or payload exceeds the layout's widths.
pub fn encode_set<E: PvEntry>(set: &PvSet<E>, layout: &PvLayout) -> Bytes {
    assert!(
        set.len() <= layout.entries_per_block(),
        "set holds {} entries but only {} fit in a {}-byte block",
        set.len(),
        layout.entries_per_block(),
        layout.block_bytes
    );
    let mut buffer = BytesMut::zeroed(layout.block_bytes as usize);
    for (slot, entry) in set.iter().enumerate() {
        let (tag, payload) = (entry.tag(), entry.payload());
        assert!(
            tag <= ones(layout.tag_bits),
            "tag {tag:#x} exceeds {} tag bits",
            layout.tag_bits
        );
        assert!(
            payload <= ones(layout.payload_bits),
            "payload {payload:#x} exceeds {} payload bits",
            layout.payload_bits
        );
        assert!(
            payload != 0,
            "a valid entry must not encode the all-zero invalid marker"
        );
        let bit_offset = slot * layout.entry_bits() as usize;
        write_bits(&mut buffer, bit_offset, tag, layout.tag_bits);
        write_bits(
            &mut buffer,
            bit_offset + layout.tag_bits as usize,
            payload,
            layout.payload_bits,
        );
    }
    buffer.freeze()
}

/// Decodes a packed block back into a PVTable set.
///
/// # Panics
///
/// Panics if `block` is shorter than the layout's block size.
pub fn decode_set<E: PvEntry>(block: &[u8], layout: &PvLayout) -> PvSet<E> {
    assert!(
        block.len() >= layout.block_bytes as usize,
        "packed block must be at least {} bytes",
        layout.block_bytes
    );
    let ways = layout.entries_per_block();
    let mut set = PvSet::new(ways);
    // Entries were packed most-recently-used first, so appending each slot at
    // the LRU end rebuilds the recency order directly. Keeping the first
    // occurrence of a duplicated tag matches the historical reverse-insertion
    // rebuild (promote-on-reinsert left the earliest slot's payload in
    // front), which the reference codec still implements literally.
    for slot in 0..ways {
        let bit_offset = slot * layout.entry_bits() as usize;
        let tag = read_bits(block, bit_offset, layout.tag_bits);
        let payload = read_bits(
            block,
            bit_offset + layout.tag_bits as usize,
            layout.payload_bits,
        );
        if let Some(entry) = E::from_parts(tag, payload) {
            set.push_lru(entry);
        }
    }
    set
}

/// The bit-at-a-time codec retained from the pre-word-level implementation.
///
/// Kept byte-for-byte faithful so differential tests and `perfbench` can pin
/// the word-level codec's layout and measure its speedup against the
/// original. Must not be used on any simulation path.
pub mod reference {
    use super::*;

    /// Bit-at-a-time equivalent of [`super::write_bits`] (original code).
    pub fn write_bits(buffer: &mut [u8], bit_offset: usize, value: u64, bits: u32) {
        for i in 0..bits as usize {
            let bit = (value >> i) & 1;
            let position = bit_offset + i;
            let byte = position / 8;
            let shift = position % 8;
            if bit == 1 {
                buffer[byte] |= 1 << shift;
            }
        }
    }

    /// Bit-at-a-time equivalent of [`super::read_bits`] (original code).
    pub fn read_bits(buffer: &[u8], bit_offset: usize, bits: u32) -> u64 {
        let mut value = 0u64;
        for i in 0..bits as usize {
            let position = bit_offset + i;
            let byte = position / 8;
            let shift = position % 8;
            if buffer[byte] & (1 << shift) != 0 {
                value |= 1 << i;
            }
        }
        value
    }

    /// [`super::encode_set`] over the bit-at-a-time primitives.
    pub fn encode_set<E: PvEntry>(set: &PvSet<E>, layout: &PvLayout) -> Bytes {
        assert!(
            set.len() <= layout.entries_per_block(),
            "set holds {} entries but only {} fit in a {}-byte block",
            set.len(),
            layout.entries_per_block(),
            layout.block_bytes
        );
        let mut buffer = BytesMut::zeroed(layout.block_bytes as usize);
        for (slot, entry) in set.iter().enumerate() {
            let bit_offset = slot * layout.entry_bits() as usize;
            write_bits(&mut buffer, bit_offset, entry.tag(), layout.tag_bits);
            write_bits(
                &mut buffer,
                bit_offset + layout.tag_bits as usize,
                entry.payload(),
                layout.payload_bits,
            );
        }
        buffer.freeze()
    }

    /// [`super::decode_set`] over the bit-at-a-time primitives.
    pub fn decode_set<E: PvEntry>(block: &[u8], layout: &PvLayout) -> PvSet<E> {
        assert!(
            block.len() >= layout.block_bytes as usize,
            "packed block must be at least {} bytes",
            layout.block_bytes
        );
        let ways = layout.entries_per_block();
        let mut set = PvSet::new(ways);
        let mut entries = Vec::new();
        for slot in 0..ways {
            let bit_offset = slot * layout.entry_bits() as usize;
            let tag = read_bits(block, bit_offset, layout.tag_bits);
            let payload = read_bits(
                block,
                bit_offset + layout.tag_bits as usize,
                layout.payload_bits,
            );
            if let Some(entry) = E::from_parts(tag, payload) {
                entries.push(entry);
            }
        }
        for entry in entries.into_iter().rev() {
            set.insert(entry);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RawEntry;

    /// The paper's SMS instance of the layout.
    fn sms_layout() -> PvLayout {
        PvLayout::new(11, 32, 64)
    }

    fn raw(tag: u64, payload: u64) -> RawEntry {
        RawEntry::new(tag, payload)
    }

    #[test]
    fn encoded_block_is_one_cache_block() {
        let set: PvSet<RawEntry> = PvSet::new(11);
        let block = encode_set(&set, &sms_layout());
        assert_eq!(block.len(), 64);
        assert!(
            block.iter().all(|&b| b == 0),
            "an empty set encodes to zeroes"
        );
    }

    #[test]
    fn round_trip_preserves_entries() {
        let layout = sms_layout();
        let mut set = PvSet::new(layout.entries_per_block());
        set.insert(raw(0x2aa, 0x8000_0009));
        set.insert(raw(0x155, 1 << 7));
        set.insert(raw(0x001, 0xdead_beef));
        let decoded: PvSet<RawEntry> = decode_set(&encode_set(&set, &layout), &layout);
        assert_eq!(decoded.len(), set.len());
        for entry in set.iter() {
            assert_eq!(decoded.peek(entry.tag), Some(entry), "tag {:#x}", entry.tag);
        }
    }

    #[test]
    fn full_set_round_trips() {
        let layout = sms_layout();
        let mut set = PvSet::new(layout.entries_per_block());
        for i in 0..layout.entries_per_block() as u64 {
            set.insert(raw(i, 0x8000_0001 | (i << 8)));
        }
        let decoded: PvSet<RawEntry> = decode_set(&encode_set(&set, &layout), &layout);
        assert_eq!(decoded.len(), layout.entries_per_block());
        for i in 0..layout.entries_per_block() as u64 {
            assert!(decoded.peek(i).is_some());
        }
    }

    #[test]
    fn recency_order_is_preserved() {
        let layout = sms_layout();
        let mut set = PvSet::new(layout.entries_per_block());
        for i in 0..layout.entries_per_block() as u64 {
            set.insert(raw(i, i + 1));
        }
        // Touch tag 0 so it is most recently used.
        set.lookup(0);
        let decoded: PvSet<RawEntry> = decode_set(&encode_set(&set, &layout), &layout);
        let first = decoded.iter().next().expect("set is not empty");
        assert_eq!(
            first.tag, 0,
            "MRU entry must survive the round trip in first position"
        );
    }

    #[test]
    fn trailing_bits_are_unused() {
        // 11 entries x 43 bits = 473 bits; bits 473..512 must stay zero even
        // for a full set (Figure 3a's unused trailer).
        let layout = sms_layout();
        let mut set = PvSet::new(layout.entries_per_block());
        for i in 0..layout.entries_per_block() as u64 {
            set.insert(raw(i | 0x7f0, u64::from(u32::MAX)));
        }
        let block = encode_set(&set, &layout);
        let full_bits = layout.entries_per_block() * layout.entry_bits() as usize;
        assert_eq!(full_bits, 473);
        for bit in full_bits..512 {
            let byte = bit / 8;
            let shift = bit % 8;
            assert_eq!(block[byte] & (1 << shift), 0, "bit {bit} must be unused");
        }
    }

    #[test]
    fn max_tag_and_payload_round_trip() {
        let layout = sms_layout();
        let mut set = PvSet::new(layout.entries_per_block());
        set.insert(raw(0x7ff, u64::from(u32::MAX)));
        let decoded: PvSet<RawEntry> = decode_set(&encode_set(&set, &layout), &layout);
        assert_eq!(
            decoded.peek(0x7ff).map(|e| e.payload),
            Some(u64::from(u32::MAX))
        );
    }

    #[test]
    fn wide_layouts_pack_fewer_entries_per_block() {
        // 16-bit tag + 48-bit payload = 64-bit entries: 8 per block.
        let layout = PvLayout::new(16, 48, 64);
        let mut set = PvSet::new(layout.entries_per_block());
        for i in 0..8u64 {
            set.insert(raw(0xFF00 | i, (1 << 47) | i));
        }
        let decoded: PvSet<RawEntry> = decode_set(&encode_set(&set, &layout), &layout);
        assert_eq!(decoded.len(), 8);
        assert_eq!(decoded.peek(0xFF07).map(|e| e.payload), Some((1 << 47) | 7));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overwide_tag_panics() {
        let layout = sms_layout();
        let mut set = PvSet::new(layout.entries_per_block());
        set.insert(raw(0x800, 1)); // 12 bits: one past the 11-bit tag limit.
        encode_set(&set, &layout);
    }
}
