//! Bit-level packing of PVTable sets into memory blocks (Figure 3a).
//!
//! Eleven entries of 43 bits each (an 11-bit tag followed by a 32-bit
//! spatial pattern) are packed back to back into a 64-byte block, leaving 39
//! trailing bits unused (the paper suggests using them for LRU state or
//! future extensions). The simulator keeps table contents in structured form
//! for speed, but this codec is what defines the in-memory layout, and the
//! proxy's footprint and tests are checked against it.

use crate::config::PvConfig;
use crate::table::{PvEntry, PvSet};
use bytes::{Bytes, BytesMut};
use pv_sms::SpatialPattern;

/// Number of tag bits stored per packed entry for a 1K-set table.
pub const PACKED_TAG_BITS: u32 = 11;
/// Number of pattern bits stored per packed entry.
pub const PACKED_PATTERN_BITS: u32 = 32;

fn write_bits(buffer: &mut [u8], bit_offset: usize, value: u64, bits: u32) {
    for i in 0..bits as usize {
        let bit = (value >> i) & 1;
        let position = bit_offset + i;
        let byte = position / 8;
        let shift = position % 8;
        if bit == 1 {
            buffer[byte] |= 1 << shift;
        }
    }
}

fn read_bits(buffer: &[u8], bit_offset: usize, bits: u32) -> u64 {
    let mut value = 0u64;
    for i in 0..bits as usize {
        let position = bit_offset + i;
        let byte = position / 8;
        let shift = position % 8;
        if buffer[byte] & (1 << shift) != 0 {
            value |= 1 << i;
        }
    }
    value
}

/// Encodes a PVTable set into the packed 64-byte representation.
///
/// Entries are written in recency order; empty ways are encoded as all-zero
/// entries with an empty pattern (an empty pattern is never stored by the
/// prefetcher, so "pattern == 0" doubles as the invalid marker).
///
/// # Panics
///
/// Panics if the set holds more entries than `config.ways`.
pub fn encode_set(set: &PvSet, config: &PvConfig) -> Bytes {
    assert!(set.len() <= config.ways, "set has more entries than the configured associativity");
    let mut buffer = BytesMut::zeroed(config.block_bytes as usize);
    for (slot, entry) in set.iter().enumerate() {
        let bit_offset = slot * config.entry_bits as usize;
        write_bits(&mut buffer, bit_offset, u64::from(entry.tag), PACKED_TAG_BITS);
        write_bits(
            &mut buffer,
            bit_offset + PACKED_TAG_BITS as usize,
            u64::from(entry.pattern.bits()),
            PACKED_PATTERN_BITS,
        );
    }
    buffer.freeze()
}

/// Decodes a packed 64-byte block back into a PVTable set.
///
/// # Panics
///
/// Panics if `block` is shorter than the configured block size.
pub fn decode_set(block: &[u8], config: &PvConfig) -> PvSet {
    assert!(
        block.len() >= config.block_bytes as usize,
        "packed block must be at least {} bytes",
        config.block_bytes
    );
    let mut set = PvSet::new(config.ways);
    // Rebuild in reverse so that the first packed entry ends up
    // most-recently-used, matching the encoding order.
    let mut entries = Vec::new();
    for slot in 0..config.ways {
        let bit_offset = slot * config.entry_bits as usize;
        let tag = read_bits(block, bit_offset, PACKED_TAG_BITS) as u16;
        let pattern_bits = read_bits(block, bit_offset + PACKED_TAG_BITS as usize, PACKED_PATTERN_BITS) as u32;
        if pattern_bits != 0 {
            entries.push(PvEntry {
                tag,
                pattern: SpatialPattern::from_bits(pattern_bits),
            });
        }
    }
    for entry in entries.into_iter().rev() {
        set.insert(entry.tag, entry.pattern);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PvConfig {
        PvConfig::pv8()
    }

    #[test]
    fn encoded_block_is_one_cache_block() {
        let set = PvSet::new(11);
        let block = encode_set(&set, &config());
        assert_eq!(block.len(), 64);
        assert!(block.iter().all(|&b| b == 0), "an empty set encodes to zeroes");
    }

    #[test]
    fn round_trip_preserves_entries() {
        let config = config();
        let mut set = PvSet::new(config.ways);
        set.insert(0x2aa, SpatialPattern::from_offsets([0, 3, 31]));
        set.insert(0x155, SpatialPattern::from_offsets([7]));
        set.insert(0x001, SpatialPattern::from_bits(0xdead_beef));
        let decoded = decode_set(&encode_set(&set, &config), &config);
        assert_eq!(decoded.len(), set.len());
        for entry in set.iter() {
            assert_eq!(decoded.peek(entry.tag), Some(entry.pattern), "tag {:#x}", entry.tag);
        }
    }

    #[test]
    fn full_set_round_trips() {
        let config = config();
        let mut set = PvSet::new(config.ways);
        for i in 0..config.ways as u16 {
            set.insert(i, SpatialPattern::from_bits(0x8000_0001 | (u32::from(i) << 8)));
        }
        let decoded = decode_set(&encode_set(&set, &config), &config);
        assert_eq!(decoded.len(), config.ways);
        for i in 0..config.ways as u16 {
            assert!(decoded.peek(i).is_some());
        }
    }

    #[test]
    fn recency_order_is_preserved() {
        let config = config();
        let mut set = PvSet::new(config.ways);
        for i in 0..config.ways as u16 {
            set.insert(i, SpatialPattern::single(u32::from(i) % 32));
        }
        // Touch tag 0 so it is most recently used.
        set.lookup(0);
        let decoded = decode_set(&encode_set(&set, &config), &config);
        let first = decoded.iter().next().expect("set is not empty");
        assert_eq!(first.tag, 0, "MRU entry must survive the round trip in first position");
    }

    #[test]
    fn trailing_bits_are_unused() {
        // 11 entries x 43 bits = 473 bits; bits 473..512 must stay zero even
        // for a full set (Figure 3a's unused trailer).
        let config = config();
        let mut set = PvSet::new(config.ways);
        for i in 0..config.ways as u16 {
            set.insert(i | 0x7ff, SpatialPattern::from_bits(u32::MAX));
        }
        let block = encode_set(&set, &config);
        let full_bits = config.ways * config.entry_bits as usize;
        for bit in full_bits..512 {
            let byte = bit / 8;
            let shift = bit % 8;
            assert_eq!(block[byte] & (1 << shift), 0, "bit {bit} must be unused");
        }
    }

    #[test]
    fn max_tag_and_pattern_round_trip() {
        let config = config();
        let mut set = PvSet::new(config.ways);
        set.insert(0x7ff, SpatialPattern::from_bits(u32::MAX));
        let decoded = decode_set(&encode_set(&set, &config), &config);
        assert_eq!(decoded.peek(0x7ff), Some(SpatialPattern::from_bits(u32::MAX)));
    }
}
