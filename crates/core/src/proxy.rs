//! The PVProxy: the on-chip mediator between the optimization engine and the
//! in-memory PVTable (paper Section 2.2 and 3.2.2).

use crate::buffers::{EvictBuffer, PatternBuffer};
use crate::config::PvConfig;
use crate::pvcache::{PvCache, PvCacheEviction};
use crate::register::PvStartRegister;
use crate::stats::PvStats;
use crate::storage::PvStorageBudget;
use crate::table::PvTable;
use pv_mem::{AccessKind, Address, DataClass, MemoryHierarchy, MshrFile, Requester};
use pv_sms::{PatternLookup, PatternStorage, PhtIndex, SpatialPattern};

/// The virtualized PHT backend for one core's SMS prefetcher.
///
/// The proxy receives the same two operations the dedicated table supports —
/// retrieve an entry and store an entry — keyed by the same index. Requests
/// that hit in the [`PvCache`] complete immediately; misses compute the
/// PVTable set's memory address from the `PVStart` register (Figure 3b) and
/// issue an ordinary read to the L2, through which the set is installed in
/// the PVCache. Dirty victims are written back towards the L2 like any other
/// modified block.
#[derive(Debug)]
pub struct PvProxy {
    core: usize,
    config: PvConfig,
    table: PvTable,
    cache: PvCache,
    mshr: MshrFile,
    pattern_buffer: PatternBuffer,
    evict_buffer: EvictBuffer,
    stats: PvStats,
}

impl PvProxy {
    /// Creates the proxy for `core`, with its PVTable based at `pv_start`
    /// (normally `HierarchyConfig::pv_regions.core_base(core)`).
    pub fn new(core: usize, config: PvConfig, pv_start: Address) -> Self {
        config.assert_valid();
        let register = PvStartRegister::new(pv_start);
        PvProxy {
            core,
            table: PvTable::new(&config, register),
            cache: PvCache::new(config.pvcache_sets),
            mshr: MshrFile::new(config.mshr_entries),
            pattern_buffer: PatternBuffer::new(config.pattern_buffer_entries),
            evict_buffer: EvictBuffer::new(config.evict_buffer_entries),
            config,
            stats: PvStats::default(),
        }
    }

    /// The proxy's configuration.
    pub fn config(&self) -> &PvConfig {
        &self.config
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &PvStats {
        &self.stats
    }

    /// The in-memory table backing this proxy.
    pub fn table(&self) -> &PvTable {
        &self.table
    }

    /// The on-chip PVCache.
    pub fn pvcache(&self) -> &PvCache {
        &self.cache
    }

    /// The Section 4.6 storage budget of this proxy.
    pub fn storage_budget(&self) -> PvStorageBudget {
        PvStorageBudget::for_config(&self.config)
    }

    /// Which core this proxy serves.
    pub fn core(&self) -> usize {
        self.core
    }

    fn split_index(&self, index: PhtIndex) -> (usize, u16) {
        (
            index.set_index(self.config.table_sets),
            index.tag(self.config.table_sets) as u16,
        )
    }

    /// Fetches PVTable set `set_index` through the memory hierarchy and
    /// installs it in the PVCache. Returns the cycle at which the set's data
    /// is available.
    fn fetch_set(&mut self, set_index: usize, mem: &mut MemoryHierarchy, now: u64) -> u64 {
        let address = self.table.set_address(set_index);
        self.mshr.retire(now);
        let ready_at = if let Some(entry) = self.mshr.lookup(address.block()) {
            self.stats.mshr_merges += 1;
            let ready = entry.ready_at;
            let _ = self.mshr.register(address.block(), now, ready);
            ready
        } else {
            self.stats.memory_requests += 1;
            let response = mem.access(
                Requester::pv_proxy(self.core),
                address.raw(),
                AccessKind::Read,
                DataClass::Predictor,
                now,
            );
            let ready = now + response.latency;
            let _ = self.mshr.register(address.block(), now, ready);
            ready
        };
        let contents = self.table.read_set(set_index).clone();
        if let Some(evicted) = self.cache.insert(set_index, contents, false) {
            self.handle_eviction(evicted, mem, now);
        }
        ready_at
    }

    fn handle_eviction(&mut self, evicted: PvCacheEviction, mem: &mut MemoryHierarchy, now: u64) {
        if !evicted.dirty {
            // Non-modified entries are discarded (paper Section 2.2).
            return;
        }
        self.stats.dirty_writebacks += 1;
        let address = self.table.set_address(evicted.set_index);
        // The authoritative contents move back to the in-memory table, and
        // the block travels to the L2 like an ordinary write-back.
        self.table.write_set(evicted.set_index, evicted.contents);
        self.evict_buffer
            .push(evicted.set_index, now, now + mem.config().l2.data_latency);
        mem.writeback(Requester::pv_proxy(self.core), address.raw(), now);
    }

    /// Writes every dirty PVCache entry back to the memory hierarchy (used
    /// at the end of a simulation window so no learned state is lost).
    pub fn drain(&mut self, mem: &mut MemoryHierarchy, now: u64) {
        for evicted in self.cache.drain_dirty() {
            self.handle_eviction(evicted, mem, now);
        }
    }
}

impl PatternStorage for PvProxy {
    fn lookup(&mut self, index: PhtIndex, mem: &mut MemoryHierarchy, now: u64) -> PatternLookup {
        self.stats.lookups += 1;
        let (set_index, tag) = self.split_index(index);
        if let Some(entry) = self.cache.lookup(set_index) {
            self.stats.pvcache_hits += 1;
            return PatternLookup {
                pattern: entry.contents.lookup(tag),
                ready_at: now + self.config.pvcache_latency,
            };
        }
        self.stats.pvcache_misses += 1;
        // A miss needs a pattern-buffer slot to hold the pending trigger; if
        // none is free the prediction is simply dropped (the predictor is
        // advisory, so correctness is unaffected).
        let provisional_done = now + mem.config().l2.tag_latency + mem.config().l2.data_latency;
        if !self.pattern_buffer.try_reserve(index.raw(), now, provisional_done) {
            self.stats.dropped_lookups += 1;
            return PatternLookup {
                pattern: None,
                ready_at: now,
            };
        }
        let ready_at = self.fetch_set(set_index, mem, now);
        let pattern = self
            .cache
            .lookup(set_index)
            .and_then(|entry| entry.contents.lookup(tag));
        PatternLookup { pattern, ready_at }
    }

    fn store(&mut self, index: PhtIndex, pattern: SpatialPattern, mem: &mut MemoryHierarchy, now: u64) {
        self.stats.stores += 1;
        let (set_index, tag) = self.split_index(index);
        if self.cache.lookup(set_index).is_none() {
            // Write-allocate: bring the set in before updating it, so the
            // other ten entries of the set are preserved.
            self.stats.store_misses += 1;
            let _ = self.fetch_set(set_index, mem, now);
        }
        let entry = self
            .cache
            .lookup(set_index)
            .expect("the set was just installed in the PVCache");
        entry.contents.insert(tag, pattern);
        entry.dirty = true;
    }

    fn label(&self) -> String {
        format!("PV-{}", self.config.pvcache_sets)
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        self.storage_budget().total_bytes()
    }

    fn resident_patterns(&self) -> usize {
        // Patterns visible on chip (PVCache) plus the in-memory table.
        self.table.resident_patterns().max(self.cache.resident_patterns())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn reset_stats(&mut self) {
        self.stats = PvStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::{HierarchyConfig, HitLevel};
    use pv_sms::TriggerKey;

    fn setup() -> (MemoryHierarchy, PvProxy) {
        let config = HierarchyConfig::paper_baseline(4);
        let mem = MemoryHierarchy::new(config);
        let proxy = PvProxy::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        (mem, proxy)
    }

    fn index_for(pc: u64, offset: u32) -> PhtIndex {
        TriggerKey::new(pc, offset).index()
    }

    #[test]
    fn cold_lookup_misses_and_costs_memory_latency() {
        let (mut mem, mut proxy) = setup();
        let lookup = proxy.lookup(index_for(0x4000, 3), &mut mem, 0);
        assert!(lookup.pattern.is_none());
        assert!(lookup.ready_at >= 400, "cold PVTable set must come from DRAM");
        assert_eq!(proxy.stats().pvcache_misses, 1);
        assert_eq!(proxy.stats().memory_requests, 1);
    }

    #[test]
    fn store_then_lookup_hits_in_pvcache() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(0x4000, 3);
        let pattern = SpatialPattern::from_offsets([3, 4, 9]);
        proxy.store(index, pattern, &mut mem, 0);
        let lookup = proxy.lookup(index, &mut mem, 100);
        assert_eq!(lookup.pattern, Some(pattern));
        assert_eq!(lookup.ready_at, 100 + proxy.config().pvcache_latency);
        assert_eq!(proxy.stats().pvcache_hits, 1);
    }

    #[test]
    fn pvcache_misses_generate_predictor_classified_l2_requests() {
        let (mut mem, mut proxy) = setup();
        proxy.lookup(index_for(0x4000, 3), &mut mem, 0);
        let stats = mem.stats();
        assert_eq!(stats.l2_requests.predictor, 1);
        assert_eq!(stats.l2_requests.application, 0);
    }

    #[test]
    fn evicted_dirty_sets_survive_in_memory() {
        let (mut mem, mut proxy) = setup();
        let pattern = SpatialPattern::from_offsets([1, 2]);
        // Store patterns into more distinct sets than the PVCache holds so
        // the first one is evicted (dirty) and written back.
        let capacity = proxy.config().pvcache_sets;
        for i in 0..(capacity + 4) as u64 {
            // Consecutive instruction words map to different PVTable sets
            // (the set index is the low bits of PC-bits concatenated with
            // the offset, so a PC step of 4 moves the set by 32).
            let index = index_for(0x4000 + i * 4, 1);
            proxy.store(index, pattern, &mut mem, i * 1000);
        }
        assert!(proxy.stats().dirty_writebacks >= 1);
        // The first index's pattern must still be retrievable: its set comes
        // back from the memory hierarchy.
        let lookup = proxy.lookup(index_for(0x4000, 1), &mut mem, 1_000_000);
        assert_eq!(lookup.pattern, Some(pattern), "dirty write-back must preserve the pattern");
    }

    #[test]
    fn hot_sets_are_served_from_l2_after_first_touch() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(0x8000, 5);
        // First touch goes to DRAM.
        proxy.lookup(index, &mut mem, 0);
        // Push the set out of the PVCache by touching many other sets.
        for i in 1..=proxy.config().pvcache_sets as u64 {
            proxy.lookup(index_for(0x8000 + i * 4, 5), &mut mem, i * 1000);
        }
        // The set is gone from the PVCache but still resident in the L2, so
        // re-fetching it is cheap (no DRAM access).
        let dram_before = mem.stats().dram_reads;
        let lookup = proxy.lookup(index, &mut mem, 1_000_000);
        assert!(lookup.ready_at - 1_000_000 < 100, "refetch should be an L2 hit");
        assert_eq!(mem.stats().dram_reads, dram_before);
    }

    #[test]
    fn merged_requests_do_not_duplicate_memory_traffic() {
        let (mut mem, mut proxy) = setup();
        let index_a = index_for(0x4000, 1);
        let index_b = index_for(0x4000, 1);
        proxy.lookup(index_a, &mut mem, 0);
        // Same set requested again before the first fetch completes: the
        // PVCache already has the (stale-free) set installed, so this is a
        // PVCache hit rather than a second memory request.
        proxy.lookup(index_b, &mut mem, 1);
        assert_eq!(proxy.stats().memory_requests, 1);
    }

    #[test]
    fn lookup_after_l2_residency_is_l2_hit_level() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(0xbeef0, 7);
        proxy.store(index, SpatialPattern::from_offsets([7, 9]), &mut mem, 0);
        proxy.drain(&mut mem, 10);
        // After draining, the set's block lives in the L2.
        let set_index = index.set_index(proxy.config().table_sets);
        let address = proxy.table().set_address(set_index);
        assert!(mem.l2_contains(address.block()));
        let response = mem.access(
            Requester::pv_proxy(0),
            address.raw(),
            AccessKind::Read,
            DataClass::Predictor,
            100,
        );
        assert_eq!(response.level, HitLevel::L2);
    }

    #[test]
    fn storage_budget_matches_paper_total() {
        let (_, proxy) = setup();
        assert_eq!(proxy.dedicated_storage_bytes(), 889);
        assert_eq!(proxy.label(), "PV-8");
    }

    #[test]
    fn per_core_tables_use_disjoint_address_ranges() {
        let config = HierarchyConfig::paper_baseline(4);
        let proxy0 = PvProxy::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        let proxy1 = PvProxy::new(1, PvConfig::pv8(), config.pv_regions.core_base(1));
        let last0 = proxy0.table().set_address(1023).raw() + 63;
        let first1 = proxy1.table().set_address(0).raw();
        assert!(last0 < first1);
    }
}
