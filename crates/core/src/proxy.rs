//! The PVProxy: the on-chip mediator between an optimization engine and its
//! in-memory PVTable (paper Section 2.2 and 3.2.2).

use crate::backend::{PvLookup, VirtualizedBackend};
use crate::buffers::{EvictBuffer, PatternBuffer};
use crate::config::PvConfig;
use crate::entry::{PvEntry, PvLayout};
use crate::pvcache::{PvCache, PvCacheEviction};
use crate::register::PvStartRegister;
use crate::stats::PvStats;
use crate::storage::PvStorageBudget;
use crate::table::PvTable;
use pv_mem::{AccessKind, Address, DataClass, MemoryHierarchy, MshrFile, Requester};

/// The virtualized table backend for one core's optimization engine.
///
/// The proxy receives the same two operations a dedicated table supports —
/// retrieve an entry and store an entry — keyed by the same index, for *any*
/// predictor whose entries implement [`PvEntry`]. Requests that hit in the
/// [`PvCache`] complete immediately; misses compute the PVTable set's memory
/// address from the `PVStart` register (Figure 3b) and issue an ordinary
/// read to the L2, through which the set is installed in the PVCache. Dirty
/// victims are written back towards the L2 like any other modified block.
#[derive(Debug)]
pub struct PvProxy<E: PvEntry> {
    core: usize,
    config: PvConfig,
    layout: PvLayout,
    table: PvTable<E>,
    cache: PvCache<E>,
    mshr: MshrFile,
    pattern_buffer: PatternBuffer,
    evict_buffer: EvictBuffer,
    stats: PvStats,
}

impl<E: PvEntry> PvProxy<E> {
    /// Creates the proxy for `core`, with its PVTable based at `pv_start`
    /// (normally `HierarchyConfig::pv_regions.core_base(core)`).
    pub fn new(core: usize, config: PvConfig, pv_start: Address) -> Self {
        config.assert_valid();
        let register = PvStartRegister::new(pv_start);
        PvProxy {
            core,
            layout: PvLayout::of::<E>(config.block_bytes),
            table: PvTable::new(&config, register),
            cache: PvCache::new(config.pvcache_sets),
            mshr: MshrFile::new(config.mshr_entries),
            pattern_buffer: PatternBuffer::new(config.pattern_buffer_entries),
            evict_buffer: EvictBuffer::new(config.evict_buffer_entries),
            config,
            stats: PvStats::default(),
        }
    }

    /// The proxy's configuration.
    pub fn config(&self) -> &PvConfig {
        &self.config
    }

    /// The packed layout derived from `E`'s bit-widths.
    pub fn layout(&self) -> &PvLayout {
        &self.layout
    }

    /// The in-memory table backing this proxy.
    pub fn table(&self) -> &PvTable<E> {
        &self.table
    }

    /// The on-chip PVCache.
    pub fn pvcache(&self) -> &PvCache<E> {
        &self.cache
    }

    /// The Section 4.6 storage budget of this proxy.
    pub fn storage_budget(&self) -> PvStorageBudget {
        PvStorageBudget::new(&self.config, &self.layout)
    }

    /// Which core this proxy serves.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Splits a raw table index into (set index, tag): the low bits select
    /// the set, the remaining bits are the tag stored in the entry.
    pub fn split_index(&self, index: u64) -> (usize, u64) {
        (
            (index as usize) & (self.config.table_sets - 1),
            index >> self.config.table_sets.trailing_zeros(),
        )
    }

    /// The tag bits of `index` for this proxy's table geometry.
    pub fn tag_of(&self, index: u64) -> u64 {
        self.split_index(index).1
    }

    /// Fetches PVTable set `set_index` through the memory hierarchy and
    /// installs it in the PVCache. Returns the cycle at which the set's data
    /// is available.
    ///
    /// The contents are installed at request time so that later requests for
    /// the same set merge instead of duplicating memory traffic, but the
    /// PVCache entry remembers the fill's completion time: hits arriving
    /// before it report the fill's `ready_at`, not their own cycle.
    fn fetch_set(&mut self, set_index: usize, mem: &mut MemoryHierarchy, now: u64) -> u64 {
        let address = self.table.set_address(set_index);
        self.mshr.retire(now);
        let ready_at = if let Some(entry) = self.mshr.lookup(address.block()) {
            self.stats.mshr_merges += 1;
            let ready = entry.ready_at;
            let _ = self.mshr.register(address.block(), now, ready);
            ready
        } else {
            self.stats.memory_requests += 1;
            let response = mem.access(
                Requester::pv_proxy(self.core),
                address.raw(),
                AccessKind::Read,
                DataClass::Predictor,
                now,
            );
            self.stats.queue_delay_cycles += response.queue_delay;
            let ready = now + response.latency;
            let _ = self.mshr.register(address.block(), now, ready);
            ready
        };
        let contents = self.table.read_set(set_index).clone();
        if let Some(evicted) = self.cache.insert(set_index, contents, false, ready_at) {
            self.handle_eviction(evicted, mem, now);
        }
        ready_at
    }

    fn handle_eviction(
        &mut self,
        evicted: PvCacheEviction<E>,
        mem: &mut MemoryHierarchy,
        now: u64,
    ) {
        if !evicted.dirty {
            // Non-modified entries are discarded (paper Section 2.2).
            return;
        }
        self.stats.dirty_writebacks += 1;
        let address = self.table.set_address(evicted.set_index);
        // The authoritative contents move back to the in-memory table, and
        // the block travels to the L2 like an ordinary write-back.
        self.table.write_set(evicted.set_index, evicted.contents);
        self.evict_buffer
            .push(evicted.set_index, now, now + mem.config().l2.data_latency);
        mem.writeback(Requester::pv_proxy(self.core), address.raw(), now);
    }
}

impl<E: PvEntry> VirtualizedBackend<E> for PvProxy<E> {
    fn lookup(&mut self, index: u64, mem: &mut MemoryHierarchy, now: u64) -> PvLookup<E> {
        self.stats.lookups += 1;
        let (set_index, tag) = self.split_index(index);
        let pvcache_latency = self.config.pvcache_latency;
        if let Some(entry) = self.cache.lookup(set_index) {
            self.stats.pvcache_hits += 1;
            // A hit on a set whose fill is still in flight cannot return
            // data earlier than the fill completes.
            let ready_at = (now + pvcache_latency).max(entry.ready_at);
            if entry.ready_at > now {
                self.stats.pending_hits += 1;
            }
            return PvLookup {
                entry: entry.contents.lookup(tag).cloned(),
                ready_at,
            };
        }
        self.stats.pvcache_misses += 1;
        // A miss needs a pattern-buffer slot to hold the pending request; if
        // none is free the prediction is simply dropped (the predictor is
        // advisory, so correctness is unaffected).
        let provisional_done = now + mem.config().l2.tag_latency + mem.config().l2.data_latency;
        if !self.pattern_buffer.try_reserve(index, now, provisional_done) {
            self.stats.dropped_lookups += 1;
            return PvLookup {
                entry: None,
                ready_at: now,
            };
        }
        let ready_at = self.fetch_set(set_index, mem, now);
        let entry = self
            .cache
            .lookup(set_index)
            .and_then(|entry| entry.contents.lookup(tag))
            .cloned();
        PvLookup { entry, ready_at }
    }

    fn store(&mut self, index: u64, entry: E, mem: &mut MemoryHierarchy, now: u64) {
        self.stats.stores += 1;
        let (set_index, tag) = self.split_index(index);
        // Geometry guards: an entry that disagrees with the index's tag bits
        // or that cannot pack into the derived layout would leave the
        // structured-form table modelling hardware that cannot exist, so
        // reject it at the source (mirrors encode_set's width checks).
        assert_eq!(
            entry.tag(),
            tag,
            "stored entry's tag must match the index's tag bits"
        );
        assert!(
            entry.tag() <= self.layout.max_tag(),
            "tag {:#x} exceeds the layout's {} tag bits",
            entry.tag(),
            self.layout.tag_bits
        );
        assert!(
            entry.payload() != 0 && entry.payload() <= self.layout.max_payload(),
            "payload {:#x} must be non-zero (the invalid marker) and fit the layout's {} payload bits",
            entry.payload(),
            self.layout.payload_bits
        );
        if !self.cache.contains(set_index) {
            // Write-allocate: bring the set in before updating it, so the
            // other entries of the set are preserved.
            self.stats.store_misses += 1;
            let _ = self.fetch_set(set_index, mem, now);
        }
        let cached =
            self.cache.lookup(set_index).expect("the set was just installed in the PVCache");
        cached.contents.insert(entry);
        cached.dirty = true;
    }

    fn drain(&mut self, mem: &mut MemoryHierarchy, now: u64) {
        for evicted in self.cache.drain_dirty() {
            self.handle_eviction(evicted, mem, now);
        }
    }

    fn stats(&self) -> &PvStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PvStats::default();
    }

    fn label(&self) -> String {
        format!("PV-{}", self.config.pvcache_sets)
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        self.storage_budget().total_bytes()
    }

    fn resident_entries(&self) -> usize {
        // Entries visible on chip (PVCache) plus the in-memory table.
        self.table.resident_entries().max(self.cache.resident_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RawEntry;
    use pv_mem::{HierarchyConfig, HitLevel};

    /// An SMS-shaped index: low 10 bits select the set of a 1K-set table,
    /// the remaining 11 bits are the tag.
    fn index_for(set: u64, tag: u64) -> u64 {
        (tag << 10) | (set & 0x3FF)
    }

    fn entry_for(proxy: &PvProxy<RawEntry>, index: u64, payload: u64) -> RawEntry {
        RawEntry::new(proxy.tag_of(index), payload)
    }

    fn setup() -> (MemoryHierarchy, PvProxy<RawEntry>) {
        let config = HierarchyConfig::paper_baseline(4);
        let mem = MemoryHierarchy::new(config);
        let proxy = PvProxy::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        (mem, proxy)
    }

    #[test]
    fn cold_lookup_misses_and_costs_memory_latency() {
        let (mut mem, mut proxy) = setup();
        let lookup = proxy.lookup(index_for(3, 0x20), &mut mem, 0);
        assert!(lookup.entry.is_none());
        assert!(
            lookup.ready_at >= 400,
            "cold PVTable set must come from DRAM"
        );
        assert_eq!(proxy.stats().pvcache_misses, 1);
        assert_eq!(proxy.stats().memory_requests, 1);
    }

    #[test]
    fn store_then_lookup_hits_in_pvcache() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(3, 0x20);
        let entry = entry_for(&proxy, index, 0x1234);
        proxy.store(index, entry, &mut mem, 0);
        let lookup = proxy.lookup(index, &mut mem, 1_000);
        assert_eq!(lookup.entry, Some(entry));
        assert_eq!(lookup.ready_at, 1_000 + proxy.config().pvcache_latency);
        assert_eq!(proxy.stats().pvcache_hits, 1);
    }

    #[test]
    fn pvcache_misses_generate_predictor_classified_l2_requests() {
        let (mut mem, mut proxy) = setup();
        proxy.lookup(index_for(3, 0x20), &mut mem, 0);
        let stats = mem.stats();
        assert_eq!(stats.l2_requests.predictor, 1);
        assert_eq!(stats.l2_requests.application, 0);
    }

    #[test]
    fn evicted_dirty_sets_survive_in_memory() {
        let (mut mem, mut proxy) = setup();
        // Store entries into more distinct sets than the PVCache holds so
        // the first one is evicted (dirty) and written back.
        let capacity = proxy.config().pvcache_sets;
        for i in 0..(capacity + 4) as u64 {
            let index = index_for(i, 5);
            let entry = entry_for(&proxy, index, 0xBEEF);
            proxy.store(index, entry, &mut mem, i * 1000);
        }
        assert!(proxy.stats().dirty_writebacks >= 1);
        // The first index's entry must still be retrievable: its set comes
        // back from the memory hierarchy.
        let index = index_for(0, 5);
        let lookup = proxy.lookup(index, &mut mem, 1_000_000);
        assert_eq!(
            lookup.entry,
            Some(entry_for(&proxy, index, 0xBEEF)),
            "dirty write-back must preserve the entry"
        );
    }

    #[test]
    fn hot_sets_are_served_from_l2_after_first_touch() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(100, 7);
        // First touch goes to DRAM.
        proxy.lookup(index, &mut mem, 0);
        // Push the set out of the PVCache by touching many other sets.
        for i in 1..=proxy.config().pvcache_sets as u64 {
            proxy.lookup(index_for(100 + i, 7), &mut mem, i * 1000);
        }
        // The set is gone from the PVCache but still resident in the L2, so
        // re-fetching it is cheap (no DRAM access).
        let dram_before = mem.stats().dram_reads;
        let lookup = proxy.lookup(index, &mut mem, 1_000_000);
        assert!(
            lookup.ready_at - 1_000_000 < 100,
            "refetch should be an L2 hit"
        );
        assert_eq!(mem.stats().dram_reads, dram_before);
    }

    #[test]
    fn merged_requests_share_the_fill_and_its_completion_time() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(3, 0x11);
        let first = proxy.lookup(index, &mut mem, 0);
        assert!(first.ready_at >= 400, "cold fetch comes from DRAM");
        // Same set requested again before the first fetch completes: the
        // PVCache already has the set installed, so no second memory request
        // is issued — but the data is not available before the in-flight
        // fill completes, so the early hit reports the fill's ready time.
        let second = proxy.lookup(index, &mut mem, 1);
        assert_eq!(proxy.stats().memory_requests, 1);
        assert_eq!(
            second.ready_at, first.ready_at,
            "an early hit must wait for the in-flight fill"
        );
        assert_eq!(proxy.stats().pending_hits, 1);
        // Once the fill has completed, hits are PVCache-fast again.
        let later = proxy.lookup(index, &mut mem, first.ready_at + 10);
        assert_eq!(
            later.ready_at,
            first.ready_at + 10 + proxy.config().pvcache_latency
        );
    }

    #[test]
    fn lookup_after_l2_residency_is_l2_hit_level() {
        let (mut mem, mut proxy) = setup();
        let index = index_for(700, 0x15);
        let entry = entry_for(&proxy, index, 0x77);
        proxy.store(index, entry, &mut mem, 0);
        proxy.drain(&mut mem, 10);
        // After draining, the set's block lives in the L2.
        let (set_index, _) = proxy.split_index(index);
        let address = proxy.table().set_address(set_index);
        assert!(mem.l2_contains(address.block()));
        let response = mem.access(
            Requester::pv_proxy(0),
            address.raw(),
            AccessKind::Read,
            DataClass::Predictor,
            100,
        );
        assert_eq!(response.level, HitLevel::L2);
    }

    #[test]
    fn label_names_the_pvcache_size() {
        let (_, proxy) = setup();
        assert_eq!(proxy.label(), "PV-8");
        // RawEntry is wide (128 bits), so the budget differs from the SMS
        // instance's 889 bytes; the exact SMS figure is pinned in pv-sms.
        assert!(proxy.dedicated_storage_bytes() > 0);
    }

    #[test]
    fn per_core_tables_use_disjoint_address_ranges() {
        let config = HierarchyConfig::paper_baseline(4);
        let proxy0: PvProxy<RawEntry> =
            PvProxy::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        let proxy1: PvProxy<RawEntry> =
            PvProxy::new(1, PvConfig::pv8(), config.pv_regions.core_base(1));
        let last0 = proxy0.table().set_address(1023).raw() + 63;
        let first1 = proxy1.table().set_address(0).raw();
        assert!(last0 < first1);
    }
}
