//! Configuration of the virtualization substrate.

/// Configuration of one virtualized predictor table (PVTable geometry plus
/// PVProxy resources).
///
/// The configuration is *predictor-agnostic*: entry bit-widths — and with
/// them the per-block associativity of the table — are not part of it. They
/// come from the predictor's [`crate::PvEntry`] implementation, from which
/// the packed layout is derived (see [`crate::PvLayout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvConfig {
    /// Number of sets of the virtualized predictor table (1K in the paper).
    pub table_sets: usize,
    /// Memory-block size each PVTable set is packed into (64 bytes, the L1
    /// block size).
    pub block_bytes: u64,
    /// Number of PVTable sets the PVCache holds (8 in the final design; 16
    /// and 32 are evaluated in Figures 6 and 7).
    pub pvcache_sets: usize,
    /// PVProxy MSHR entries.
    pub mshr_entries: usize,
    /// Evict-buffer entries (dirty sets waiting to be written to the L2).
    pub evict_buffer_entries: usize,
    /// Pattern-buffer entries (engine requests waiting for their set to
    /// arrive).
    pub pattern_buffer_entries: usize,
    /// Lookup latency of the PVCache itself in cycles (it is tiny, so the
    /// paper argues it is faster than a large dedicated table).
    pub pvcache_latency: u64,
    /// Whether dirty predictor blocks evicted from the L2 are propagated
    /// off-chip (the paper's default) or dropped at the chip boundary (the
    /// design option of Section 2.2, evaluated as an ablation).
    pub propagate_offchip: bool,
}

impl PvConfig {
    /// The paper's final design: an 8-set PVCache in front of a 1K-set
    /// PVTable.
    pub fn pv8() -> Self {
        PvConfig {
            table_sets: 1024,
            block_bytes: 64,
            pvcache_sets: 8,
            mshr_entries: 4,
            evict_buffer_entries: 4,
            pattern_buffer_entries: 16,
            pvcache_latency: 1,
            propagate_offchip: true,
        }
    }

    /// The 16-set PVCache variant (PV-16 in Figures 6 and 7).
    pub fn pv16() -> Self {
        PvConfig {
            pvcache_sets: 16,
            ..Self::pv8()
        }
    }

    /// The 32-set PVCache variant discussed in Section 4.3.
    pub fn pv32() -> Self {
        PvConfig {
            pvcache_sets: 32,
            ..Self::pv8()
        }
    }

    /// A variant with a different number of PVCache sets.
    pub fn with_pvcache_sets(mut self, sets: usize) -> Self {
        self.pvcache_sets = sets;
        self
    }

    /// A variant that drops dirty predictor blocks at the chip boundary
    /// instead of writing them back to memory (Section 2.2 design option).
    pub fn without_offchip_propagation(mut self) -> Self {
        self.propagate_offchip = false;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes or sets not a
    /// power of two). Entry-width validity is checked when a layout is
    /// derived (see [`crate::PvLayout::new`]).
    pub fn assert_valid(&self) {
        assert!(
            self.table_sets > 0 && self.table_sets.is_power_of_two(),
            "table_sets must be a power of two"
        );
        assert!(self.block_bytes > 0, "block_bytes must be positive");
        assert!(self.pvcache_sets > 0, "pvcache_sets must be positive");
        assert!(self.mshr_entries > 0, "mshr_entries must be positive");
        assert!(
            self.evict_buffer_entries > 0,
            "evict_buffer_entries must be positive"
        );
        assert!(
            self.pattern_buffer_entries > 0,
            "pattern_buffer_entries must be positive"
        );
    }

    /// Bytes of main memory reserved per core for the PVTable
    /// (sets × block size; 64 KB for the paper configuration).
    pub fn table_bytes(&self) -> u64 {
        self.table_sets as u64 * self.block_bytes
    }

    /// Number of tag bits identifying a PVTable set held in the PVCache
    /// (log2 of the number of table sets).
    pub fn pvcache_tag_bits(&self) -> u32 {
        self.table_sets.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_are_valid() {
        PvConfig::pv8().assert_valid();
        PvConfig::pv16().assert_valid();
        PvConfig::pv32().assert_valid();
    }

    #[test]
    fn pv8_matches_paper_geometry() {
        let config = PvConfig::pv8();
        assert_eq!(config.table_sets, 1024);
        assert_eq!(config.block_bytes, 64);
        assert_eq!(config.table_bytes(), 64 * 1024);
        assert_eq!(config.pvcache_tag_bits(), 10);
    }

    #[test]
    fn builder_variants_apply() {
        assert_eq!(PvConfig::pv8().with_pvcache_sets(32).pvcache_sets, 32);
        assert!(!PvConfig::pv8().without_offchip_propagation().propagate_offchip);
        assert_eq!(PvConfig::pv16().pvcache_sets, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        let mut config = PvConfig::pv8();
        config.table_sets = 1000;
        config.assert_valid();
    }
}
