//! The PVProxy's small side buffers: the pattern buffer and the evict
//! buffer.
//!
//! Both are structural-capacity models: in the cycle-approximate simulation
//! a PVCache miss resolves with a known completion time, so these buffers do
//! not queue work, but they bound how many requests can be outstanding at
//! once (occupancy is tracked against `now`) and their capacities feed the
//! Section 4.6 storage accounting.

/// A pending operation occupying a buffer slot until `done_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    id: u64,
    done_at: u64,
}

#[derive(Debug, Clone, Default)]
struct BoundedBuffer {
    capacity: usize,
    pending: Vec<Pending>,
    overflows: u64,
    peak: usize,
}

impl BoundedBuffer {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BoundedBuffer {
            capacity,
            pending: Vec::new(),
            overflows: 0,
            peak: 0,
        }
    }

    fn retire(&mut self, now: u64) {
        self.pending.retain(|p| p.done_at > now);
    }

    fn try_push(&mut self, id: u64, now: u64, done_at: u64) -> bool {
        self.retire(now);
        if self.pending.len() >= self.capacity {
            self.overflows += 1;
            return false;
        }
        self.pending.push(Pending { id, done_at });
        self.peak = self.peak.max(self.pending.len());
        true
    }

    fn occupancy(&self) -> usize {
        self.pending.len()
    }
}

/// The pattern buffer: holds the trigger information of PHT lookups whose
/// PVTable set is still being fetched from the memory hierarchy (16 entries
/// in the paper, 4 bytes each).
#[derive(Debug, Clone)]
pub struct PatternBuffer {
    inner: BoundedBuffer,
}

impl PatternBuffer {
    /// Creates a pattern buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        PatternBuffer {
            inner: BoundedBuffer::new(capacity),
        }
    }

    /// Tries to reserve a slot for the lookup of table index `index`, which
    /// completes at `done_at`. Returns `false` (and counts an overflow) when
    /// the buffer is full — the prediction is dropped, not queued, mirroring
    /// the advisory nature of the predictor.
    pub fn try_reserve(&mut self, index: u64, now: u64, done_at: u64) -> bool {
        self.inner.try_push(index, now, done_at)
    }

    /// Lookups dropped because the buffer was full.
    pub fn overflows(&self) -> u64 {
        self.inner.overflows
    }

    /// Current occupancy (after retiring completed entries would require a
    /// `now`; this is the raw count).
    pub fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    /// Peak occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.inner.peak
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// The evict buffer: holds dirty PVTable sets on their way to the L2 (4
/// entries of one 64-byte block each in the paper).
#[derive(Debug, Clone)]
pub struct EvictBuffer {
    inner: BoundedBuffer,
    forced_stalls: u64,
}

impl EvictBuffer {
    /// Creates an evict buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        EvictBuffer {
            inner: BoundedBuffer::new(capacity),
            forced_stalls: 0,
        }
    }

    /// Registers a dirty write-back of PVTable set `set_index` that drains
    /// at `done_at`. When the buffer is full the write-back still happens
    /// (correctness requires it) but a stall is recorded.
    pub fn push(&mut self, set_index: usize, now: u64, done_at: u64) {
        if !self.inner.try_push(set_index as u64, now, done_at) {
            self.forced_stalls += 1;
        }
    }

    /// Write-backs that found the buffer full.
    pub fn forced_stalls(&self) -> u64 {
        self.forced_stalls
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    /// Peak occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.inner.peak
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_buffer_accepts_until_full() {
        let mut buffer = PatternBuffer::new(2);
        assert!(buffer.try_reserve(1, 0, 100));
        assert!(buffer.try_reserve(2, 0, 100));
        assert!(!buffer.try_reserve(3, 0, 100));
        assert_eq!(buffer.overflows(), 1);
        assert_eq!(buffer.peak_occupancy(), 2);
    }

    #[test]
    fn pattern_buffer_frees_completed_slots() {
        let mut buffer = PatternBuffer::new(1);
        assert!(buffer.try_reserve(1, 0, 50));
        // At cycle 100 the first lookup has completed; the slot is free.
        assert!(buffer.try_reserve(2, 100, 150));
        assert_eq!(buffer.overflows(), 0);
    }

    #[test]
    fn evict_buffer_counts_stalls_but_never_drops() {
        let mut buffer = EvictBuffer::new(1);
        buffer.push(1, 0, 100);
        buffer.push(2, 0, 100);
        assert_eq!(buffer.forced_stalls(), 1);
        assert_eq!(buffer.capacity(), 1);
    }

    #[test]
    fn occupancy_reflects_outstanding_entries() {
        let mut buffer = EvictBuffer::new(4);
        buffer.push(1, 0, 10);
        buffer.push(2, 0, 20);
        assert_eq!(buffer.occupancy(), 2);
        buffer.push(3, 30, 40); // retires both earlier entries
        assert_eq!(buffer.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_panics() {
        PatternBuffer::new(0);
    }
}
