//! The `PVStart` control register.

use pv_mem::Address;

/// The per-core control register holding the base physical address of the
/// core's in-memory PVTable.
///
/// In the paper's design the register is set at boot to point into a
/// reserved chunk of physical memory and is *not* part of the architectural
/// state (the predictor table is shared by everything running on the core).
/// Making it architectural — saved and restored on context switches — would
/// give each process its own predictor table; [`PvStartRegister::swap`]
/// models that operation for the process-private-table extension discussed
/// in Section 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvStartRegister {
    base: Address,
}

impl PvStartRegister {
    /// Creates a register pointing at `base`.
    pub fn new(base: Address) -> Self {
        PvStartRegister { base }
    }

    /// The PVTable base address.
    pub fn base(&self) -> Address {
        self.base
    }

    /// The memory address of PVTable set `set_index` when each set occupies
    /// `block_bytes` bytes: the Figure 3b computation (set index shifted by
    /// the block size, added to the start address).
    pub fn set_address(&self, set_index: usize, block_bytes: u64) -> Address {
        Address::new(self.base.raw() + set_index as u64 * block_bytes)
    }

    /// Replaces the base address, returning the previous one (models a
    /// context switch with per-process predictor tables).
    pub fn swap(&mut self, new_base: Address) -> Address {
        std::mem::replace(&mut self.base, new_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_addresses_are_contiguous_blocks() {
        let reg = PvStartRegister::new(Address::new(0x1000));
        assert_eq!(reg.set_address(0, 64), Address::new(0x1000));
        assert_eq!(reg.set_address(1, 64), Address::new(0x1040));
        assert_eq!(reg.set_address(1023, 64), Address::new(0x1000 + 1023 * 64));
    }

    #[test]
    fn swap_returns_previous_base() {
        let mut reg = PvStartRegister::new(Address::new(0x1000));
        let old = reg.swap(Address::new(0x8000));
        assert_eq!(old, Address::new(0x1000));
        assert_eq!(reg.base(), Address::new(0x8000));
    }
}
