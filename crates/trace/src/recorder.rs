//! Recording: capture the records a simulation actually consumes.
//!
//! Two ways to produce a trace:
//!
//! * [`record_stream`] / [`record_generator`] pull a fixed number of records
//!   from a source and encode them directly — the simple path when you know
//!   the workload and length up front. Because the simulator consumes
//!   exactly `warmup + measure` records per core and per-core streams are
//!   interleaving-independent, recording that many records from the same
//!   `(params, seed, core)` captures precisely what a live run would see.
//! * [`TeeStream`] wraps any [`AccessStream`] and encodes every record that
//!   passes through it, so a trace can be captured *while* the simulator
//!   runs. The encoded bytes live behind a shared [`TeeHandle`] because the
//!   simulator takes ownership of the stream; the handle stays with the
//!   caller and yields the finished trace after the run. The handle pair is
//!   `Arc<Mutex<_>>`-backed (not `Rc<RefCell<_>>`) so a teed stream remains
//!   a valid — `Send` — simulator stream; the lock is uncontended in
//!   practice because the tee and the handle are used from one thread at a
//!   time (during and after the run, respectively).

use std::sync::{Arc, Mutex};

use crate::format::{Provenance, TraceError, TraceWriter};
use pv_workloads::{AccessStream, TraceGenerator, TraceRecord, WorkloadParams};

/// Pulls up to `records` records from `stream` and encodes them with the
/// default layout.
///
/// # Errors
///
/// Returns [`TraceError::FieldOverflow`] if the stream produces a record
/// outside the default layout's field widths (48-bit PC/address).
pub fn record_stream<S: AccessStream>(
    stream: &mut S,
    records: u64,
    provenance: Provenance,
) -> Result<Vec<u8>, TraceError> {
    let mut writer = TraceWriter::new(provenance);
    for _ in 0..records {
        match stream.next_record() {
            Some(record) => writer.push(&record)?,
            None => break,
        }
    }
    Ok(writer.finish())
}

/// Records `records` records of the deterministic generator stream for
/// `(params, seed, core)` — the stream a live run's core `core` would
/// consume — stamping the provenance into the header.
///
/// # Errors
///
/// Returns [`TraceError::FieldOverflow`] if a generated record does not fit
/// the default layout (cannot happen for the paper workloads, whose
/// addresses stay below 2^48).
pub fn record_generator(
    params: &WorkloadParams,
    seed: u64,
    core: u32,
    records: u64,
) -> Result<Vec<u8>, TraceError> {
    let mut generator = TraceGenerator::new(params, seed, core as usize);
    record_stream(&mut generator, records, Provenance { core, seed })
}

/// Shared handle to a tee's encoder; yields the trace after the wrapped
/// stream has been consumed (typically by a simulation run that took
/// ownership of the [`TeeStream`]).
#[derive(Debug, Clone)]
pub struct TeeHandle {
    writer: Arc<Mutex<Option<TraceWriter>>>,
}

impl TeeHandle {
    /// Records encoded so far.
    pub fn records(&self) -> u64 {
        self.writer
            .lock()
            .expect("tee writer lock poisoned")
            .as_ref()
            .map_or(0, TraceWriter::records)
    }

    /// Finalizes the trace and returns its bytes. Call after the run that
    /// consumed the tee has completed.
    ///
    /// # Panics
    ///
    /// Panics if called twice — the encoder is consumed by finishing.
    pub fn finish(&self) -> Vec<u8> {
        self.writer
            .lock()
            .expect("tee writer lock poisoned")
            .take()
            .expect("a tee handle can only be finished once")
            .finish()
    }
}

/// An [`AccessStream`] adaptor that encodes every record it forwards.
///
/// The tee is transparent: the wrapped stream's records and label pass
/// through unchanged, so teeing a run does not perturb it. Records whose
/// fields exceed the default layout panic rather than silently corrupting
/// the trace — the generators never produce such records.
#[derive(Debug)]
pub struct TeeStream<S> {
    inner: S,
    writer: Arc<Mutex<Option<TraceWriter>>>,
}

impl<S: AccessStream> TeeStream<S> {
    /// Wraps `inner`, returning the tee and the handle that will yield the
    /// encoded trace once the tee has been consumed.
    pub fn new(inner: S, provenance: Provenance) -> (TeeStream<S>, TeeHandle) {
        let writer = Arc::new(Mutex::new(Some(TraceWriter::new(provenance))));
        let handle = TeeHandle {
            writer: Arc::clone(&writer),
        };
        (TeeStream { inner, writer }, handle)
    }
}

impl<S: AccessStream> AccessStream for TeeStream<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let record = self.inner.next_record()?;
        self.writer
            .lock()
            .expect("tee writer lock poisoned")
            .as_mut()
            .expect("tee must not be used after its handle finished")
            .push(&record)
            .expect("generated records fit the default trace layout");
        Some(record)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayStream;
    use pv_workloads::workloads;

    #[test]
    fn record_generator_matches_the_live_stream() {
        let params = workloads::qry17();
        let bytes = record_generator(&params, 0x5EED, 1, 200).expect("records fit");
        let replay = ReplayStream::new(bytes).expect("valid trace");
        assert_eq!(replay.header().provenance.seed, 0x5EED);
        assert_eq!(replay.header().provenance.core, 1);
        let direct: Vec<_> = TraceGenerator::new(&params, 0x5EED, 1).take(200).collect();
        let replayed: Vec<_> = replay.collect();
        assert_eq!(replayed, direct);
    }

    #[test]
    fn tee_is_transparent_and_captures_everything() {
        let params = workloads::apache();
        let generator = TraceGenerator::new(&params, 11, 0);
        let (mut tee, handle) = TeeStream::new(generator, Provenance { core: 0, seed: 11 });
        assert_eq!(tee.label(), "Apache");
        let seen: Vec<_> = (0..150).map(|_| tee.next_record().unwrap()).collect();
        assert_eq!(handle.records(), 150);
        let replayed: Vec<_> = ReplayStream::new(handle.finish()).expect("valid trace").collect();
        assert_eq!(replayed, seen);
        let direct: Vec<_> = TraceGenerator::new(&params, 11, 0).take(150).collect();
        assert_eq!(replayed, direct, "tee must not perturb the stream");
    }

    #[test]
    fn record_stream_stops_at_source_exhaustion() {
        let params = workloads::zeus();
        let short = record_generator(&params, 3, 0, 10).expect("records fit");
        let mut replay = ReplayStream::new(short).expect("valid trace");
        let bytes = record_stream(&mut replay, 1_000, Provenance::default()).expect("records fit");
        let rerecorded = ReplayStream::new(bytes).expect("valid trace");
        assert_eq!(rerecorded.records(), 10, "source ended after 10 records");
    }
}
