//! The on-disk trace format: a fixed header followed by 64-byte blocks of
//! bit-packed records.
//!
//! The layout reuses the paper's Figure 3a word-window packing idiom that
//! `pv_core::packing` productized for PVTable sets: records are packed back
//! to back into cache-block-sized frames with `write_bits`/`read_bits`
//! (single 128-bit window shift/masks, no per-bit loops), and any bits left
//! over at the end of a block form an unused trailer. With the default
//! widths (48-bit PC, 48-bit address, 2-bit op, 14-bit instruction count =
//! 112 bits) each 64-byte block carries four records with a 64-bit trailer —
//! 16 bytes per record against the 24 an in-memory [`TraceRecord`] occupies.
//!
//! The header is versioned and self-describing (field widths, block size,
//! record count, provenance); readers reject unknown magics and versions so
//! the format cannot drift silently.

use pv_core::packing::{read_bits, write_bits};
use pv_workloads::{MemOp, TraceRecord};

/// File magic, first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"PVTR";
/// Current format version. Readers reject anything else.
pub const VERSION: u16 = 1;
/// Header size in bytes; record blocks start immediately after.
pub const HEADER_BYTES: usize = 32;
/// Size of one record frame — a cache block, as in Figure 3a.
pub const BLOCK_BYTES: usize = 64;

/// Bits used to encode [`MemOp`].
const OP_BITS: u32 = 2;

/// Errors produced while encoding or decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header names a version this reader does not understand.
    UnsupportedVersion(u16),
    /// The buffer is shorter than its header claims.
    Truncated {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The header's field widths or block size are out of range.
    BadLayout(String),
    /// A record field does not fit the layout's width.
    FieldOverflow {
        /// Field name (`"pc"`, `"address"`, `"non_mem_instructions"`).
        field: &'static str,
        /// The value that did not fit.
        value: u64,
        /// The layout's width for that field.
        bits: u32,
    },
    /// A decoded op code is not a valid [`MemOp`].
    BadOp(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic(magic) => write!(f, "bad trace magic {magic:?}"),
            TraceError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported trace version {version} (expected {VERSION})"
                )
            }
            TraceError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated trace: header implies {expected} bytes, got {actual}"
                )
            }
            TraceError::BadLayout(message) => write!(f, "bad trace layout: {message}"),
            TraceError::FieldOverflow { field, value, bits } => {
                write!(f, "record field {field}={value:#x} exceeds {bits} bits")
            }
            TraceError::BadOp(op) => write!(f, "invalid op code {op}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Field widths of one trace file. Together with the fixed 2-bit op they
/// define the per-record bit budget and therefore how many records pack
/// into each 64-byte block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceLayout {
    /// Bits of the program counter field.
    pub pc_bits: u32,
    /// Bits of the byte-address field.
    pub addr_bits: u32,
    /// Bits of the non-memory-instruction count field.
    pub imm_bits: u32,
}

impl TraceLayout {
    /// The default layout: 48-bit PC and address cover the simulator's
    /// 3 GB physical space with per-core strides many times over; 14 bits
    /// of instruction count dwarf any generator's `instr_per_mem`.
    pub const DEFAULT: TraceLayout = TraceLayout {
        pc_bits: 48,
        addr_bits: 48,
        imm_bits: 14,
    };

    /// Validates the widths: every field in `1..=64` (the codec's word
    /// limit, 32 for the count field which decodes into a `u32`), and at
    /// least one record per block.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadLayout`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (name, bits, max) in [
            ("pc_bits", self.pc_bits, 64u32),
            ("addr_bits", self.addr_bits, 64),
            ("imm_bits", self.imm_bits, 32),
        ] {
            if bits == 0 || bits > max {
                return Err(TraceError::BadLayout(format!(
                    "{name} must be in 1..={max}, got {bits}"
                )));
            }
        }
        if self.records_per_block() == 0 {
            return Err(TraceError::BadLayout(format!(
                "{}-bit records do not fit a {BLOCK_BYTES}-byte block",
                self.record_bits()
            )));
        }
        Ok(())
    }

    /// Bits one packed record occupies.
    pub fn record_bits(&self) -> u32 {
        self.pc_bits + self.addr_bits + OP_BITS + self.imm_bits
    }

    /// Records per 64-byte block (the remainder is the unused trailer).
    pub fn records_per_block(&self) -> usize {
        (BLOCK_BYTES * 8) / self.record_bits() as usize
    }

    /// Encoded size in bytes of a trace holding `records` records
    /// (header plus full and partial blocks).
    pub fn encoded_bytes(&self, records: u64) -> usize {
        let per_block = self.records_per_block() as u64;
        let blocks = records.div_ceil(per_block);
        HEADER_BYTES + blocks as usize * BLOCK_BYTES
    }

    /// Packs `record` into `block` at slot `slot`.
    fn pack(&self, block: &mut [u8], slot: usize, record: &TraceRecord) -> Result<(), TraceError> {
        let check = |field: &'static str, value: u64, bits: u32| {
            if bits < 64 && value >> bits != 0 {
                Err(TraceError::FieldOverflow { field, value, bits })
            } else {
                Ok(())
            }
        };
        check("pc", record.pc, self.pc_bits)?;
        check("address", record.address, self.addr_bits)?;
        check(
            "non_mem_instructions",
            u64::from(record.non_mem_instructions),
            self.imm_bits,
        )?;
        let mut offset = slot * self.record_bits() as usize;
        let mut put = |value: u64, bits: u32| {
            write_bits(block, offset, value, bits);
            offset += bits as usize;
        };
        put(record.pc, self.pc_bits);
        put(record.address, self.addr_bits);
        put(encode_op(record.op), OP_BITS);
        put(u64::from(record.non_mem_instructions), self.imm_bits);
        Ok(())
    }

    /// Unpacks the record at slot `slot` of `block`.
    fn unpack(&self, block: &[u8], slot: usize) -> Result<TraceRecord, TraceError> {
        let mut offset = slot * self.record_bits() as usize;
        let mut take = |bits: u32| {
            let value = read_bits(block, offset, bits);
            offset += bits as usize;
            value
        };
        let pc = take(self.pc_bits);
        let address = take(self.addr_bits);
        let op = decode_op(take(OP_BITS) as u8)?;
        let non_mem_instructions = take(self.imm_bits) as u32;
        Ok(TraceRecord {
            pc,
            address,
            op,
            non_mem_instructions,
        })
    }
}

fn encode_op(op: MemOp) -> u64 {
    match op {
        MemOp::Load => 0,
        MemOp::Store => 1,
        MemOp::InstructionFetch => 2,
    }
}

fn decode_op(code: u8) -> Result<MemOp, TraceError> {
    match code {
        0 => Ok(MemOp::Load),
        1 => Ok(MemOp::Store),
        2 => Ok(MemOp::InstructionFetch),
        other => Err(TraceError::BadOp(other)),
    }
}

/// Provenance recorded in the header: which `(seed, core)` pair produced
/// the stream (zeroes when unknown — e.g. a trace recorded from a scenario
/// composition rather than a single generator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// Core index the stream belonged to.
    pub core: u32,
    /// Generator seed of the run.
    pub seed: u64,
}

/// The parsed header of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (always [`VERSION`] after a successful parse).
    pub version: u16,
    /// Field widths.
    pub layout: TraceLayout,
    /// Number of records in the body.
    pub records: u64,
    /// Recording provenance.
    pub provenance: Provenance,
}

impl TraceHeader {
    /// Serializes the header into its 32-byte wire form.
    fn to_bytes(self) -> [u8; HEADER_BYTES] {
        let mut bytes = [0u8; HEADER_BYTES];
        bytes[0..4].copy_from_slice(&MAGIC);
        bytes[4..6].copy_from_slice(&self.version.to_le_bytes());
        bytes[6] = self.layout.pc_bits as u8;
        bytes[7] = self.layout.addr_bits as u8;
        bytes[8] = self.layout.imm_bits as u8;
        // byte 9 reserved (zero)
        bytes[10..12].copy_from_slice(&(BLOCK_BYTES as u16).to_le_bytes());
        bytes[12..20].copy_from_slice(&self.records.to_le_bytes());
        bytes[20..24].copy_from_slice(&self.provenance.core.to_le_bytes());
        bytes[24..32].copy_from_slice(&self.provenance.seed.to_le_bytes());
        bytes
    }

    /// Parses and validates a header from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceError`] describing the first problem found: bad
    /// magic, unknown version, malformed layout, or truncation.
    pub fn parse(data: &[u8]) -> Result<TraceHeader, TraceError> {
        if data.len() < HEADER_BYTES {
            return Err(TraceError::Truncated {
                expected: HEADER_BYTES,
                actual: data.len(),
            });
        }
        let magic: [u8; 4] = data[0..4].try_into().expect("slice is four bytes");
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("two bytes"));
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let layout = TraceLayout {
            pc_bits: u32::from(data[6]),
            addr_bits: u32::from(data[7]),
            imm_bits: u32::from(data[8]),
        };
        layout.validate()?;
        let block_bytes = u16::from_le_bytes(data[10..12].try_into().expect("two bytes"));
        if usize::from(block_bytes) != BLOCK_BYTES {
            return Err(TraceError::BadLayout(format!(
                "unsupported block size {block_bytes} (expected {BLOCK_BYTES})"
            )));
        }
        let records = u64::from_le_bytes(data[12..20].try_into().expect("eight bytes"));
        let provenance = Provenance {
            core: u32::from_le_bytes(data[20..24].try_into().expect("four bytes")),
            seed: u64::from_le_bytes(data[24..32].try_into().expect("eight bytes")),
        };
        let header = TraceHeader {
            version,
            layout,
            records,
            provenance,
        };
        let expected = layout.encoded_bytes(records);
        if data.len() < expected {
            return Err(TraceError::Truncated {
                expected,
                actual: data.len(),
            });
        }
        Ok(header)
    }
}

/// Incremental encoder: push records, take the finished byte buffer.
///
/// Records accumulate into a 64-byte staging block that is appended to the
/// output whenever it fills; `finish` flushes the partial tail block and
/// patches the record count into the header. The writer owns a plain
/// `Vec<u8>` — callers persist it with one `std::fs::write`.
#[derive(Debug)]
pub struct TraceWriter {
    layout: TraceLayout,
    out: Vec<u8>,
    block: [u8; BLOCK_BYTES],
    in_block: usize,
    records: u64,
}

impl TraceWriter {
    /// Creates a writer with the default layout.
    pub fn new(provenance: Provenance) -> Self {
        Self::with_layout(TraceLayout::DEFAULT, provenance)
    }

    /// Creates a writer with an explicit layout.
    ///
    /// # Panics
    ///
    /// Panics if `layout` fails validation — layouts are chosen by code,
    /// not parsed from untrusted input.
    pub fn with_layout(layout: TraceLayout, provenance: Provenance) -> Self {
        layout.validate().expect("trace layout must be valid");
        let header = TraceHeader {
            version: VERSION,
            layout,
            records: 0,
            provenance,
        };
        TraceWriter {
            layout,
            out: header.to_bytes().to_vec(),
            block: [0u8; BLOCK_BYTES],
            in_block: 0,
            records: 0,
        }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::FieldOverflow`] when a field exceeds the
    /// layout's width; the writer state is unchanged in that case.
    pub fn push(&mut self, record: &TraceRecord) -> Result<(), TraceError> {
        self.layout.pack(&mut self.block, self.in_block, record)?;
        self.in_block += 1;
        self.records += 1;
        if self.in_block == self.layout.records_per_block() {
            self.out.extend_from_slice(&self.block);
            self.block = [0u8; BLOCK_BYTES];
            self.in_block = 0;
        }
        Ok(())
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes the partial tail block, patches the header's record count,
    /// and returns the finished buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.in_block > 0 {
            self.out.extend_from_slice(&self.block);
        }
        self.out[12..20].copy_from_slice(&self.records.to_le_bytes());
        self.out
    }
}

/// Encodes a slice of records with the default layout in one call.
pub fn encode_records(records: &[TraceRecord], provenance: Provenance) -> Vec<u8> {
    encode_records_with_layout(records, TraceLayout::DEFAULT, provenance)
}

/// Encodes a slice of records with an explicit layout in one call.
///
/// # Panics
///
/// Panics if the layout is invalid or a record field does not fit it —
/// batch encoding is used with layouts known to cover the input.
pub fn encode_records_with_layout(
    records: &[TraceRecord],
    layout: TraceLayout,
    provenance: Provenance,
) -> Vec<u8> {
    let mut writer = TraceWriter::with_layout(layout, provenance);
    for record in records {
        writer.push(record).expect("record must fit the chosen layout");
    }
    writer.finish()
}

/// Decodes the record at `index` of a parsed trace. Shared by the replay
/// stream and the random-access tests.
pub(crate) fn decode_at(
    data: &[u8],
    layout: &TraceLayout,
    index: u64,
) -> Result<TraceRecord, TraceError> {
    let per_block = layout.records_per_block() as u64;
    let block_start = HEADER_BYTES + (index / per_block) as usize * BLOCK_BYTES;
    let block = &data[block_start..block_start + BLOCK_BYTES];
    layout.unpack(block, (index % per_block) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::load(0x1000_0040, 0x1800_0123, 3),
            TraceRecord::store(0x1000_0044, 0x1800_4567, 0),
            TraceRecord::fetch(0x1000_0080, 0x1000_0080),
            TraceRecord::load(0xFFFF_FFFF_FFFF, 0xFFFF_FFFF_FFFF, (1 << 14) - 1),
            TraceRecord::load(0, 0, 0),
        ]
    }

    #[test]
    fn default_layout_packs_four_records_per_block() {
        let layout = TraceLayout::DEFAULT;
        layout.validate().expect("default layout is valid");
        assert_eq!(layout.record_bits(), 112);
        assert_eq!(layout.records_per_block(), 4);
        assert_eq!(layout.encoded_bytes(0), HEADER_BYTES);
        assert_eq!(layout.encoded_bytes(4), HEADER_BYTES + BLOCK_BYTES);
        assert_eq!(layout.encoded_bytes(5), HEADER_BYTES + 2 * BLOCK_BYTES);
    }

    #[test]
    fn header_round_trips() {
        let header = TraceHeader {
            version: VERSION,
            layout: TraceLayout::DEFAULT,
            records: 12345,
            provenance: Provenance {
                core: 3,
                seed: 0x5EED_0001,
            },
        };
        let parsed = TraceHeader::parse(&{
            // Pad to the implied size so the length check passes.
            let mut bytes = header.to_bytes().to_vec();
            bytes.resize(header.layout.encoded_bytes(header.records), 0);
            bytes
        })
        .expect("header parses");
        assert_eq!(parsed, header);
    }

    #[test]
    fn records_round_trip_through_writer_and_decode() {
        let records = sample_records();
        let bytes = encode_records(&records, Provenance::default());
        let header = TraceHeader::parse(&bytes).expect("valid trace");
        assert_eq!(header.records, records.len() as u64);
        for (i, expected) in records.iter().enumerate() {
            let decoded = decode_at(&bytes, &header.layout, i as u64).expect("decodes");
            assert_eq!(decoded, *expected, "record {i}");
        }
    }

    #[test]
    fn trailer_bits_stay_zero() {
        // 4 x 112 = 448 bits used; bits 448..512 of every block are unused.
        let records = sample_records();
        let bytes = encode_records(&records, Provenance::default());
        for block in bytes[HEADER_BYTES..].chunks(BLOCK_BYTES) {
            assert_eq!(&block[56..64], &[0u8; 8], "trailer must stay zero");
        }
    }

    #[test]
    fn field_overflow_is_rejected_not_truncated() {
        let mut writer = TraceWriter::new(Provenance::default());
        let record = TraceRecord::load(1 << 48, 0, 0);
        assert_eq!(
            writer.push(&record),
            Err(TraceError::FieldOverflow {
                field: "pc",
                value: 1 << 48,
                bits: 48,
            })
        );
        assert_eq!(writer.records(), 0, "a rejected record must not count");
    }

    #[test]
    fn bad_magic_and_versions_are_rejected() {
        let bytes = encode_records(&sample_records(), Provenance::default());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            TraceHeader::parse(&bad_magic),
            Err(TraceError::BadMagic(_))
        ));
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert_eq!(
            TraceHeader::parse(&future),
            Err(TraceError::UnsupportedVersion(2))
        );
        assert!(matches!(
            TraceHeader::parse(&bytes[..bytes.len() - 1]),
            Err(TraceError::Truncated { .. })
        ));
        assert!(TraceHeader::parse(&[]).is_err());
    }

    #[test]
    fn wide_records_are_rejected_by_layout_validation() {
        let layout = TraceLayout {
            pc_bits: 64,
            addr_bits: 64,
            imm_bits: 32,
        };
        // 162-bit records still fit (3 per block), so that layout is fine...
        layout.validate().expect("162-bit records pack 3 per block");
        // ...but a zero-width field is not.
        let zero = TraceLayout {
            pc_bits: 0,
            ..TraceLayout::DEFAULT
        };
        assert!(matches!(zero.validate(), Err(TraceError::BadLayout(_))));
    }

    #[test]
    fn errors_render_for_humans() {
        let error = TraceError::UnsupportedVersion(9);
        assert!(error.to_string().contains("version 9"));
        let overflow = TraceError::FieldOverflow {
            field: "address",
            value: 0x1_0000,
            bits: 8,
        };
        assert!(overflow.to_string().contains("address"));
    }
}
