//! Streaming decoder that replays a recorded trace as an [`AccessStream`].
//!
//! Decoding is allocation-free after construction: the stream borrows no
//! intermediate buffers and unpacks each record directly from the trace
//! bytes with `pv_core::packing::read_bits` (the same 128-bit window the
//! encoder used). The header is validated up front — bad magic, unknown
//! versions, malformed layouts, and truncated bodies are all rejected
//! before the first record is produced — so the hot path contains no
//! error handling at all.

use crate::format::{decode_at, TraceError, TraceHeader};
use pv_workloads::{AccessStream, TraceRecord};

/// Replays the records of an encoded trace, in order, then ends.
///
/// Implements both [`AccessStream`] (for feeding the simulator) and
/// [`Iterator`] (for tests and tools). The stream is finite: after
/// `records()` items it returns `None` forever, which the simulator turns
/// into a clean end-of-run for the owning core.
#[derive(Debug)]
pub struct ReplayStream {
    data: Vec<u8>,
    header: TraceHeader,
    next: u64,
    label: String,
}

impl ReplayStream {
    /// Parses and validates `data`, returning a stream positioned at the
    /// first record.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceError`] from header validation: bad magic,
    /// unsupported version, malformed layout, or a body shorter than the
    /// record count implies.
    pub fn new(data: Vec<u8>) -> Result<ReplayStream, TraceError> {
        let header = TraceHeader::parse(&data)?;
        let label = format!(
            "replay:core{}:seed{:#x}",
            header.provenance.core, header.provenance.seed
        );
        Ok(ReplayStream {
            data,
            header,
            next: 0,
            label,
        })
    }

    /// The validated header of the underlying trace.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Total records in the trace.
    pub fn records(&self) -> u64 {
        self.header.records
    }

    /// Records not yet produced.
    pub fn remaining(&self) -> u64 {
        self.header.records - self.next
    }
}

impl AccessStream for ReplayStream {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.next >= self.header.records {
            return None;
        }
        let record = decode_at(&self.data, &self.header.layout, self.next)
            .expect("body was validated against the header at construction");
        self.next += 1;
        Some(record)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl Iterator for ReplayStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = usize::try_from(self.remaining()).expect("trace fits in memory");
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_records, Provenance, VERSION};
    use pv_workloads::{workloads, TraceGenerator};

    #[test]
    fn replay_reproduces_the_generator_stream() {
        let params = workloads::oracle();
        let records: Vec<_> = TraceGenerator::new(&params, 99, 2).take(500).collect();
        let bytes = encode_records(&records, Provenance { core: 2, seed: 99 });
        let replay = ReplayStream::new(bytes).expect("valid trace");
        assert_eq!(replay.records(), 500);
        let replayed: Vec<_> = replay.collect();
        assert_eq!(replayed, records);
    }

    #[test]
    fn replay_ends_and_stays_ended() {
        let records: Vec<_> = TraceGenerator::new(&workloads::qry1(), 1, 0).take(3).collect();
        let bytes = encode_records(&records, Provenance::default());
        let mut replay = ReplayStream::new(bytes).expect("valid trace");
        for _ in 0..3 {
            assert!(replay.next_record().is_some());
        }
        assert_eq!(replay.remaining(), 0);
        assert!(replay.next_record().is_none());
        assert!(replay.next_record().is_none(), "exhaustion is sticky");
    }

    #[test]
    fn label_names_the_provenance() {
        let bytes = encode_records(
            &[],
            Provenance {
                core: 1,
                seed: 0xABC,
            },
        );
        let replay = ReplayStream::new(bytes).expect("valid trace");
        assert_eq!(replay.label(), "replay:core1:seed0xabc");
        assert_eq!(replay.header().version, VERSION);
    }

    #[test]
    fn corrupted_traces_are_rejected_at_construction() {
        let records: Vec<_> = TraceGenerator::new(&workloads::zeus(), 5, 1).take(10).collect();
        let bytes = encode_records(&records, Provenance::default());
        let mut future = bytes.clone();
        future[4] = 7;
        assert_eq!(
            ReplayStream::new(future).unwrap_err(),
            TraceError::UnsupportedVersion(7)
        );
        let truncated = bytes[..bytes.len() - 8].to_vec();
        assert!(matches!(
            ReplayStream::new(truncated).unwrap_err(),
            TraceError::Truncated { .. }
        ));
    }

    #[test]
    fn size_hint_tracks_consumption() {
        let records: Vec<_> = TraceGenerator::new(&workloads::db2(), 5, 1).take(8).collect();
        let bytes = encode_records(&records, Provenance::default());
        let mut replay = ReplayStream::new(bytes).expect("valid trace");
        assert_eq!(replay.size_hint(), (8, Some(8)));
        replay.next();
        assert_eq!(replay.size_hint(), (7, Some(7)));
    }
}
