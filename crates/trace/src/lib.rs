//! # pv-trace — trace record/replay and non-stationary scenarios
//!
//! Two halves, one seam. The seam is [`pv_workloads::AccessStream`]: the
//! simulator consumes records through it without knowing whether they come
//! from a live synthetic generator, a recorded trace, or a scenario
//! composition.
//!
//! **Record/replay** ([`mod@format`], [`recorder`],
//! [`replay`]): a compact binary per-core trace format that bit-packs
//! `TraceRecord {pc, address, op, non_mem_instructions}` with the same
//! `pv_core::packing` word-window codec the PV tables use (the paper's
//! Fig. 3a idiom) — 14 bytes per record at the default 48/48/2/14-bit
//! layout, four records per 64-byte block. The header is versioned and
//! self-describing; readers reject unknown versions. Replaying a recorded
//! run reproduces a bit-identical `RunMetrics` digest, which makes traces
//! diffable artifacts: capture once, replay against any configuration.
//!
//! **Scenarios** ([`scenario`]): non-stationary streams composed over
//! `WorkloadParams` — scheduled phase flips, flash-crowd spikes, diurnal
//! intensity modulation, and an antagonist core thrashing the shared L2 —
//! the test bed for how the throttle controller and the cohabiting PV
//! cache respond when workload statistics shift mid-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod recorder;
pub mod replay;
pub mod scenario;

pub use format::{
    encode_records, encode_records_with_layout, Provenance, TraceError, TraceHeader, TraceLayout,
    TraceWriter, BLOCK_BYTES, HEADER_BYTES, MAGIC, VERSION,
};
pub use recorder::{record_generator, record_stream, TeeHandle, TeeStream};
pub use replay::ReplayStream;
pub use scenario::{antagonist_params, intensify, Scenario, ScheduleStream};
