//! Non-stationary scenarios: access streams whose statistics change mid-run.
//!
//! Every workload the simulator previously saw was stationary — one
//! generator, one parameter set, forever. Real commercial systems are not:
//! the query mix flips, a flash crowd arrives, load breathes diurnally, and
//! a co-scheduled job can thrash the shared cache. Each [`Scenario`]
//! composes the existing synthetic generators over [`WorkloadParams`] into
//! such a stream, built from phases of `(params, records)` cycled forever
//! by [`ScheduleStream`].
//!
//! Scenarios are *values* (small `Copy` enums over workload identifiers and
//! integer knobs) so the experiment runner can hash them into its
//! memoisation key, and every stream they build is deterministic in
//! `(scenario, core, seed)` — the digest-pinning discipline extends to
//! non-stationary runs unchanged.

use crate::format::{Provenance, TraceError};
use crate::recorder::record_stream;
use pv_workloads::{AccessStream, TraceGenerator, TraceRecord, WorkloadId, WorkloadParams};

/// A non-stationary workload composition.
///
/// All record counts are per core: each core runs its own copy of the
/// scenario schedule (with a core-specific generator seed), mirroring how
/// homogeneous stationary runs work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Alternate between two workloads every `period` records — the
    /// paper-style phase change (e.g. Qry1 → Apache at record N).
    PhaseFlip {
        /// Workload of the even phases (phase 0, 2, ...).
        a: WorkloadId,
        /// Workload of the odd phases.
        b: WorkloadId,
        /// Records per phase.
        period: u64,
    },
    /// A flash crowd: `calm` records of the base workload, then `spike`
    /// records of an intensified variant (more memory pressure, larger
    /// instantaneous footprint), repeating.
    FlashCrowd {
        /// The base workload.
        workload: WorkloadId,
        /// Records of calm traffic per cycle.
        calm: u64,
        /// Records of spike traffic per cycle.
        spike: u64,
        /// Spike intensity in percent (e.g. `150` makes the spike phases
        /// half again as memory-intense as the calm ones; must be > 0).
        intensity_pct: u32,
    },
    /// Diurnal load: miss intensity sweeps through a triangle wave across
    /// `steps` equal segments of `period` records, rising to
    /// `amplitude_pct` percent above the base at the peak and falling the
    /// same amount below it at the trough.
    Diurnal {
        /// The base workload.
        workload: WorkloadId,
        /// Records per full wave.
        period: u64,
        /// Segments the wave is quantised into (≥ 2).
        steps: u32,
        /// Peak deviation from base intensity, in percent (< 100).
        amplitude_pct: u32,
    },
    /// All cores but the last run `workload`; the last core runs a
    /// streaming thrasher ([`antagonist_params`]) that pollutes the shared
    /// L2 — and, when a PV region is configured, competes for it.
    Antagonist {
        /// Workload of the well-behaved cores.
        workload: WorkloadId,
    },
}

impl Scenario {
    /// Short machine-friendly name used in run labels and reports.
    pub fn name(&self) -> String {
        match self {
            Scenario::PhaseFlip { a, b, period } => {
                format!("flip:{a}>{b}@{period}")
            }
            Scenario::FlashCrowd {
                workload,
                calm,
                spike,
                intensity_pct,
            } => format!("flash:{workload}:{calm}+{spike}@{intensity_pct}%"),
            Scenario::Diurnal {
                workload,
                period,
                steps,
                amplitude_pct,
            } => format!("diurnal:{workload}@{period}/{steps}±{amplitude_pct}%"),
            Scenario::Antagonist { workload } => format!("antagonist:{workload}"),
        }
    }

    /// The phase schedule one core cycles through (empty only for
    /// [`Scenario::Antagonist`], which is stationary per core).
    fn phases(&self) -> Vec<(WorkloadParams, u64)> {
        match *self {
            Scenario::PhaseFlip { a, b, period } => {
                vec![(a.params(), period), (b.params(), period)]
            }
            Scenario::FlashCrowd {
                workload,
                calm,
                spike,
                intensity_pct,
            } => {
                let base = workload.params();
                let spiked = intensify(&base, i64::from(intensity_pct) - 100);
                vec![(base, calm), (spiked, spike)]
            }
            Scenario::Diurnal {
                workload,
                period,
                steps,
                amplitude_pct,
            } => {
                let base = workload.params();
                let steps = steps.max(2);
                let segment = (period / u64::from(steps)).max(1);
                (0..steps)
                    .map(|step| {
                        let wave = triangle_pct(step, steps);
                        let pct = wave * i64::from(amplitude_pct) / 100;
                        (intensify(&base, pct), segment)
                    })
                    .collect()
            }
            Scenario::Antagonist { .. } => Vec::new(),
        }
    }

    /// Builds the stream core `core` of `cores` runs under this scenario.
    ///
    /// Deterministic in `(self, core, cores, seed)` and independent of the
    /// other cores' streams, so multi-core interleaving cannot perturb it.
    pub fn stream_for_core(&self, core: usize, cores: usize, seed: u64) -> Box<dyn AccessStream> {
        match *self {
            Scenario::Antagonist { workload } => {
                let params = if core + 1 == cores {
                    antagonist_params()
                } else {
                    workload.params()
                };
                Box::new(TraceGenerator::new(&params, seed, core))
            }
            _ => Box::new(ScheduleStream::new(self.phases(), self.name(), seed, core)),
        }
    }

    /// Builds one stream per core.
    pub fn build_streams(&self, cores: usize, seed: u64) -> Vec<Box<dyn AccessStream>> {
        (0..cores).map(|core| self.stream_for_core(core, cores, seed)).collect()
    }

    /// Records `records` records of this scenario's stream for one core
    /// into the binary trace format — non-stationary runs are recordable
    /// and replayable exactly like stationary ones.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::FieldOverflow`] if a record does not fit the
    /// default layout (the synthetic generators never produce one).
    pub fn record(
        &self,
        core: usize,
        cores: usize,
        seed: u64,
        records: u64,
    ) -> Result<Vec<u8>, TraceError> {
        let mut stream = self.stream_for_core(core, cores, seed);
        record_stream(
            &mut stream,
            records,
            Provenance {
                core: core as u32,
                seed,
            },
        )
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// An infinite stream cycling through a fixed schedule of
/// `(params, records)` phases, rebuilding the generator at each phase
/// boundary with a seed derived from `(base seed, core, phase instance)`.
///
/// Rebuilding (rather than mutating a live generator) makes each phase
/// exactly the stream a stationary run of those parameters would produce —
/// the predictor sees a genuine phase change, not a gradual drift — and
/// keeps the whole composition trivially deterministic.
#[derive(Debug)]
pub struct ScheduleStream {
    phases: Vec<(WorkloadParams, u64)>,
    label: String,
    seed: u64,
    core: usize,
    phase: usize,
    instance: u64,
    remaining: u64,
    current: TraceGenerator,
}

impl ScheduleStream {
    /// Builds a stream cycling through `phases` forever.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase length is zero.
    pub fn new(phases: Vec<(WorkloadParams, u64)>, label: String, seed: u64, core: usize) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        assert!(
            phases.iter().all(|&(_, records)| records > 0),
            "phase lengths must be positive"
        );
        let current = TraceGenerator::new(&phases[0].0, phase_seed(seed, core, 0), core);
        let remaining = phases[0].1;
        ScheduleStream {
            phases,
            label,
            seed,
            core,
            phase: 0,
            instance: 0,
            remaining,
            current,
        }
    }

    /// Index into the schedule of the phase currently playing.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Total phase instances started so far (including the current one).
    pub fn instances(&self) -> u64 {
        self.instance + 1
    }

    fn advance_phase(&mut self) {
        self.phase = (self.phase + 1) % self.phases.len();
        self.instance += 1;
        let (params, records) = &self.phases[self.phase];
        self.current = TraceGenerator::new(
            params,
            phase_seed(self.seed, self.core, self.instance),
            self.core,
        );
        self.remaining = *records;
    }
}

impl AccessStream for ScheduleStream {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            self.advance_phase();
        }
        self.remaining -= 1;
        self.current.next()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Derives the generator seed of one phase instance (splitmix64 over the
/// base seed, core, and instance index) so consecutive phases of the same
/// workload do not replay identical streams.
fn phase_seed(seed: u64, core: usize, instance: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + core as u64))
        .wrapping_add(0x2545_F491_4F6C_DD1Du64.wrapping_mul(1 + instance));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Symmetric triangle wave over `steps` segments in percent of full scale:
/// starts at `-100`, peaks at `+100` mid-cycle, returns to `-100`.
fn triangle_pct(step: u32, steps: u32) -> i64 {
    let half = i64::from(steps) / 2;
    let position = i64::from(step);
    let distance = if position <= half {
        position
    } else {
        i64::from(steps) - position
    };
    // Map distance 0..=half onto -100..=100.
    if half == 0 {
        0
    } else {
        distance * 200 / half - 100
    }
}

/// Scales a workload's memory intensity by `pct` percent (positive = more
/// intense). Intensity here means pressure on the memory system: fewer
/// non-memory instructions between accesses and a larger instantaneous
/// footprint (less reuse), which raises the L2 miss rate — the knob the
/// diurnal and flash-crowd scenarios modulate.
pub fn intensify(base: &WorkloadParams, pct: i64) -> WorkloadParams {
    let pct = pct.clamp(-90, 400);
    let scale = |value: usize| -> usize {
        let scaled = value as i64 + value as i64 * pct / 100;
        scaled.max(1) as usize
    };
    let mut params = base.clone();
    params.name = format!("{}{:+}%", base.name, pct);
    // More intensity = fewer covering instructions per access...
    params.instr_per_mem = base.instr_per_mem * 100.0 / (100.0 + pct as f64);
    // ...and a larger working set (less reuse, more capacity misses).
    params.data_regions = scale(base.data_regions);
    params.active_generations = scale(base.active_generations);
    params.validate().expect("intensifying a valid workload preserves validity");
    params
}

/// The cache thrasher the [`Scenario::Antagonist`] scenario schedules on
/// the last core: a streaming scan over a footprint far larger than the
/// shared L2, dense but unstable spatial patterns (so its prefetcher is
/// both busy and wasteful), heavy store traffic, and almost no reuse.
pub fn antagonist_params() -> WorkloadParams {
    WorkloadParams {
        name: "Antagonist".to_owned(),
        description: "streaming thrasher: scans a 25 MB footprint with no reuse, \
                      unstable dense patterns, heavy stores"
            .to_owned(),
        contexts: 4_000,
        context_zipf: 0.1,
        pattern_density: 1.0,
        pattern_stability: 0.5,
        data_regions: 400_000,
        region_zipf: 0.0,
        irregular_fraction: 0.2,
        write_fraction: 0.3,
        accesses_per_block: 1.0,
        active_generations: 48,
        instr_per_mem: 1.0,
        code_blocks: 256,
        branch_fraction: 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayStream;
    use pv_workloads::workloads;

    fn collect(stream: &mut dyn AccessStream, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| stream.next_record().unwrap()).collect()
    }

    #[test]
    fn phase_flip_switches_workloads_at_the_period() {
        let scenario = Scenario::PhaseFlip {
            a: WorkloadId::Qry1,
            b: WorkloadId::Apache,
            period: 100,
        };
        let mut stream = ScheduleStream::new(scenario.phases(), scenario.name(), 7, 0);
        // Phase 0 records equal a fresh Qry1 generator with the derived seed.
        let phase0 = collect(&mut stream, 100);
        let expected: Vec<_> = TraceGenerator::new(&workloads::qry1(), phase_seed(7, 0, 0), 0)
            .take(100)
            .collect();
        assert_eq!(phase0, expected);
        assert_eq!(stream.phase(), 0, "boundary not crossed yet");
        // The 101st record comes from a fresh Apache generator.
        let first_b = stream.next_record().unwrap();
        assert_eq!(stream.phase(), 1);
        let expected_b = TraceGenerator::new(&workloads::apache(), phase_seed(7, 0, 1), 0)
            .next()
            .unwrap();
        assert_eq!(first_b, expected_b);
    }

    #[test]
    fn repeated_phases_use_distinct_seeds() {
        let scenario = Scenario::PhaseFlip {
            a: WorkloadId::Qry1,
            b: WorkloadId::Apache,
            period: 50,
        };
        let mut stream = scenario.stream_for_core(0, 4, 7);
        let cycle0: Vec<_> = collect(stream.as_mut(), 50);
        let _skip_b: Vec<_> = collect(stream.as_mut(), 50);
        let cycle1: Vec<_> = collect(stream.as_mut(), 50);
        assert_ne!(
            cycle0, cycle1,
            "the second Qry1 phase must not replay the first"
        );
    }

    #[test]
    fn scenario_streams_are_deterministic_per_core() {
        for scenario in [
            Scenario::PhaseFlip {
                a: WorkloadId::Db2,
                b: WorkloadId::Zeus,
                period: 64,
            },
            Scenario::FlashCrowd {
                workload: WorkloadId::Oracle,
                calm: 96,
                spike: 32,
                intensity_pct: 200,
            },
            Scenario::Diurnal {
                workload: WorkloadId::Qry17,
                period: 128,
                steps: 4,
                amplitude_pct: 50,
            },
            Scenario::Antagonist {
                workload: WorkloadId::Qry2,
            },
        ] {
            for core in [0, 3] {
                let mut first = scenario.stream_for_core(core, 4, 42);
                let mut second = scenario.stream_for_core(core, 4, 42);
                let a = collect(first.as_mut(), 300);
                let b = collect(second.as_mut(), 300);
                assert_eq!(a, b, "{scenario} core {core} must be deterministic");
            }
        }
    }

    #[test]
    fn antagonist_runs_on_the_last_core_only() {
        let scenario = Scenario::Antagonist {
            workload: WorkloadId::Qry1,
        };
        let streams = scenario.build_streams(4, 7);
        assert_eq!(streams.len(), 4);
        assert_eq!(streams[0].label(), "Qry1");
        assert_eq!(streams[2].label(), "Qry1");
        assert_eq!(streams[3].label(), "Antagonist");
        antagonist_params().validate().expect("antagonist parameters must be valid");
    }

    #[test]
    fn intensify_scales_pressure_both_ways() {
        let base = workloads::qry1();
        let hot = intensify(&base, 100);
        assert!(hot.instr_per_mem < base.instr_per_mem);
        assert_eq!(hot.data_regions, base.data_regions * 2);
        let cold = intensify(&base, -50);
        assert!(cold.instr_per_mem > base.instr_per_mem);
        assert!(cold.data_regions < base.data_regions);
        assert!(cold.data_regions >= 1);
    }

    #[test]
    fn triangle_wave_is_symmetric_and_bounded() {
        let steps = 8;
        let values: Vec<_> = (0..steps).map(|s| triangle_pct(s, steps)).collect();
        assert_eq!(values[0], -100);
        assert_eq!(values[4], 100);
        assert!(values.iter().all(|v| (-100..=100).contains(v)));
        assert_eq!(values[3], values[5], "wave must be symmetric");
    }

    #[test]
    fn diurnal_schedule_covers_the_period() {
        let scenario = Scenario::Diurnal {
            workload: WorkloadId::Apache,
            period: 1000,
            steps: 5,
            amplitude_pct: 40,
        };
        let phases = scenario.phases();
        assert_eq!(phases.len(), 5);
        let total: u64 = phases.iter().map(|&(_, records)| records).sum();
        assert_eq!(total, 1000);
        for (params, _) in &phases {
            params.validate().expect("modulated params stay valid");
        }
    }

    #[test]
    fn scenario_runs_are_recordable_and_replayable() {
        let scenario = Scenario::FlashCrowd {
            workload: WorkloadId::Zeus,
            calm: 64,
            spike: 64,
            intensity_pct: 250,
        };
        let bytes = scenario.record(1, 4, 9, 400).expect("records fit");
        let replay = ReplayStream::new(bytes).expect("valid trace");
        assert_eq!(replay.records(), 400);
        let mut live = scenario.stream_for_core(1, 4, 9);
        let direct = collect(live.as_mut(), 400);
        let replayed: Vec<_> = replay.collect();
        assert_eq!(replayed, direct);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let flip = Scenario::PhaseFlip {
            a: WorkloadId::Qry1,
            b: WorkloadId::Apache,
            period: 6000,
        };
        assert_eq!(flip.name(), "flip:Qry1>Apache@6000");
        let names: Vec<String> = [
            flip,
            Scenario::FlashCrowd {
                workload: WorkloadId::Qry1,
                calm: 1,
                spike: 1,
                intensity_pct: 150,
            },
            Scenario::Diurnal {
                workload: WorkloadId::Qry1,
                period: 8,
                steps: 4,
                amplitude_pct: 50,
            },
            Scenario::Antagonist {
                workload: WorkloadId::Qry1,
            },
        ]
        .iter()
        .map(Scenario::name)
        .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
