//! The virtualized PHT: SMS plugged into the `pv-core` substrate.
//!
//! This module is the dependency inversion the substrate demands: `pv-core`
//! knows nothing about SMS; instead SMS describes its PHT entry to the
//! substrate by implementing [`PvEntry`] for [`SmsEntry`] (an 11-bit tag
//! plus a 32-bit spatial pattern — the 43-bit packed entry of the paper's
//! Figure 3a), and [`VirtualizedPht`] adapts the generic
//! `PvProxy<SmsEntry>` to the engine-facing [`PatternStorage`] trait so the
//! unmodified SMS engine runs on top of it — exactly the property the paper
//! relies on ("the optimization engine remains unchanged").

use crate::index::{PhtIndex, INDEX_BITS};
use crate::pattern::SpatialPattern;
use crate::pht::{PatternLookup, PatternStorage};
use pv_core::{PvConfig, PvEntry, PvProxy, PvStorageBudget, VirtualizedBackend};
use pv_mem::{Address, MemoryHierarchy};

/// One packed PHT entry as the virtualized table stores it: the tag bits of
/// the 21-bit PHT index above the 10 set bits, and the spatial pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmsEntry {
    /// Tag bits of the PHT index (11 bits for the 1K-set table).
    pub tag: u16,
    /// The stored spatial pattern.
    pub pattern: SpatialPattern,
}

impl SmsEntry {
    /// Creates an entry.
    pub fn new(tag: u16, pattern: SpatialPattern) -> Self {
        SmsEntry { tag, pattern }
    }
}

impl PvEntry for SmsEntry {
    // 21-bit index minus 10 set bits for the 1K-set virtualized table.
    const TAG_BITS: u32 = INDEX_BITS - 10;
    // One bit per block of a 32-block spatial region.
    const PAYLOAD_BITS: u32 = 32;

    fn tag(&self) -> u64 {
        u64::from(self.tag)
    }

    fn payload(&self) -> u64 {
        // An empty pattern is never stored by the prefetcher, so the
        // pattern bits double as the substrate's invalid marker.
        u64::from(self.pattern.bits())
    }

    fn from_parts(tag: u64, payload: u64) -> Option<Self> {
        (payload != 0).then_some(SmsEntry {
            tag: tag as u16,
            pattern: SpatialPattern::from_bits(payload as u32),
        })
    }
}

/// The virtualized PHT backend for one core's SMS prefetcher: a thin
/// [`PatternStorage`] adapter over the generic [`PvProxy`].
#[derive(Debug)]
pub struct VirtualizedPht {
    proxy: PvProxy<SmsEntry>,
}

impl VirtualizedPht {
    /// Creates the virtualized PHT for `core`, with its PVTable based at
    /// `pv_start` (normally `HierarchyConfig::pv_regions.core_base(core)`).
    ///
    /// # Panics
    ///
    /// Panics if the configured number of table sets leaves more index tag
    /// bits than the packed entry stores.
    pub fn new(core: usize, config: PvConfig, pv_start: Address) -> Self {
        assert!(
            PhtIndex::tag_bits(config.table_sets) <= SmsEntry::TAG_BITS,
            "a {}-set PVTable needs {} tag bits but SmsEntry stores {}",
            config.table_sets,
            PhtIndex::tag_bits(config.table_sets),
            SmsEntry::TAG_BITS
        );
        VirtualizedPht {
            proxy: PvProxy::new(core, config, pv_start),
        }
    }

    /// The generic proxy underneath (PVCache, PVTable, statistics).
    pub fn proxy(&self) -> &PvProxy<SmsEntry> {
        &self.proxy
    }

    /// The Section 4.6 storage budget of an SMS proxy with `config`.
    pub fn storage_budget(config: &PvConfig) -> PvStorageBudget {
        PvStorageBudget::for_entry::<SmsEntry>(config)
    }

    /// Writes every dirty PVCache entry back to the memory hierarchy (used
    /// at the end of a simulation window so no learned state is lost).
    pub fn drain(&mut self, mem: &mut MemoryHierarchy, now: u64) {
        VirtualizedBackend::drain(&mut self.proxy, mem, now);
    }
}

impl PatternStorage for VirtualizedPht {
    fn lookup(
        &mut self,
        index: PhtIndex,
        mem: &mut MemoryHierarchy,
        _shared: Option<&mut pv_core::SharedPvProxy>,
        now: u64,
    ) -> PatternLookup {
        let lookup = self.proxy.lookup(u64::from(index.raw()), mem, now);
        PatternLookup {
            pattern: lookup.entry.map(|e| e.pattern),
            ready_at: lookup.ready_at,
        }
    }

    fn store(
        &mut self,
        index: PhtIndex,
        pattern: SpatialPattern,
        mem: &mut MemoryHierarchy,
        _shared: Option<&mut pv_core::SharedPvProxy>,
        now: u64,
    ) {
        let raw = u64::from(index.raw());
        let entry = SmsEntry::new(self.proxy.tag_of(raw) as u16, pattern);
        self.proxy.store(raw, entry, mem, now);
    }

    fn label(&self) -> String {
        VirtualizedBackend::label(&self.proxy)
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        self.proxy.dedicated_storage_bytes()
    }

    fn resident_patterns(&self) -> usize {
        self.proxy.resident_entries()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn reset_stats(&mut self) {
        VirtualizedBackend::reset_stats(&mut self.proxy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TriggerKey;
    use pv_mem::HierarchyConfig;

    fn setup() -> (MemoryHierarchy, VirtualizedPht) {
        let config = HierarchyConfig::paper_baseline(4);
        let mem = MemoryHierarchy::new(config);
        let pht = VirtualizedPht::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        (mem, pht)
    }

    fn index_for(pc: u64, offset: u32) -> PhtIndex {
        TriggerKey::new(pc, offset).index()
    }

    #[test]
    fn entry_widths_reproduce_the_papers_figure_3a_layout() {
        let (_, pht) = setup();
        let layout = *pht.proxy().layout();
        assert_eq!(SmsEntry::TAG_BITS, 11);
        assert_eq!(SmsEntry::entry_bits(), 43);
        assert_eq!(
            layout.entries_per_block(),
            11,
            "11 x 43-bit entries per 64-byte block"
        );
        assert_eq!(layout.unused_trailing_bits(), 39);
    }

    #[test]
    fn storage_budget_matches_paper_total() {
        let (_, pht) = setup();
        assert_eq!(pht.dedicated_storage_bytes(), 889);
        assert_eq!(
            VirtualizedPht::storage_budget(&PvConfig::pv8()).total_bytes(),
            889
        );
        assert_eq!(PatternStorage::label(&pht), "PV-8");
    }

    #[test]
    fn cold_lookup_misses_and_costs_memory_latency() {
        let (mut mem, mut pht) = setup();
        let lookup = pht.lookup(index_for(0x4000, 3), &mut mem, None, 0);
        assert!(lookup.pattern.is_none());
        assert!(
            lookup.ready_at >= 400,
            "cold PVTable set must come from DRAM"
        );
        assert_eq!(pht.proxy().stats().pvcache_misses, 1);
        assert_eq!(pht.proxy().stats().memory_requests, 1);
    }

    #[test]
    fn store_then_lookup_round_trips_the_pattern() {
        let (mut mem, mut pht) = setup();
        let index = index_for(0x4000, 3);
        let pattern = SpatialPattern::from_offsets([3, 4, 9]);
        pht.store(index, pattern, &mut mem, None, 0);
        let lookup = pht.lookup(index, &mut mem, None, 1_000);
        assert_eq!(lookup.pattern, Some(pattern));
        assert_eq!(pht.proxy().stats().pvcache_hits, 1);
    }

    #[test]
    fn evicted_dirty_sets_survive_in_memory() {
        let (mut mem, mut pht) = setup();
        let pattern = SpatialPattern::from_offsets([1, 2]);
        // Store patterns into more distinct sets than the PVCache holds so
        // the first one is evicted (dirty) and written back.
        let capacity = pht.proxy().config().pvcache_sets;
        for i in 0..(capacity + 4) as u64 {
            // Consecutive instruction words map to different PVTable sets
            // (the set index is the low bits of PC-bits concatenated with
            // the offset, so a PC step of 4 moves the set by 32).
            let index = index_for(0x4000 + i * 4, 1);
            pht.store(index, pattern, &mut mem, None, i * 1000);
        }
        assert!(pht.proxy().stats().dirty_writebacks >= 1);
        // The first index's pattern must still be retrievable: its set comes
        // back from the memory hierarchy.
        let lookup = pht.lookup(index_for(0x4000, 1), &mut mem, None, 1_000_000);
        assert_eq!(
            lookup.pattern,
            Some(pattern),
            "dirty write-back must preserve the pattern"
        );
    }

    #[test]
    fn merged_lookups_wait_for_the_inflight_fill() {
        let (mut mem, mut pht) = setup();
        let index = index_for(0x4000, 1);
        let first = pht.lookup(index, &mut mem, None, 0);
        // Same set requested again one cycle later: the fetch is merged (no
        // second memory request) and the early hit reports the in-flight
        // fill's completion time rather than pretending the data arrived.
        let second = pht.lookup(index, &mut mem, None, 1);
        assert_eq!(pht.proxy().stats().memory_requests, 1);
        assert_eq!(second.ready_at, first.ready_at);
        assert_eq!(pht.proxy().stats().pending_hits, 1);
    }

    #[test]
    #[should_panic(expected = "tag bits")]
    fn too_few_entry_tag_bits_panic() {
        let config = HierarchyConfig::paper_baseline(1);
        let mut pv = PvConfig::pv8();
        pv.table_sets = 256; // 13 tag bits needed, SmsEntry stores 11.
        VirtualizedPht::new(0, pv, config.pv_regions.core_base(0));
    }
}
