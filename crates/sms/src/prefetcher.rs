//! The SMS prefetch engine: ties the AGT to a pattern-storage backend and
//! produces prefetch requests.

use crate::agt::{ActiveGenerationTable, AgtUpdate};
use crate::config::SmsConfig;
use crate::pattern::SpatialPattern;
use crate::pht::PatternStorage;
use crate::stats::SmsStats;
use pv_core::SharedPvProxy;
use pv_mem::{Address, BlockAddr, MemoryHierarchy};

/// One prefetch the engine wants performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchAction {
    /// Block to bring into the L1 data cache.
    pub block: BlockAddr,
    /// Cycle at which the prediction became available (the prefetch cannot
    /// be issued earlier; a virtualized PHT may add latency here).
    pub issue_at: u64,
}

/// Everything the engine decided in response to one event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineResponse {
    /// Prefetches to issue.
    pub prefetches: Vec<PrefetchAction>,
    /// Whether this access triggered a new spatial generation.
    pub triggered: bool,
    /// Whether the trigger's PHT lookup hit.
    pub pht_hit: bool,
}

/// The allocation-free verdict of one access: what
/// [`SmsPrefetcher::on_data_access_into`] decided, with the prefetches
/// themselves appended to the caller-owned buffer instead of an owned `Vec`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessDecision {
    /// Whether this access triggered a new spatial generation.
    pub triggered: bool,
    /// Whether the trigger's PHT lookup hit.
    pub pht_hit: bool,
}

/// The Spatial Memory Streaming prefetch engine for one core.
///
/// The engine is generic over its PHT storage: pass a
/// [`crate::DedicatedPht`], [`crate::InfinitePht`] or the virtualized
/// storage from `pv-core`. The rest of the prefetcher — the AGT and the
/// prediction logic — is identical in all configurations, exactly as the
/// paper requires ("the optimization engine remains unchanged").
#[derive(Debug)]
pub struct SmsPrefetcher {
    config: SmsConfig,
    agt: ActiveGenerationTable,
    storage: Box<dyn PatternStorage>,
    stats: SmsStats,
    /// Scratch AGT update reused across events so the per-record path does
    /// not allocate (the `completed` buffer keeps its capacity).
    update: AgtUpdate,
}

impl SmsPrefetcher {
    /// Creates an SMS engine with the given configuration and PHT backend.
    pub fn new(config: SmsConfig, storage: Box<dyn PatternStorage>) -> Self {
        config.assert_valid();
        SmsPrefetcher {
            agt: ActiveGenerationTable::new(
                config.filter_entries,
                config.accumulation_entries,
                config.region_blocks,
            ),
            config,
            storage,
            stats: SmsStats::default(),
            update: AgtUpdate::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SmsConfig {
        &self.config
    }

    /// The PHT storage backend.
    pub fn storage(&self) -> &dyn PatternStorage {
        self.storage.as_ref()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SmsStats {
        &self.stats
    }

    /// Resets the statistics (the learned state is preserved), including any
    /// statistics the PHT storage backend keeps.
    pub fn reset_stats(&mut self) {
        self.stats = SmsStats::default();
        self.storage.reset_stats();
    }

    /// Observes one L1 data access (hit or miss) by the core.
    ///
    /// Returns the prefetches to issue, if the access triggered a generation
    /// whose pattern is known.
    pub fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> EngineResponse {
        let mut prefetches = Vec::new();
        let decision = self.on_data_access_into(pc, address, mem, shared, now, &mut prefetches);
        EngineResponse {
            prefetches,
            triggered: decision.triggered,
            pht_hit: decision.pht_hit,
        }
    }

    /// Observes one L1 data access like [`Self::on_data_access`], appending
    /// any prefetches to the caller-owned `out` buffer — the simulator's
    /// per-record hot path, which must not heap-allocate.
    pub fn on_data_access_into(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) -> AccessDecision {
        self.stats.accesses_observed += 1;
        let block = Address::new(address).block();
        let mut update = std::mem::take(&mut self.update);
        update.clear();
        self.agt.on_access(pc, block, &mut update);
        let decision = self.apply_update(&update, block, mem, shared, now, out);
        self.update = update;
        decision
    }

    /// Notifies the engine that blocks left the L1 data cache (evictions or
    /// invalidations); generations covering them end and their patterns are
    /// stored.
    pub fn on_l1_evictions(
        &mut self,
        blocks: &[BlockAddr],
        mem: &mut MemoryHierarchy,
        mut shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        for &block in blocks {
            let mut update = std::mem::take(&mut self.update);
            update.clear();
            self.agt.on_l1_eviction(block, &mut update);
            self.store_completed(&update, mem, shared.as_deref_mut(), now);
            self.update = update;
        }
    }

    /// Ends all active generations and stores their patterns (used at the
    /// end of a simulation window).
    pub fn flush(
        &mut self,
        mem: &mut MemoryHierarchy,
        mut shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        for completed in self.agt.flush() {
            if completed.pattern.count() >= 2 {
                self.stats.patterns_stored += 1;
                self.storage.store(
                    completed.key.index(),
                    completed.pattern,
                    mem,
                    shared.as_deref_mut(),
                    now,
                );
            }
        }
    }

    fn apply_update(
        &mut self,
        update: &AgtUpdate,
        trigger_block: BlockAddr,
        mem: &mut MemoryHierarchy,
        mut shared: Option<&mut SharedPvProxy>,
        now: u64,
        out: &mut Vec<PrefetchAction>,
    ) -> AccessDecision {
        self.store_completed(update, mem, shared.as_deref_mut(), now);
        let mut decision = AccessDecision::default();
        let Some(trigger) = update.trigger else {
            return decision;
        };
        decision.triggered = true;
        self.stats.triggers += 1;
        self.stats.pht_lookups += 1;
        let lookup = self.storage.lookup(trigger.key.index(), mem, shared, now);
        match lookup.pattern {
            Some(pattern) => {
                self.stats.pht_hits += 1;
                decision.pht_hit = true;
                let before = out.len();
                self.pattern_to_prefetches(pattern, trigger_block, lookup.ready_at, out);
                self.stats.prefetch_candidates += (out.len() - before) as u64;
            }
            None => {
                self.stats.pht_misses += 1;
            }
        }
        decision
    }

    fn store_completed(
        &mut self,
        update: &AgtUpdate,
        mem: &mut MemoryHierarchy,
        mut shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        for completed in &update.completed {
            // Patterns reaching the PHT always have at least two blocks (the
            // filter table absorbs single-access generations).
            if completed.pattern.count() >= 2 {
                self.stats.patterns_stored += 1;
                self.storage.store(
                    completed.key.index(),
                    completed.pattern,
                    mem,
                    shared.as_deref_mut(),
                    now,
                );
            }
        }
    }

    /// Converts a predicted pattern into concrete prefetch addresses for the
    /// trigger's region, excluding the trigger block itself (the demand
    /// access is already fetching it), appending them to `out`.
    fn pattern_to_prefetches(
        &self,
        pattern: SpatialPattern,
        trigger_block: BlockAddr,
        issue_at: u64,
        out: &mut Vec<PrefetchAction>,
    ) {
        let region = trigger_block.region(self.config.region_blocks);
        let trigger_offset = trigger_block.region_offset(self.config.region_blocks);
        out.extend(
            pattern
                .without(trigger_offset)
                .offsets()
                .filter(|&offset| offset < self.config.region_blocks)
                .map(|offset| PrefetchAction {
                    block: region.block_at(offset, self.config.region_blocks),
                    issue_at,
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmsConfig;
    use crate::pht::build_storage;
    use pv_mem::{HierarchyConfig, RegionAddr};

    fn engine(config: SmsConfig) -> SmsPrefetcher {
        let storage = build_storage(&config);
        SmsPrefetcher::new(config, storage)
    }

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(1))
    }

    fn addr(region: u64, offset: u32) -> u64 {
        RegionAddr::new(region).block_at(offset, 32).base_address().raw()
    }

    /// Runs one full generation (accesses + eviction) and returns the engine
    /// response of the *next* trigger for the same PC.
    fn train_and_retrigger(
        engine: &mut SmsPrefetcher,
        mem: &mut MemoryHierarchy,
        pc: u64,
    ) -> EngineResponse {
        // Generation over region 10: blocks 2, 5, 7.
        engine.on_data_access(pc, addr(10, 2), mem, None, 0);
        engine.on_data_access(pc + 8, addr(10, 5), mem, None, 10);
        engine.on_data_access(pc + 16, addr(10, 7), mem, None, 20);
        // Evicting block 5 ends the generation and stores the pattern.
        engine.on_l1_evictions(&[RegionAddr::new(10).block_at(5, 32)], mem, None, 30);
        // The same trigger PC and offset on a different region now predicts.
        engine.on_data_access(pc, addr(20, 2), mem, None, 100)
    }

    #[test]
    fn cold_trigger_produces_no_prefetches() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        let response = engine.on_data_access(0x400, addr(1, 3), &mut mem, None, 0);
        assert!(response.triggered);
        assert!(!response.pht_hit);
        assert!(response.prefetches.is_empty());
        assert_eq!(engine.stats().pht_misses, 1);
    }

    #[test]
    fn learned_pattern_predicts_future_generations() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        let response = train_and_retrigger(&mut engine, &mut mem, 0x400);
        assert!(response.triggered);
        assert!(response.pht_hit, "the stored pattern must be found");
        // The pattern was {2, 5, 7}; the trigger block (offset 2) is excluded.
        let blocks: Vec<BlockAddr> = response.prefetches.iter().map(|p| p.block).collect();
        assert_eq!(
            blocks,
            vec![
                RegionAddr::new(20).block_at(5, 32),
                RegionAddr::new(20).block_at(7, 32)
            ]
        );
        assert_eq!(engine.stats().patterns_stored, 1);
        assert_eq!(engine.stats().pht_hits, 1);
    }

    #[test]
    fn prefetches_target_the_new_region_not_the_trained_one() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        let response = train_and_retrigger(&mut engine, &mut mem, 0x400);
        for p in &response.prefetches {
            assert_eq!(p.block.region(32), RegionAddr::new(20));
        }
    }

    #[test]
    fn prefetch_issue_time_respects_lookup_latency() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        let response = train_and_retrigger(&mut engine, &mut mem, 0x400);
        let latency = engine.config().dedicated_lookup_latency;
        for p in &response.prefetches {
            assert_eq!(p.issue_at, 100 + latency);
        }
    }

    #[test]
    fn different_pc_does_not_hit_the_learned_pattern() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        train_and_retrigger(&mut engine, &mut mem, 0x400);
        let response = engine.on_data_access(0x9000, addr(30, 2), &mut mem, None, 200);
        assert!(response.triggered);
        assert!(!response.pht_hit);
    }

    #[test]
    fn tiny_pht_forgets_under_pressure() {
        let mut engine = engine(SmsConfig::small_8_11a());
        let mut mem = mem();
        // Train 2000 distinct triggers; an 88-entry table cannot hold them.
        for i in 0..2000u64 {
            let pc = 0x1000 + i * 4;
            let region = 100 + i;
            engine.on_data_access(pc, addr(region, 1), &mut mem, None, i * 10);
            engine.on_data_access(pc + 4, addr(region, 3), &mut mem, None, i * 10 + 1);
            engine.on_l1_evictions(
                &[RegionAddr::new(region).block_at(1, 32)],
                &mut mem,
                None,
                i * 10 + 2,
            );
        }
        // Re-trigger the earliest PC: it must have been evicted.
        let response = engine.on_data_access(0x1000, addr(5000, 1), &mut mem, None, 1_000_000);
        assert!(
            !response.pht_hit,
            "an 88-entry PHT cannot retain 2000 patterns"
        );
    }

    #[test]
    fn infinite_pht_retains_everything() {
        let mut engine = engine(SmsConfig::infinite());
        let mut mem = mem();
        for i in 0..2000u64 {
            let pc = 0x1000 + i * 4;
            let region = 100 + i;
            engine.on_data_access(pc, addr(region, 1), &mut mem, None, i * 10);
            engine.on_data_access(pc + 4, addr(region, 3), &mut mem, None, i * 10 + 1);
            engine.on_l1_evictions(
                &[RegionAddr::new(region).block_at(1, 32)],
                &mut mem,
                None,
                i * 10 + 2,
            );
        }
        let response = engine.on_data_access(0x1000, addr(5000, 1), &mut mem, None, 1_000_000);
        assert!(response.pht_hit, "the infinite PHT never forgets");
    }

    #[test]
    fn flush_persists_in_flight_generations() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        engine.on_data_access(0x400, addr(1, 0), &mut mem, None, 0);
        engine.on_data_access(0x404, addr(1, 4), &mut mem, None, 1);
        engine.flush(&mut mem, None, 10);
        assert_eq!(engine.stats().patterns_stored, 1);
        // The flushed pattern is usable by a later trigger.
        let response = engine.on_data_access(0x400, addr(9, 0), &mut mem, None, 100);
        assert!(response.pht_hit);
    }

    #[test]
    fn stats_reset_keeps_learned_state() {
        let mut engine = engine(SmsConfig::paper_1k_11a());
        let mut mem = mem();
        train_and_retrigger(&mut engine, &mut mem, 0x400);
        engine.reset_stats();
        assert_eq!(engine.stats().pht_hits, 0);
        let response = engine.on_data_access(0x400, addr(40, 2), &mut mem, None, 500);
        assert!(response.pht_hit, "resetting stats must not clear the PHT");
    }
}
