//! SMS on a *shared* PVProxy: the cohabitation adapter.
//!
//! [`VirtualizedPht`](crate::VirtualizedPht) gives SMS a PVProxy of its own.
//! [`SharedVirtualizedPht`] instead registers the SMS PVTable as one table
//! of a per-core [`SharedPvProxy`], so SMS and any cohabiting predictor
//! (e.g. the Markov backend) arbitrate for the same table-tagged PVCache
//! entries and the same L2/DRAM bandwidth. The SMS engine is — as always —
//! unchanged: it still sees only [`PatternStorage`].
//!
//! The adapter does not own the proxy: the proxy lives with whoever composes
//! the cohabiting engines (the composite prefetcher), and arrives by `&mut`
//! through the `shared` parameter of every [`PatternStorage`] call. That
//! keeps the adapter — and the whole simulator above it — `Send`, with no
//! per-access `RefCell` borrow bookkeeping on the hot path.
//!
//! Contents are write-through: the adapter owns the authoritative
//! `PvTable<SmsEntry>` and consults it only while the shared proxy reports
//! the set resident (see `pv_core::shared` for the contract).

use crate::index::PhtIndex;
use crate::pattern::SpatialPattern;
use crate::pht::{PatternLookup, PatternStorage};
use crate::virtualized::SmsEntry;
use pv_core::{
    PvConfig, PvEntry, PvLayout, PvStartRegister, PvStorageBudget, PvTable, SharedPvProxy,
    SharedStoreOutcome,
};
use pv_mem::{Address, MemoryHierarchy};

/// The SMS pattern-history table bound to a shared, table-tagged PVProxy.
#[derive(Debug)]
pub struct SharedVirtualizedPht {
    table_id: usize,
    /// PVCache sets of the proxy this adapter registered with, captured at
    /// construction (the proxy's capacity is fixed for its lifetime) so
    /// `label`/`dedicated_storage_bytes` need no proxy access.
    shared_capacity: usize,
    config: PvConfig,
    layout: PvLayout,
    table: PvTable<SmsEntry>,
}

impl SharedVirtualizedPht {
    /// Registers an SMS PVTable based at `pv_start` (normally a
    /// `PvRegionPlan` sub-region base) with the core's shared proxy.
    /// `config` describes this table's geometry; the PVCache capacity is the
    /// shared proxy's, not `config.pvcache_sets`.
    ///
    /// # Panics
    ///
    /// Panics if the configured number of table sets leaves more index tag
    /// bits than the packed entry stores (mirrors `VirtualizedPht::new`).
    pub fn new(shared: &mut SharedPvProxy, config: PvConfig, pv_start: Address) -> Self {
        assert!(
            PhtIndex::tag_bits(config.table_sets) <= SmsEntry::TAG_BITS,
            "a {}-set PVTable needs {} tag bits but SmsEntry stores {}",
            config.table_sets,
            PhtIndex::tag_bits(config.table_sets),
            SmsEntry::TAG_BITS
        );
        let table_id = shared.add_table(pv_start, config.table_sets, config.block_bytes, "SMS");
        SharedVirtualizedPht {
            table_id,
            shared_capacity: shared.cache().capacity(),
            layout: PvLayout::of::<SmsEntry>(config.block_bytes),
            table: PvTable::new(&config, PvStartRegister::new(pv_start)),
            config,
        }
    }

    /// This table's id within the shared proxy.
    pub fn table_id(&self) -> usize {
        self.table_id
    }

    /// Splits a raw PHT index into (set index, tag) for this geometry.
    fn split_index(&self, index: u64) -> (usize, u64) {
        (
            (index as usize) & (self.config.table_sets - 1),
            index >> self.config.table_sets.trailing_zeros(),
        )
    }

    /// The proxy this adapter arbitrates through, out of the `shared`
    /// parameter. Panics with a diagnosable message when a caller wires the
    /// adapter up without one.
    fn proxy(shared: Option<&mut SharedPvProxy>) -> &mut SharedPvProxy {
        shared.expect("SharedVirtualizedPht requires the shared proxy it registered with")
    }
}

impl PatternStorage for SharedVirtualizedPht {
    fn lookup(
        &mut self,
        index: PhtIndex,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> PatternLookup {
        let raw = u64::from(index.raw());
        let (set_index, tag) = self.split_index(raw);
        let access = Self::proxy(shared).lookup_set(self.table_id, set_index, raw, mem, now);
        let pattern = if access.resident {
            self.table.set_mut(set_index).lookup(tag).map(|entry| entry.pattern)
        } else {
            // Dropped (pattern buffer full): the prediction is lost even if
            // the entry exists — the set never made it on chip.
            None
        };
        PatternLookup {
            pattern,
            ready_at: access.ready_at,
        }
    }

    fn store(
        &mut self,
        index: PhtIndex,
        pattern: SpatialPattern,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        let raw = u64::from(index.raw());
        let (set_index, tag) = self.split_index(raw);
        let entry = SmsEntry::new(tag as u16, pattern);
        // Same geometry guards as PvProxy::store: the structured table must
        // only ever hold entries the packed layout could represent.
        assert!(
            entry.tag() <= self.layout.max_tag(),
            "tag {:#x} exceeds the layout's {} tag bits",
            entry.tag(),
            self.layout.tag_bits
        );
        assert!(
            entry.payload() != 0 && entry.payload() <= self.layout.max_payload(),
            "payload {:#x} must be non-zero and fit the layout's {} payload bits",
            entry.payload(),
            self.layout.payload_bits
        );
        // Write-through only when the proxy accepted the store: an unbacked
        // set has no memory behind it, so the entry must not survive in the
        // structured table either.
        if Self::proxy(shared).store_set(self.table_id, set_index, mem, now)
            == SharedStoreOutcome::Accepted
        {
            self.table.set_mut(set_index).insert(entry);
        }
    }

    fn label(&self) -> String {
        format!("shPV-{}", self.shared_capacity)
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        // The budget of the whole shared proxy at this entry's widths; the
        // proxy is shared, so cohabiting adapters deliberately report the
        // same pooled figure rather than a per-table split.
        let sized = PvConfig {
            pvcache_sets: self.shared_capacity,
            ..self.config
        };
        PvStorageBudget::for_entry::<SmsEntry>(&sized).total_bytes()
    }

    fn resident_patterns(&self) -> usize {
        self.table.resident_entries()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    // reset_stats: the default no-op. The proxy's statistics belong to its
    // owner (the composite), which resets them once for all tables.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TriggerKey;
    use pv_mem::{HierarchyConfig, PvRegionConfig};

    fn setup() -> (MemoryHierarchy, SharedPvProxy, SharedVirtualizedPht) {
        let mut config = HierarchyConfig::paper_baseline(4);
        config.pv_regions = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let mem = MemoryHierarchy::new(config);
        let mut shared = SharedPvProxy::new(0, PvConfig::pv8());
        let pht =
            SharedVirtualizedPht::new(&mut shared, PvConfig::pv8(), config.pv_regions.core_base(0));
        (mem, shared, pht)
    }

    fn index_for(pc: u64, offset: u32) -> PhtIndex {
        TriggerKey::new(pc, offset).index()
    }

    #[test]
    fn store_then_lookup_round_trips_through_the_shared_proxy() {
        let (mut mem, mut shared, mut pht) = setup();
        let index = index_for(0x4000, 3);
        let pattern = SpatialPattern::from_offsets([3, 4, 9]);
        pht.store(index, pattern, &mut mem, Some(&mut shared), 0);
        let lookup = pht.lookup(index, &mut mem, Some(&mut shared), 1_000);
        assert_eq!(lookup.pattern, Some(pattern));
        assert_eq!(shared.table_stats(0).stores, 1);
        assert_eq!(shared.table_stats(0).pvcache_hits, 1);
    }

    #[test]
    fn cold_lookup_pays_memory_latency_and_issues_predictor_traffic() {
        let (mut mem, mut shared, mut pht) = setup();
        let lookup = pht.lookup(index_for(0x4000, 3), &mut mem, Some(&mut shared), 0);
        assert!(lookup.pattern.is_none());
        assert!(lookup.ready_at >= 400, "cold set must come from DRAM");
        assert_eq!(mem.stats().l2_requests.predictor, 1);
    }

    #[test]
    fn evicted_dirty_sets_survive_via_write_through() {
        let (mut mem, mut shared, mut pht) = setup();
        let pattern = SpatialPattern::from_offsets([1, 2]);
        let capacity = shared.cache().capacity();
        for i in 0..(capacity + 4) as u64 {
            pht.store(
                index_for(0x4000 + i * 4, 1),
                pattern,
                &mut mem,
                Some(&mut shared),
                i * 1000,
            );
        }
        assert!(shared.table_stats(0).dirty_writebacks >= 1);
        let lookup = pht.lookup(index_for(0x4000, 1), &mut mem, Some(&mut shared), 1_000_000);
        assert_eq!(lookup.pattern, Some(pattern));
    }

    #[test]
    fn labels_and_budget_name_the_shared_cache() {
        let (_, _, pht) = setup();
        assert_eq!(PatternStorage::label(&pht), "shPV-8");
        // Same pooled budget as a dedicated PV-8 proxy at SMS widths.
        assert_eq!(pht.dedicated_storage_bytes(), 889);
    }

    #[test]
    fn the_adapter_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let (_, _, pht) = setup();
        assert_send(&pht);
    }
}
