//! SMS prefetcher statistics.

/// Counters maintained by the SMS engine.
///
/// Coverage and over-prediction percentages (Figure 4/5) are computed from
/// the L1 cache statistics kept by `pv-mem`; the counters here describe the
/// predictor's own behaviour (trigger rate, PHT hit rate, prefetch volume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmsStats {
    /// Data accesses observed by the prefetcher.
    pub accesses_observed: u64,
    /// Spatial-generation triggers (first access to an inactive region).
    pub triggers: u64,
    /// PHT lookups performed (one per trigger).
    pub pht_lookups: u64,
    /// PHT lookups that found a pattern.
    pub pht_hits: u64,
    /// PHT lookups that missed.
    pub pht_misses: u64,
    /// Generations whose patterns were stored into the PHT.
    pub patterns_stored: u64,
    /// Prefetch candidates generated from PHT hits (before the cache filters
    /// out already-resident blocks).
    pub prefetch_candidates: u64,
}

impl SmsStats {
    /// Adds `other`'s counters into `self` (aggregation across cores).
    pub fn merge(&mut self, other: &SmsStats) {
        let SmsStats {
            accesses_observed,
            triggers,
            pht_lookups,
            pht_hits,
            pht_misses,
            patterns_stored,
            prefetch_candidates,
        } = *other;
        self.accesses_observed += accesses_observed;
        self.triggers += triggers;
        self.pht_lookups += pht_lookups;
        self.pht_hits += pht_hits;
        self.pht_misses += pht_misses;
        self.patterns_stored += patterns_stored;
        self.prefetch_candidates += prefetch_candidates;
    }

    /// PHT hit ratio in [0, 1]; zero when no lookups were performed.
    pub fn pht_hit_ratio(&self) -> f64 {
        if self.pht_lookups == 0 {
            0.0
        } else {
            self.pht_hits as f64 / self.pht_lookups as f64
        }
    }

    /// Mean prefetch candidates per PHT hit.
    pub fn candidates_per_hit(&self) -> f64 {
        if self.pht_hits == 0 {
            0.0
        } else {
            self.prefetch_candidates as f64 / self.pht_hits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let stats = SmsStats::default();
        assert_eq!(stats.pht_hit_ratio(), 0.0);
        assert_eq!(stats.candidates_per_hit(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let stats = SmsStats {
            pht_lookups: 10,
            pht_hits: 4,
            pht_misses: 6,
            prefetch_candidates: 20,
            ..SmsStats::default()
        };
        assert!((stats.pht_hit_ratio() - 0.4).abs() < 1e-12);
        assert!((stats.candidates_per_hit() - 5.0).abs() < 1e-12);
    }
}
