//! PHT indexing: from a trigger access to a table index.
//!
//! The paper indexes the PHT with the concatenation of 16 bits of the
//! trigger's program counter and the 5-bit block offset of the trigger
//! within its 32-block spatial region, for a 21-bit index. The low bits of
//! the index select the set; the remaining bits are the tag.

/// Number of PC bits used in the PHT index (paper value).
pub const PC_INDEX_BITS: u32 = 16;
/// Number of block-offset bits used in the PHT index (32-block regions).
pub const OFFSET_INDEX_BITS: u32 = 5;
/// Total index width.
pub const INDEX_BITS: u32 = PC_INDEX_BITS + OFFSET_INDEX_BITS;

/// The trigger of a spatial generation: the PC of the first access to the
/// region and the block offset of that access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerKey {
    /// Program counter of the triggering instruction.
    pub pc: u64,
    /// Block offset of the trigger within its spatial region (0..32).
    pub offset: u32,
}

impl TriggerKey {
    /// Creates a trigger key.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 32`.
    pub fn new(pc: u64, offset: u32) -> Self {
        assert!(offset < 32, "trigger offset {offset} out of range");
        TriggerKey { pc, offset }
    }

    /// The 21-bit PHT index for this trigger.
    pub fn index(self) -> PhtIndex {
        PhtIndex::from_trigger(self)
    }
}

/// A 21-bit index into the pattern history table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhtIndex(u32);

impl PhtIndex {
    /// Builds the index from a trigger key: 16 PC bits (the instruction-word
    /// address) concatenated with the 5 offset bits.
    pub fn from_trigger(key: TriggerKey) -> Self {
        let pc_bits = ((key.pc >> 2) as u32) & ((1 << PC_INDEX_BITS) - 1);
        PhtIndex((pc_bits << OFFSET_INDEX_BITS) | (key.offset & ((1 << OFFSET_INDEX_BITS) - 1)))
    }

    /// Builds an index from its raw 21-bit value (masked to width).
    pub fn from_raw(raw: u32) -> Self {
        PhtIndex(raw & ((1 << INDEX_BITS) - 1))
    }

    /// The raw 21-bit value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The set index for a table with `sets` sets (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or is zero.
    pub fn set_index(self, sets: usize) -> usize {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "PHT set count must be a power of two"
        );
        (self.0 as usize) & (sets - 1)
    }

    /// The tag for a table with `sets` sets: the index bits above the set
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or is zero.
    pub fn tag(self, sets: usize) -> u32 {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "PHT set count must be a power of two"
        );
        self.0 >> sets.trailing_zeros()
    }

    /// Number of tag bits for a table with `sets` sets.
    pub fn tag_bits(sets: usize) -> u32 {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "PHT set count must be a power of two"
        );
        INDEX_BITS - sets.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_21_bits() {
        let key = TriggerKey::new(u64::MAX, 31);
        assert!(key.index().raw() < (1 << INDEX_BITS));
    }

    #[test]
    fn different_offsets_produce_different_indices() {
        let a = TriggerKey::new(0x1000, 3).index();
        let b = TriggerKey::new(0x1000, 4).index();
        assert_ne!(a, b);
    }

    #[test]
    fn different_pcs_produce_different_indices() {
        let a = TriggerKey::new(0x1000, 3).index();
        let b = TriggerKey::new(0x1004, 3).index();
        assert_ne!(a, b);
    }

    #[test]
    fn set_and_tag_reconstruct_index() {
        let sets = 1024;
        for raw in [0u32, 1, 12345, (1 << INDEX_BITS) - 1] {
            let index = PhtIndex::from_raw(raw);
            let reconstructed =
                (index.tag(sets) << sets.trailing_zeros()) | index.set_index(sets) as u32;
            assert_eq!(reconstructed, index.raw());
        }
    }

    #[test]
    fn tag_bits_match_paper_geometries() {
        // 1K sets -> 10 set bits -> 11 tag bits (paper Section 3.2.1).
        assert_eq!(PhtIndex::tag_bits(1024), 11);
        // 16 sets -> 4 set bits -> 17 tag bits (paper Table 3 tags).
        assert_eq!(PhtIndex::tag_bits(16), 17);
        assert_eq!(PhtIndex::tag_bits(8), 18);
    }

    #[test]
    fn set_index_is_bounded() {
        for raw in 0..4096u32 {
            assert!(PhtIndex::from_raw(raw).set_index(16) < 16);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        PhtIndex::from_raw(0).set_index(12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_offset_panics() {
        TriggerKey::new(0, 33);
    }
}
