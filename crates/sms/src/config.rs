//! SMS configuration and PHT geometries, including the storage accounting
//! behind the paper's Table 3.

use crate::index::{PhtIndex, INDEX_BITS};
use crate::pattern::MAX_REGION_BLOCKS;

/// Geometry of the pattern history table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhtGeometry {
    /// A set-associative table with `sets` sets of `ways` ways.
    Finite {
        /// Number of sets (power of two).
        sets: usize,
        /// Associativity.
        ways: usize,
    },
    /// An unbounded table that never evicts (the paper's "Infinite" bar).
    Infinite,
}

impl PhtGeometry {
    /// A finite geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn finite(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "PHT sets must be a power of two"
        );
        assert!(ways > 0, "PHT ways must be positive");
        PhtGeometry::Finite { sets, ways }
    }

    /// The unbounded geometry.
    pub fn infinite() -> Self {
        PhtGeometry::Infinite
    }

    /// The original SMS configuration: 1K sets, 16 ways (86 KB).
    pub fn paper_1k_16a() -> Self {
        Self::finite(1024, 16)
    }

    /// The virtualization-friendly configuration: 1K sets, 11 ways (59 KB),
    /// chosen so one set packs into a 64-byte block.
    pub fn paper_1k_11a() -> Self {
        Self::finite(1024, 11)
    }

    /// The small dedicated table with 16 sets of 11 ways (~1.2 KB).
    pub fn small_16_11a() -> Self {
        Self::finite(16, 11)
    }

    /// The small dedicated table with 8 sets of 11 ways (~0.6 KB).
    pub fn small_8_11a() -> Self {
        Self::finite(8, 11)
    }

    /// All intermediate 11-way geometries swept by Figure 5, largest first,
    /// plus the two 16-way reference points.
    pub fn figure5_sweep() -> Vec<PhtGeometry> {
        let mut configs = vec![PhtGeometry::Infinite, Self::paper_1k_16a()];
        let mut sets = 1024;
        while sets >= 8 {
            configs.push(Self::finite(sets, 11));
            sets /= 2;
        }
        configs
    }

    /// Number of entries (`None` for the infinite table).
    pub fn entries(self) -> Option<usize> {
        match self {
            PhtGeometry::Finite { sets, ways } => Some(sets * ways),
            PhtGeometry::Infinite => None,
        }
    }

    /// A short label matching the paper's figure axis (e.g. `"1K-11a"`).
    pub fn label(self) -> String {
        match self {
            PhtGeometry::Infinite => "Infinite".to_owned(),
            PhtGeometry::Finite { sets, ways } => {
                if sets >= 1024 && sets % 1024 == 0 {
                    format!("{}K-{}a", sets / 1024, ways)
                } else {
                    format!("{sets}-{ways}a")
                }
            }
        }
    }

    /// Tag storage in bytes for a dedicated on-chip table of this geometry.
    pub fn tag_bytes(self) -> Option<u64> {
        match self {
            PhtGeometry::Infinite => None,
            PhtGeometry::Finite { sets, ways } => {
                let tag_bits = u64::from(PhtIndex::tag_bits(sets));
                Some((tag_bits * (sets * ways) as u64).div_ceil(8))
            }
        }
    }

    /// Pattern storage in bytes for a dedicated on-chip table (32 bits per
    /// entry for 32-block regions).
    pub fn pattern_bytes(self) -> Option<u64> {
        self.entries()
            .map(|entries| (u64::from(MAX_REGION_BLOCKS) * entries as u64).div_ceil(8))
    }

    /// Total dedicated on-chip storage in bytes (tags + patterns).
    pub fn total_bytes(self) -> Option<u64> {
        Some(self.tag_bytes()? + self.pattern_bytes()?)
    }

    /// Bits per entry when the entry is stored in memory by the virtualized
    /// design: the full tag for a 1K-set table (11 bits) plus the 32-bit
    /// pattern, i.e. the 43 bits per entry of the paper's Figure 3.
    pub fn virtualized_entry_bits(self) -> Option<u32> {
        match self {
            PhtGeometry::Infinite => None,
            PhtGeometry::Finite { sets, .. } => {
                Some(INDEX_BITS - sets.trailing_zeros() + MAX_REGION_BLOCKS)
            }
        }
    }
}

/// Configuration of the SMS prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmsConfig {
    /// Blocks per spatial region (32 in the paper).
    pub region_blocks: u32,
    /// Entries in the AGT filter table (32 in the paper).
    pub filter_entries: usize,
    /// Entries in the AGT accumulation table (64 in the paper).
    pub accumulation_entries: usize,
    /// Pattern-history-table geometry.
    pub pht: PhtGeometry,
    /// Lookup latency of a dedicated on-chip PHT in cycles.
    pub dedicated_lookup_latency: u64,
}

impl SmsConfig {
    /// The paper's tuned AGT with a given PHT geometry.
    pub fn with_pht(pht: PhtGeometry) -> Self {
        SmsConfig {
            region_blocks: 32,
            filter_entries: 32,
            accumulation_entries: 64,
            pht,
            dedicated_lookup_latency: 1,
        }
    }

    /// Original SMS: 1K sets x 16 ways.
    pub fn paper_1k_16a() -> Self {
        Self::with_pht(PhtGeometry::paper_1k_16a())
    }

    /// The configuration chosen for virtualization: 1K sets x 11 ways.
    pub fn paper_1k_11a() -> Self {
        Self::with_pht(PhtGeometry::paper_1k_11a())
    }

    /// Small dedicated table, 16 sets x 11 ways.
    pub fn small_16_11a() -> Self {
        Self::with_pht(PhtGeometry::small_16_11a())
    }

    /// Small dedicated table, 8 sets x 11 ways.
    pub fn small_8_11a() -> Self {
        Self::with_pht(PhtGeometry::small_8_11a())
    }

    /// Unbounded PHT.
    pub fn infinite() -> Self {
        Self::with_pht(PhtGeometry::infinite())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the region size exceeds the 32-block pattern representation
    /// or any table is empty.
    pub fn assert_valid(&self) {
        assert!(
            self.region_blocks > 0 && self.region_blocks <= MAX_REGION_BLOCKS,
            "region_blocks must be in 1..=32"
        );
        assert!(
            self.region_blocks.is_power_of_two(),
            "region_blocks must be a power of two"
        );
        assert!(self.filter_entries > 0, "filter table must have entries");
        assert!(
            self.accumulation_entries > 0,
            "accumulation table must have entries"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_storage_matches_paper() {
        // Table 3 of the paper: 1K-16 = 22 KB tags + 64 KB patterns = 86 KB.
        let big = PhtGeometry::paper_1k_16a();
        assert_eq!(big.tag_bytes(), Some(22 * 1024 + 512 - 512)); // 22528 B = 22 KB
        assert_eq!(big.pattern_bytes(), Some(64 * 1024));
        assert_eq!(big.total_bytes(), Some(86 * 1024 + 512 - 512));
        // 1K-11 = 15.125 KB tags + 44 KB patterns = 59.125 KB.
        let eleven = PhtGeometry::paper_1k_11a();
        assert_eq!(eleven.tag_bytes(), Some(15_488));
        assert_eq!(eleven.pattern_bytes(), Some(45_056));
        assert_eq!(eleven.total_bytes(), Some(60_544));
    }

    #[test]
    fn small_table_storage_is_about_a_kilobyte() {
        let small = PhtGeometry::small_16_11a();
        let total = small.total_bytes().unwrap();
        assert!(
            total > 800 && total < 1600,
            "16-11a should be ~1.2 KB, got {total}"
        );
        let tiny = PhtGeometry::small_8_11a();
        let total = tiny.total_bytes().unwrap();
        assert!(
            total > 400 && total < 800,
            "8-11a should be ~0.6 KB, got {total}"
        );
    }

    #[test]
    fn virtualized_entry_is_43_bits_for_1k_sets() {
        assert_eq!(
            PhtGeometry::paper_1k_11a().virtualized_entry_bits(),
            Some(43)
        );
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(PhtGeometry::paper_1k_16a().label(), "1K-16a");
        assert_eq!(PhtGeometry::small_8_11a().label(), "8-11a");
        assert_eq!(PhtGeometry::infinite().label(), "Infinite");
        assert_eq!(PhtGeometry::finite(256, 11).label(), "256-11a");
    }

    #[test]
    fn figure5_sweep_covers_all_intermediate_sizes() {
        let sweep = PhtGeometry::figure5_sweep();
        assert_eq!(sweep.len(), 2 + 8); // Infinite, 1K-16a, then 1K..8 sets at 11 ways.
        assert_eq!(sweep[0], PhtGeometry::Infinite);
        assert_eq!(*sweep.last().unwrap(), PhtGeometry::small_8_11a());
    }

    #[test]
    fn entries_counts() {
        assert_eq!(PhtGeometry::paper_1k_16a().entries(), Some(16384));
        assert_eq!(PhtGeometry::paper_1k_11a().entries(), Some(11264));
        assert_eq!(PhtGeometry::infinite().entries(), None);
    }

    #[test]
    fn configs_are_valid() {
        SmsConfig::paper_1k_16a().assert_valid();
        SmsConfig::paper_1k_11a().assert_valid();
        SmsConfig::small_16_11a().assert_valid();
        SmsConfig::small_8_11a().assert_valid();
        SmsConfig::infinite().assert_valid();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        PhtGeometry::finite(12, 11);
    }
}
