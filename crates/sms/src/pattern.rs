//! Spatial patterns: which blocks of a region a generation accessed.

use std::fmt;

/// Maximum number of blocks per spatial region supported by the bit-vector
/// representation.
pub const MAX_REGION_BLOCKS: u32 = 32;

/// A bit-vector over the blocks of one spatial region: bit *i* is set when
/// block *i* of the region was (or is predicted to be) accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpatialPattern(u32);

impl SpatialPattern {
    /// The empty pattern.
    pub fn empty() -> Self {
        SpatialPattern(0)
    }

    /// A pattern with only `offset` set.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 32`.
    pub fn single(offset: u32) -> Self {
        assert!(offset < MAX_REGION_BLOCKS, "offset {offset} out of range");
        SpatialPattern(1 << offset)
    }

    /// Builds a pattern from raw bits.
    pub fn from_bits(bits: u32) -> Self {
        SpatialPattern(bits)
    }

    /// Builds a pattern from an iterator of block offsets.
    ///
    /// # Panics
    ///
    /// Panics if any offset is `>= 32`.
    pub fn from_offsets<I: IntoIterator<Item = u32>>(offsets: I) -> Self {
        let mut pattern = SpatialPattern::empty();
        for offset in offsets {
            pattern.set(offset);
        }
        pattern
    }

    /// The raw bit representation.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Marks block `offset` as accessed.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 32`.
    pub fn set(&mut self, offset: u32) {
        assert!(offset < MAX_REGION_BLOCKS, "offset {offset} out of range");
        self.0 |= 1 << offset;
    }

    /// Whether block `offset` is part of the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 32`.
    pub fn contains(self, offset: u32) -> bool {
        assert!(offset < MAX_REGION_BLOCKS, "offset {offset} out of range");
        self.0 & (1 << offset) != 0
    }

    /// Number of blocks in the pattern.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the pattern is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the block offsets in the pattern, lowest first.
    pub fn offsets(self) -> impl Iterator<Item = u32> {
        (0..MAX_REGION_BLOCKS).filter(move |&bit| self.0 & (1 << bit) != 0)
    }

    /// Returns the pattern with `offset` removed (used to exclude the trigger
    /// block from the prefetch stream).
    pub fn without(self, offset: u32) -> Self {
        assert!(offset < MAX_REGION_BLOCKS, "offset {offset} out of range");
        SpatialPattern(self.0 & !(1 << offset))
    }

    /// Union of two patterns.
    pub fn union(self, other: Self) -> Self {
        SpatialPattern(self.0 | other.0)
    }

    /// Number of blocks present in both patterns (used to measure prediction
    /// accuracy in tests and ablations).
    pub fn overlap(self, other: Self) -> u32 {
        (self.0 & other.0).count_ones()
    }
}

impl fmt::Display for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032b}", self.0)
    }
}

impl fmt::Binary for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pattern_has_no_blocks() {
        let p = SpatialPattern::empty();
        assert!(p.is_empty());
        assert_eq!(p.count(), 0);
        assert_eq!(p.offsets().count(), 0);
    }

    #[test]
    fn set_and_contains_round_trip() {
        let mut p = SpatialPattern::empty();
        p.set(0);
        p.set(31);
        p.set(7);
        assert!(p.contains(0));
        assert!(p.contains(31));
        assert!(p.contains(7));
        assert!(!p.contains(1));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn from_offsets_matches_manual_sets() {
        let p = SpatialPattern::from_offsets([3, 5, 8]);
        assert_eq!(p, SpatialPattern::from_bits((1 << 3) | (1 << 5) | (1 << 8)));
        let collected: Vec<u32> = p.offsets().collect();
        assert_eq!(collected, vec![3, 5, 8]);
    }

    #[test]
    fn without_removes_only_requested_offset() {
        let p = SpatialPattern::from_offsets([1, 2, 3]);
        let q = p.without(2);
        assert!(!q.contains(2));
        assert!(q.contains(1));
        assert!(q.contains(3));
        assert_eq!(p.without(10), p);
    }

    #[test]
    fn union_and_overlap() {
        let a = SpatialPattern::from_offsets([1, 2]);
        let b = SpatialPattern::from_offsets([2, 3]);
        assert_eq!(a.union(b), SpatialPattern::from_offsets([1, 2, 3]));
        assert_eq!(a.overlap(b), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SpatialPattern::single(0)).len(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_offset_panics() {
        SpatialPattern::single(32);
    }
}
