//! The Active Generation Table: the filter and accumulation tables that
//! record spatial patterns while a region generation is active.
//!
//! The filter table holds regions that have seen exactly one access (their
//! trigger); only once a second, different block is accessed does the region
//! move to the accumulation table, where the spatial pattern is built. When
//! a generation ends — any block accessed during the generation is evicted
//! or invalidated from the L1 — the accumulated pattern is handed to the
//! pattern history table.

use crate::index::TriggerKey;
use crate::pattern::SpatialPattern;
use pv_mem::{BlockAddr, RegionAddr};
use std::collections::VecDeque;

/// A generation trigger observed by the AGT: the first access to an inactive
/// region. The prefetcher responds by looking up the PHT with `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerInfo {
    /// The PHT key for this trigger.
    pub key: TriggerKey,
    /// The region being activated.
    pub region: RegionAddr,
}

/// A generation that has ended; its pattern should be stored in the PHT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedGeneration {
    /// The PHT key of the generation's trigger.
    pub key: TriggerKey,
    /// The recorded spatial pattern (always contains at least two blocks).
    pub pattern: SpatialPattern,
}

/// Everything that resulted from feeding one event to the AGT.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgtUpdate {
    /// A new generation started with this trigger (look up the PHT and
    /// prefetch).
    pub trigger: Option<TriggerInfo>,
    /// Generations that ended and whose patterns must be stored in the PHT.
    pub completed: Vec<CompletedGeneration>,
}

impl AgtUpdate {
    /// Empties the update for reuse, keeping the `completed` allocation —
    /// callers on the per-record hot path hold one update and clear it
    /// between events instead of constructing a fresh one.
    pub fn clear(&mut self) {
        self.trigger = None;
        self.completed.clear();
    }
}

#[derive(Debug, Clone)]
struct FilterEntry {
    region: RegionAddr,
    key: TriggerKey,
}

#[derive(Debug, Clone)]
struct AccumulationEntry {
    region: RegionAddr,
    key: TriggerKey,
    pattern: SpatialPattern,
}

/// The AGT: a small filter table plus an accumulation table, both fully
/// associative with FIFO replacement (the original SMS design uses small
/// fully-associative structures; the exact replacement policy is not
/// performance-critical because entries normally leave through generation
/// completion, not capacity eviction).
#[derive(Debug, Clone)]
pub struct ActiveGenerationTable {
    region_blocks: u32,
    filter_capacity: usize,
    accumulation_capacity: usize,
    filter: VecDeque<FilterEntry>,
    accumulation: VecDeque<AccumulationEntry>,
    /// Capacity evictions from the accumulation table (reported for
    /// diagnostics; these also flush their pattern to the PHT).
    capacity_evictions: u64,
}

impl ActiveGenerationTable {
    /// Creates an AGT with the given capacities for regions of
    /// `region_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero or `region_blocks` is not a power of
    /// two in `1..=32`.
    pub fn new(filter_capacity: usize, accumulation_capacity: usize, region_blocks: u32) -> Self {
        assert!(filter_capacity > 0, "filter table needs capacity");
        assert!(
            accumulation_capacity > 0,
            "accumulation table needs capacity"
        );
        assert!(
            region_blocks.is_power_of_two() && region_blocks <= 32 && region_blocks > 0,
            "region_blocks must be a power of two in 1..=32"
        );
        ActiveGenerationTable {
            region_blocks,
            filter_capacity,
            accumulation_capacity,
            filter: VecDeque::new(),
            accumulation: VecDeque::new(),
            capacity_evictions: 0,
        }
    }

    /// Number of regions currently tracked (filter + accumulation).
    pub fn active_regions(&self) -> usize {
        self.filter.len() + self.accumulation.len()
    }

    /// Capacity evictions from the accumulation table so far.
    pub fn capacity_evictions(&self) -> u64 {
        self.capacity_evictions
    }

    /// Feeds one L1 data access (hit or miss) to the AGT.
    ///
    /// `pc` is the program counter of the access and `block` the block
    /// touched. Returns the trigger/completion events the prefetcher must
    /// act on.
    pub fn on_access(&mut self, pc: u64, block: BlockAddr, update: &mut AgtUpdate) {
        let region = block.region(self.region_blocks);
        let offset = block.region_offset(self.region_blocks);

        // Already accumulating: just record the block.
        if let Some(entry) = self.accumulation.iter_mut().find(|e| e.region == region) {
            entry.pattern.set(offset);
            return;
        }

        // In the filter table: a second access promotes the region to the
        // accumulation table (unless it is a repeat of the trigger block).
        if let Some(pos) = self.filter.iter().position(|e| e.region == region) {
            let trigger_offset = self.filter[pos].key.offset;
            if trigger_offset == offset {
                return;
            }
            let filter_entry = self.filter.remove(pos).expect("position was just found");
            let mut pattern = SpatialPattern::single(trigger_offset);
            pattern.set(offset);
            self.insert_accumulation(
                AccumulationEntry {
                    region,
                    key: filter_entry.key,
                    pattern,
                },
                update,
            );
            return;
        }

        // Unknown region: this access is a trigger.
        let key = TriggerKey::new(pc, offset);
        if self.filter.len() >= self.filter_capacity {
            // Single-access regions are simply dropped when the filter
            // overflows; they carry no pattern worth storing.
            self.filter.pop_front();
        }
        self.filter.push_back(FilterEntry { region, key });
        update.trigger = Some(TriggerInfo { key, region });
    }

    fn insert_accumulation(&mut self, entry: AccumulationEntry, update: &mut AgtUpdate) {
        if self.accumulation.len() >= self.accumulation_capacity {
            if let Some(evicted) = self.accumulation.pop_front() {
                self.capacity_evictions += 1;
                update.completed.push(CompletedGeneration {
                    key: evicted.key,
                    pattern: evicted.pattern,
                });
            }
        }
        self.accumulation.push_back(entry);
    }

    /// Notifies the AGT that `block` left the L1 (eviction or invalidation).
    /// If the block belongs to an active generation, that generation ends.
    pub fn on_l1_eviction(&mut self, block: BlockAddr, update: &mut AgtUpdate) {
        let region = block.region(self.region_blocks);
        let offset = block.region_offset(self.region_blocks);
        if let Some(pos) = self.accumulation.iter().position(|e| e.region == region) {
            // The generation ends only if the evicted block was part of it.
            if self.accumulation[pos].pattern.contains(offset) {
                let entry = self.accumulation.remove(pos).expect("position was just found");
                update.completed.push(CompletedGeneration {
                    key: entry.key,
                    pattern: entry.pattern,
                });
            }
            return;
        }
        if let Some(pos) = self.filter.iter().position(|e| e.region == region) {
            if self.filter[pos].key.offset == offset {
                // A single-access generation ended; nothing worth storing.
                self.filter.remove(pos);
            }
        }
    }

    /// Ends every active generation, returning their patterns (used when a
    /// simulation window finishes so learned patterns are not lost).
    pub fn flush(&mut self) -> Vec<CompletedGeneration> {
        self.filter.clear();
        self.accumulation
            .drain(..)
            .map(|entry| CompletedGeneration {
                key: entry.key,
                pattern: entry.pattern,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agt() -> ActiveGenerationTable {
        ActiveGenerationTable::new(32, 64, 32)
    }

    fn block(region: u64, offset: u32) -> BlockAddr {
        RegionAddr::new(region).block_at(offset, 32)
    }

    #[test]
    fn first_access_is_a_trigger() {
        let mut agt = agt();
        let mut update = AgtUpdate::default();
        agt.on_access(0x400, block(5, 3), &mut update);
        let trigger = update.trigger.expect("first access must trigger");
        assert_eq!(trigger.key, TriggerKey::new(0x400, 3));
        assert_eq!(trigger.region, RegionAddr::new(5));
        assert!(update.completed.is_empty());
    }

    #[test]
    fn second_access_to_same_block_is_not_a_trigger() {
        let mut agt = agt();
        let mut update = AgtUpdate::default();
        agt.on_access(0x400, block(5, 3), &mut update);
        let mut update = AgtUpdate::default();
        agt.on_access(0x404, block(5, 3), &mut update);
        assert!(update.trigger.is_none());
        assert!(update.completed.is_empty());
    }

    #[test]
    fn eviction_of_accumulated_block_completes_generation() {
        let mut agt = agt();
        let mut update = AgtUpdate::default();
        agt.on_access(0x400, block(7, 1), &mut update);
        agt.on_access(0x404, block(7, 2), &mut update);
        agt.on_access(0x408, block(7, 9), &mut update);
        let mut update = AgtUpdate::default();
        agt.on_l1_eviction(block(7, 2), &mut update);
        assert_eq!(update.completed.len(), 1);
        let completed = &update.completed[0];
        assert_eq!(completed.key, TriggerKey::new(0x400, 1));
        assert_eq!(completed.pattern, SpatialPattern::from_offsets([1, 2, 9]));
        assert_eq!(agt.active_regions(), 0);
    }

    #[test]
    fn eviction_of_untouched_block_does_not_end_generation() {
        let mut agt = agt();
        let mut update = AgtUpdate::default();
        agt.on_access(0x400, block(7, 1), &mut update);
        agt.on_access(0x404, block(7, 2), &mut update);
        let mut update = AgtUpdate::default();
        agt.on_l1_eviction(block(7, 30), &mut update);
        assert!(update.completed.is_empty());
        assert_eq!(agt.active_regions(), 1);
    }

    #[test]
    fn single_access_generations_are_never_stored() {
        let mut agt = agt();
        let mut update = AgtUpdate::default();
        agt.on_access(0x400, block(3, 4), &mut update);
        let mut update = AgtUpdate::default();
        agt.on_l1_eviction(block(3, 4), &mut update);
        assert!(update.completed.is_empty());
        assert_eq!(agt.active_regions(), 0);
    }

    #[test]
    fn filter_overflow_drops_oldest_single_access_region() {
        let mut agt = ActiveGenerationTable::new(2, 4, 32);
        let mut update = AgtUpdate::default();
        for region in 0..3 {
            agt.on_access(0x400, block(region, 0), &mut update);
        }
        // Region 0 was dropped from the filter; a new access to it triggers
        // again.
        let mut update = AgtUpdate::default();
        agt.on_access(0x500, block(0, 1), &mut update);
        assert!(update.trigger.is_some());
    }

    #[test]
    fn accumulation_overflow_flushes_pattern_to_pht() {
        let mut agt = ActiveGenerationTable::new(8, 2, 32);
        let mut update = AgtUpdate::default();
        // Create three two-access generations; the third forces the first out.
        for region in 0..3u64 {
            agt.on_access(0x400, block(region, 0), &mut update);
            agt.on_access(0x404, block(region, 1), &mut update);
        }
        assert_eq!(agt.capacity_evictions(), 1);
        assert!(update
            .completed
            .iter()
            .any(|c| c.pattern == SpatialPattern::from_offsets([0, 1])));
    }

    #[test]
    fn flush_returns_all_accumulating_patterns() {
        let mut agt = agt();
        let mut update = AgtUpdate::default();
        agt.on_access(0x400, block(1, 0), &mut update);
        agt.on_access(0x404, block(1, 5), &mut update);
        agt.on_access(0x400, block(2, 0), &mut update);
        let flushed = agt.flush();
        assert_eq!(
            flushed.len(),
            1,
            "only multi-access generations are flushed"
        );
        assert_eq!(agt.active_regions(), 0);
    }
}
