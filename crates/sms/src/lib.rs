//! # pv-sms — Spatial Memory Streaming prefetcher
//!
//! A from-scratch model of the Spatial Memory Streaming (SMS) data
//! prefetcher (Somogyi et al., ISCA 2006), the predictor the Predictor
//! Virtualization paper virtualizes as its case study.
//!
//! SMS splits memory into fixed-size *spatial regions* (32 cache blocks in
//! the paper). While a region is *active* — between its first (trigger)
//! access and the moment any block accessed during the generation leaves the
//! L1 — the Active Generation Table (AGT) records which blocks were touched
//! as a bit-vector *spatial pattern*. When the generation ends, the pattern
//! is stored in the Pattern History Table (PHT), indexed by the trigger's
//! program counter and block offset. The next time the same trigger recurs,
//! the stored pattern predicts which blocks the program will touch, and the
//! prefetcher streams them into the L1.
//!
//! The PHT is the structure Predictor Virtualization moves into the memory
//! hierarchy, so its storage is abstracted behind the [`PatternStorage`]
//! trait: [`DedicatedPht`] and [`InfinitePht`] are conventional on-chip
//! tables, and [`VirtualizedPht`] plugs SMS into the generic `pv-core`
//! substrate by implementing `pv_core::PvEntry` for [`SmsEntry`] (the
//! 43-bit packed entry of Figure 3a) and adapting `PvProxy<SmsEntry>` to
//! `PatternStorage`. The engine is identical in all three configurations.
//!
//! # Example
//!
//! ```
//! use pv_mem::{HierarchyConfig, MemoryHierarchy};
//! use pv_sms::{DedicatedPht, PhtGeometry, SmsConfig, SmsPrefetcher};
//!
//! let config = SmsConfig::paper_1k_11a();
//! let storage = DedicatedPht::new(PhtGeometry::finite(1024, 11), &config);
//! let mut sms = SmsPrefetcher::new(config, Box::new(storage));
//! let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::paper_baseline(1));
//!
//! // Feed an access; a cold trigger produces no prefetches yet.
//! let actions = sms.on_data_access(0x400, 0x10_0000, &mut hierarchy, None, 0);
//! assert!(actions.prefetches.is_empty());
//! ```
//!
//! Running the same engine over the virtualized PHT only changes the
//! storage that is passed in:
//!
//! ```
//! use pv_core::PvConfig;
//! use pv_mem::{HierarchyConfig, MemoryHierarchy};
//! use pv_sms::{SmsConfig, SmsPrefetcher, VirtualizedPht};
//!
//! let hierarchy_config = HierarchyConfig::paper_baseline(4);
//! let mut hierarchy = MemoryHierarchy::new(hierarchy_config);
//! let pht = VirtualizedPht::new(0, PvConfig::pv8(), hierarchy_config.pv_regions.core_base(0));
//! let mut sms = SmsPrefetcher::new(SmsConfig::paper_1k_11a(), Box::new(pht));
//! let response = sms.on_data_access(0x400, 0x10_0000, &mut hierarchy, None, 0);
//! assert!(response.prefetches.is_empty()); // nothing learned yet
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agt;
pub mod cohabit;
pub mod config;
pub mod index;
pub mod pattern;
pub mod pht;
pub mod prefetcher;
pub mod stats;
pub mod virtualized;

pub use agt::{ActiveGenerationTable, AgtUpdate, CompletedGeneration, TriggerInfo};
pub use cohabit::SharedVirtualizedPht;
pub use config::{PhtGeometry, SmsConfig};
pub use index::{PhtIndex, TriggerKey};
pub use pattern::SpatialPattern;
pub use pht::{build_storage, DedicatedPht, InfinitePht, PatternLookup, PatternStorage};
pub use prefetcher::{AccessDecision, EngineResponse, PrefetchAction, SmsPrefetcher};
pub use stats::SmsStats;
pub use virtualized::{SmsEntry, VirtualizedPht};
