//! Pattern-history-table storage backends.
//!
//! The SMS engine talks to its PHT through the [`PatternStorage`] trait so
//! that the same engine runs unmodified over:
//!
//! * a [`DedicatedPht`] — the conventional on-chip set-associative table,
//! * an [`InfinitePht`] — the unbounded table used for the "Infinite" bars
//!   of Figure 4/5, and
//! * the virtualized PHT provided by the `pv-core` crate, which stores the
//!   table in the memory hierarchy behind a tiny PVCache.
//!
//! Lookups return both the pattern (if any) and the cycle at which the
//! prediction becomes available, because a virtualized lookup may have to
//! fetch its PHT set from the L2 or from memory.

use crate::config::{PhtGeometry, SmsConfig};
use crate::index::PhtIndex;
use crate::pattern::SpatialPattern;
use pv_core::SharedPvProxy;
use pv_mem::{MemoryHierarchy, ReplacementKind, SetAssociative};
use std::collections::HashMap;

/// Result of a PHT lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternLookup {
    /// The stored pattern, or `None` on a predictor miss.
    pub pattern: Option<SpatialPattern>,
    /// Cycle at which the prediction is available to the prefetch engine.
    pub ready_at: u64,
}

/// Storage backend for the pattern history table.
///
/// Implementations may use the memory hierarchy (`mem`) to model the cost of
/// retrieving or spilling predictor state; the dedicated on-chip tables
/// ignore it. Backends registered with a per-core [`SharedPvProxy`] receive
/// the proxy by `&mut` reference (`shared`) on every call — the proxy is
/// owned further up the engine stack (by the composite prefetcher), which
/// keeps the whole simulator `Send`. Self-contained backends ignore it.
///
/// `Send` is a supertrait so a boxed storage can cross threads together with
/// the `System` that owns it (the fleet driver depends on this).
pub trait PatternStorage: std::fmt::Debug + Send {
    /// Looks up the pattern stored for `index`.
    fn lookup(
        &mut self,
        index: PhtIndex,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> PatternLookup;

    /// Stores `pattern` for `index`, replacing any previous pattern.
    fn store(
        &mut self,
        index: PhtIndex,
        pattern: SpatialPattern,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    );

    /// Human-readable label used in experiment reports (e.g. `"1K-11a"`).
    fn label(&self) -> String;

    /// Dedicated on-chip storage in bytes required by this backend.
    fn dedicated_storage_bytes(&self) -> u64;

    /// Number of patterns currently retained (diagnostic).
    fn resident_patterns(&self) -> usize;

    /// Access to the concrete backend type, so callers holding a boxed
    /// storage (e.g. the simulator) can retrieve backend-specific statistics
    /// such as the PVProxy's PVCache hit rate.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Resets backend statistics at the end of a warm-up window (learned
    /// state is preserved). The default is a no-op for backends that keep no
    /// statistics of their own.
    fn reset_stats(&mut self) {}
}

/// A conventional dedicated on-chip PHT: set-associative, LRU.
#[derive(Debug)]
pub struct DedicatedPht {
    geometry: PhtGeometry,
    sets: usize,
    table: SetAssociative<SpatialPattern>,
    lookup_latency: u64,
}

impl DedicatedPht {
    /// Creates a dedicated table with the given finite geometry.
    ///
    /// # Panics
    ///
    /// Panics if `geometry` is [`PhtGeometry::Infinite`]; use
    /// [`InfinitePht`] for that case (or [`build_storage`]).
    pub fn new(geometry: PhtGeometry, config: &SmsConfig) -> Self {
        match geometry {
            PhtGeometry::Finite { sets, ways } => DedicatedPht {
                geometry,
                sets,
                table: SetAssociative::new(sets, ways, ReplacementKind::Lru),
                lookup_latency: config.dedicated_lookup_latency,
            },
            PhtGeometry::Infinite => {
                panic!("DedicatedPht requires a finite geometry; use InfinitePht instead")
            }
        }
    }

    /// The geometry of this table.
    pub fn geometry(&self) -> PhtGeometry {
        self.geometry
    }
}

impl PatternStorage for DedicatedPht {
    fn lookup(
        &mut self,
        index: PhtIndex,
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> PatternLookup {
        let set = index.set_index(self.sets);
        let tag = u64::from(index.tag(self.sets));
        PatternLookup {
            pattern: self.table.get(set, tag).copied(),
            ready_at: now + self.lookup_latency,
        }
    }

    fn store(
        &mut self,
        index: PhtIndex,
        pattern: SpatialPattern,
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        _now: u64,
    ) {
        let set = index.set_index(self.sets);
        let tag = u64::from(index.tag(self.sets));
        let _ = self.table.insert(set, tag, pattern);
    }

    fn label(&self) -> String {
        self.geometry.label()
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        self.geometry.total_bytes().expect("finite geometry has a size")
    }

    fn resident_patterns(&self) -> usize {
        self.table.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// An unbounded PHT that never forgets a pattern: the "Infinite" reference
/// point of the paper's potential study.
#[derive(Debug, Default)]
pub struct InfinitePht {
    table: HashMap<u32, SpatialPattern>,
    lookup_latency: u64,
}

impl InfinitePht {
    /// Creates an unbounded table.
    pub fn new(config: &SmsConfig) -> Self {
        InfinitePht {
            table: HashMap::new(),
            lookup_latency: config.dedicated_lookup_latency,
        }
    }
}

impl PatternStorage for InfinitePht {
    fn lookup(
        &mut self,
        index: PhtIndex,
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> PatternLookup {
        PatternLookup {
            pattern: self.table.get(&index.raw()).copied(),
            ready_at: now + self.lookup_latency,
        }
    }

    fn store(
        &mut self,
        index: PhtIndex,
        pattern: SpatialPattern,
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        _now: u64,
    ) {
        self.table.insert(index.raw(), pattern);
    }

    fn label(&self) -> String {
        "Infinite".to_owned()
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        // An infinite table has no physical realisation; report the storage
        // it would need for the patterns currently held so ablation reports
        // stay meaningful.
        (self.table.len() * 8) as u64
    }

    fn resident_patterns(&self) -> usize {
        self.table.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Builds the dedicated (non-virtualized) storage backend described by
/// `config`: an [`InfinitePht`] for the infinite geometry, a
/// [`DedicatedPht`] otherwise.
pub fn build_storage(config: &SmsConfig) -> Box<dyn PatternStorage> {
    match config.pht {
        PhtGeometry::Infinite => Box::new(InfinitePht::new(config)),
        geometry => Box::new(DedicatedPht::new(geometry, config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TriggerKey;
    use pv_mem::HierarchyConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(1))
    }

    #[test]
    fn dedicated_pht_stores_and_retrieves_patterns() {
        let config = SmsConfig::paper_1k_11a();
        let mut pht = DedicatedPht::new(config.pht, &config);
        let mut mem = mem();
        let index = TriggerKey::new(0x4000, 5).index();
        assert!(pht.lookup(index, &mut mem, None, 0).pattern.is_none());
        let pattern = SpatialPattern::from_offsets([5, 6, 9]);
        pht.store(index, pattern, &mut mem, None, 0);
        let lookup = pht.lookup(index, &mut mem, None, 10);
        assert_eq!(lookup.pattern, Some(pattern));
        assert_eq!(lookup.ready_at, 10 + config.dedicated_lookup_latency);
        assert_eq!(pht.resident_patterns(), 1);
    }

    #[test]
    fn dedicated_pht_evicts_under_conflict() {
        // An 8-set, 1-way table: two indices mapping to the same set evict
        // each other.
        let config = SmsConfig::with_pht(PhtGeometry::finite(8, 1));
        let mut pht = DedicatedPht::new(config.pht, &config);
        let mut mem = mem();
        let a = PhtIndex::from_raw(0x08); // set 0, tag 1
        let b = PhtIndex::from_raw(0x10); // set 0, tag 2
        pht.store(a, SpatialPattern::single(1), &mut mem, None, 0);
        pht.store(b, SpatialPattern::single(2), &mut mem, None, 0);
        assert!(
            pht.lookup(a, &mut mem, None, 0).pattern.is_none(),
            "a must have been evicted"
        );
        assert!(pht.lookup(b, &mut mem, None, 0).pattern.is_some());
    }

    #[test]
    fn infinite_pht_never_evicts() {
        let config = SmsConfig::infinite();
        let mut pht = InfinitePht::new(&config);
        let mut mem = mem();
        for i in 0..10_000u32 {
            pht.store(
                PhtIndex::from_raw(i),
                SpatialPattern::single(i % 32),
                &mut mem,
                None,
                0,
            );
        }
        assert_eq!(pht.resident_patterns(), 10_000);
        for i in (0..10_000u32).step_by(997) {
            assert!(pht.lookup(PhtIndex::from_raw(i), &mut mem, None, 0).pattern.is_some());
        }
    }

    #[test]
    fn build_storage_dispatches_on_geometry() {
        assert_eq!(build_storage(&SmsConfig::infinite()).label(), "Infinite");
        assert_eq!(build_storage(&SmsConfig::paper_1k_11a()).label(), "1K-11a");
        assert_eq!(build_storage(&SmsConfig::small_8_11a()).label(), "8-11a");
    }

    #[test]
    fn dedicated_storage_bytes_match_table3() {
        let storage = build_storage(&SmsConfig::paper_1k_11a());
        assert_eq!(storage.dedicated_storage_bytes(), 60_544);
    }

    #[test]
    #[should_panic(expected = "finite geometry")]
    fn dedicated_pht_rejects_infinite_geometry() {
        let config = SmsConfig::infinite();
        DedicatedPht::new(PhtGeometry::Infinite, &config);
    }
}
