//! # pv-workloads — synthetic commercial-workload models
//!
//! The paper evaluates Predictor Virtualization on eight commercial
//! workloads (TPC-C on DB2 and Oracle, four TPC-H queries on DB2, and
//! SPECweb99 on Apache and Zeus). Those workloads — multi-gigabyte database
//! and web-server setups driven by client simulators — cannot be shipped
//! with a reproduction, so this crate provides *synthetic trace generators*
//! that reproduce the statistical properties the paper's results depend on:
//!
//! * how many distinct spatial-access patterns are live at once (this is
//!   what determines how large the SMS pattern history table must be),
//! * how skewed the reuse of those patterns is,
//! * how dense and how stable the per-region access patterns are,
//! * the data footprint and its reuse (which set the baseline L1/L2 miss
//!   rates), and
//! * the fraction of accesses with no spatial correlation at all (which
//!   bounds the coverage even an infinite predictor can reach).
//!
//! Each of the eight workloads in [`workloads::paper_workloads`] is a named
//! parameter set over the same generator, documented with the rationale for
//! its values. The generator produces an infinite, deterministic (seeded)
//! stream of [`TraceRecord`]s that the `pv-sim` crate feeds to the simulated
//! cores.
//!
//! # Example
//!
//! ```
//! use pv_workloads::{workloads, TraceGenerator};
//!
//! let params = workloads::oracle();
//! let mut generator = TraceGenerator::new(&params, 42, 0);
//! let first: Vec<_> = (&mut generator).take(1000).collect();
//! assert_eq!(first.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod params;
pub mod record;
pub mod stream;
pub mod workloads;
pub mod zipf;

pub use generator::TraceGenerator;
pub use params::WorkloadParams;
pub use record::{MemOp, TraceRecord};
pub use stream::{AccessStream, TakeStream};
pub use workloads::{paper_workloads, WorkloadId};
pub use zipf::ZipfSampler;
