//! Trace records emitted by the workload generators.

/// The kind of memory operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// An instruction fetch (consumes the L1 instruction cache).
    InstructionFetch,
}

impl MemOp {
    /// Whether the operation targets the data cache.
    pub fn is_data(self) -> bool {
        matches!(self, MemOp::Load | MemOp::Store)
    }

    /// Whether the operation writes.
    pub fn is_write(self) -> bool {
        matches!(self, MemOp::Store)
    }
}

/// One entry of a per-core execution trace.
///
/// The trace is memory-centric: each record is a memory operation preceded by
/// `non_mem_instructions` arithmetic/control instructions that the timing
/// model retires at the core's base rate. This is the standard trace format
/// for memory-system studies and captures everything the paper's metrics
/// need (miss rates, traffic, and instruction throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Program counter of the instruction performing the access. SMS indexes
    /// its pattern history table with bits of this value.
    pub pc: u64,
    /// Byte address accessed.
    pub address: u64,
    /// Operation kind.
    pub op: MemOp,
    /// Number of non-memory instructions retired immediately before this
    /// operation.
    pub non_mem_instructions: u32,
}

impl TraceRecord {
    /// Convenience constructor for a data load.
    pub fn load(pc: u64, address: u64, non_mem_instructions: u32) -> Self {
        TraceRecord {
            pc,
            address,
            op: MemOp::Load,
            non_mem_instructions,
        }
    }

    /// Convenience constructor for a data store.
    pub fn store(pc: u64, address: u64, non_mem_instructions: u32) -> Self {
        TraceRecord {
            pc,
            address,
            op: MemOp::Store,
            non_mem_instructions,
        }
    }

    /// Convenience constructor for an instruction fetch.
    pub fn fetch(pc: u64, address: u64) -> Self {
        TraceRecord {
            pc,
            address,
            op: MemOp::InstructionFetch,
            non_mem_instructions: 0,
        }
    }

    /// Total instructions this record accounts for (the memory operation
    /// itself plus the preceding non-memory instructions). Instruction
    /// fetches account for zero extra instructions: the instructions they
    /// deliver are counted by the records that execute them.
    pub fn instructions(&self) -> u64 {
        match self.op {
            MemOp::InstructionFetch => 0,
            _ => 1 + u64::from(self.non_mem_instructions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(MemOp::Load.is_data());
        assert!(MemOp::Store.is_data());
        assert!(!MemOp::InstructionFetch.is_data());
        assert!(MemOp::Store.is_write());
        assert!(!MemOp::Load.is_write());
    }

    #[test]
    fn constructors_set_fields() {
        let load = TraceRecord::load(0x400, 0x1000, 3);
        assert_eq!(load.op, MemOp::Load);
        assert_eq!(load.instructions(), 4);
        let store = TraceRecord::store(0x400, 0x1000, 0);
        assert_eq!(store.op, MemOp::Store);
        assert_eq!(store.instructions(), 1);
        let fetch = TraceRecord::fetch(0x400, 0x400);
        assert_eq!(fetch.op, MemOp::InstructionFetch);
        assert_eq!(fetch.instructions(), 0);
    }
}
