//! A deterministic Zipf-distributed sampler.
//!
//! Commercial-workload access streams are heavily skewed: a small number of
//! code paths and data structures account for most of the accesses. The
//! generator models that skew with Zipf-distributed choices of trigger
//! context and data region. The sampler precomputes the cumulative
//! distribution and draws with binary search, which keeps generation fast
//! and fully deterministic for a given RNG.

use rand::Rng;

/// Samples integers in `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with the given skew exponent.
    ///
    /// An exponent of `0.0` degenerates to a uniform distribution; typical
    /// commercial-workload skews are between `0.6` and `1.1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if `exponent` is negative or not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one item");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative, got {exponent}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank as f64) + 1.0).powf(exponent);
            cdf.push(total);
        }
        // Normalise.
        let norm = total;
        for value in &mut cdf {
            *value /= norm;
        }
        // Guard against floating-point shortfall at the end of the range.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true: construction
    /// requires at least one item).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("CDF contains NaN")) {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i` (used by tests and calibration tools).
    pub fn mass(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masses_sum_to_one() {
        let z = ZipfSampler::new(1000, 0.9);
        let sum: f64 = (0..1000).map(|i| z.mass(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.mass(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn low_ranks_are_more_likely_with_positive_skew() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(50));
    }

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = ZipfSampler::new(64, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 64];
        for _ in 0..20_000 {
            let s = z.sample(&mut rng);
            assert!(s < 64);
            counts[s] += 1;
        }
        assert!(counts[0] > counts[32] * 2, "rank 0 should dominate rank 32");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = ZipfSampler::new(128, 0.8);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn single_item_always_returns_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_distribution_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
