//! The synthetic trace generator.
//!
//! One [`TraceGenerator`] produces the access stream of one core running one
//! workload. The stream is an interleaving of:
//!
//! * *spatially-correlated data accesses*: a pool of "trigger contexts"
//!   (program counters), each with a canonical spatial pattern over a 32-block
//!   region; a generation picks a context and a data region, and touches the
//!   blocks of the (slightly perturbed) pattern spread out over time by
//!   interleaving several concurrent generations — this is the structure the
//!   SMS prefetcher learns;
//! * *irregular data accesses* with no spatial correlation (pointer chasing,
//!   hashing), which no spatial prefetcher can cover;
//! * *instruction fetches* walking a configurable code footprint with
//!   occasional branches, which exercise the L1 instruction cache and the
//!   baseline next-line instruction prefetcher.
//!
//! The generator is an infinite, deterministic iterator of [`TraceRecord`]s.

use crate::params::{WorkloadParams, BLOCKS_PER_REGION};
use crate::record::{MemOp, TraceRecord};
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Bytes per cache block (matches `pv_mem::BLOCK_BYTES`).
const BLOCK_BYTES: u64 = 64;
/// Bytes per spatial region.
const REGION_BYTES: u64 = BLOCK_BYTES * BLOCKS_PER_REGION as u64;
/// Per-core address-space stride: cores run independent instances of the
/// workload in disjoint address ranges (no coherence traffic is modelled).
const CORE_STRIDE: u64 = 0x1_0000_0000;
/// Base of core 0's address space. Chosen so no workload data ever overlaps
/// the reserved PV regions near the top of the 3 GB physical memory.
const CORE0_BASE: u64 = 0x1000_0000;
/// Offset of the data-region pool within a core's address space.
const DATA_OFFSET: u64 = 0x0800_0000;
/// Offset of the irregular heap within a core's address space.
const IRREGULAR_OFFSET: u64 = 0x4000_0000;
/// Size of the irregular heap in blocks (64 MB).
const IRREGULAR_BLOCKS: u64 = 1 << 20;

/// One trigger context: a program counter and the canonical spatial pattern
/// it produces.
#[derive(Debug, Clone)]
struct Context {
    pc: u64,
    trigger_offset: u32,
    canonical_pattern: u32,
}

/// One in-flight spatial-region generation.
#[derive(Debug, Clone)]
struct ActiveGeneration {
    context: usize,
    region_base: u64,
    /// Block offsets still to be accessed; the trigger offset is always
    /// first.
    offsets: Vec<u32>,
    next: usize,
}

impl ActiveGeneration {
    fn finished(&self) -> bool {
        self.next >= self.offsets.len()
    }
}

/// Deterministic, infinite trace generator for one core.
#[derive(Debug)]
pub struct TraceGenerator {
    params: WorkloadParams,
    rng: StdRng,
    contexts: Vec<Context>,
    context_sampler: ZipfSampler,
    region_sampler: ZipfSampler,
    code_sampler: ZipfSampler,
    irregular_pcs: Vec<u64>,
    active: Vec<ActiveGeneration>,
    // Address-space bases for this core.
    code_base: u64,
    data_base: u64,
    irregular_base: u64,
    // Instruction-stream cursor.
    current_code_block: u64,
    bytes_into_block: u64,
    last_fetched_block: Option<u64>,
    // Records waiting to be handed out (instruction fetches precede the data
    // access that consumed them).
    queue: VecDeque<TraceRecord>,
    records_emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator for `core` running `params`, seeded with `seed`.
    ///
    /// The stream is fully determined by `(params, seed, core)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation.
    pub fn new(params: &WorkloadParams, seed: u64, core: usize) -> Self {
        params.validate().expect("workload parameters must be valid");
        let mut rng =
            StdRng::seed_from_u64(seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let core_base = CORE0_BASE + core as u64 * CORE_STRIDE;
        let code_base = core_base;
        let data_base = core_base + DATA_OFFSET;
        let irregular_base = core_base + IRREGULAR_OFFSET;

        let contexts: Vec<Context> = (0..params.contexts)
            .map(|i| {
                let trigger_offset = rng.gen_range(0..BLOCKS_PER_REGION);
                Context {
                    pc: code_base + (i as u64) * 4,
                    trigger_offset,
                    canonical_pattern: Self::random_pattern(
                        &mut rng,
                        params.pattern_density,
                        trigger_offset,
                    ),
                }
            })
            .collect();
        let irregular_pcs: Vec<u64> = (0..(params.contexts / 4).max(8))
            .map(|i| code_base + 0x10_0000 + (i as u64) * 4)
            .collect();

        let context_sampler = ZipfSampler::new(params.contexts, params.context_zipf);
        let region_sampler = ZipfSampler::new(params.data_regions, params.region_zipf);
        let code_sampler = ZipfSampler::new(params.code_blocks, 0.6);

        let mut generator = TraceGenerator {
            params: params.clone(),
            rng,
            contexts,
            context_sampler,
            region_sampler,
            code_sampler,
            irregular_pcs,
            active: Vec::new(),
            code_base,
            data_base,
            irregular_base,
            current_code_block: 0,
            bytes_into_block: 0,
            last_fetched_block: None,
            queue: VecDeque::new(),
            records_emitted: 0,
        };
        for _ in 0..generator.params.active_generations {
            let generation = generator.new_generation();
            generator.active.push(generation);
        }
        generator
    }

    /// Number of records handed out so far.
    pub fn records_emitted(&self) -> u64 {
        self.records_emitted
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Draws a random spatial pattern with the given expected density; the
    /// trigger offset is always part of the pattern.
    fn random_pattern<R: Rng + ?Sized>(rng: &mut R, density: f64, trigger_offset: u32) -> u32 {
        let mut pattern = 1u32 << trigger_offset;
        for bit in 0..BLOCKS_PER_REGION {
            if bit != trigger_offset && rng.gen_bool(density) {
                pattern |= 1 << bit;
            }
        }
        pattern
    }

    /// Starts a new spatial-region generation.
    fn new_generation(&mut self) -> ActiveGeneration {
        let context_idx = self.context_sampler.sample(&mut self.rng);
        let region_idx = self.region_sampler.sample(&mut self.rng) as u64;
        let region_base = self.data_base + region_idx * REGION_BYTES;
        let context = &self.contexts[context_idx];

        // Perturb the canonical pattern: each canonical block is accessed
        // with probability `pattern_stability`; spurious blocks appear with a
        // small complementary probability. The trigger block is always
        // accessed first.
        let stability = self.params.pattern_stability;
        let spurious = (1.0 - stability) * self.params.pattern_density;
        let mut offsets = vec![context.trigger_offset];
        let canonical = context.canonical_pattern;
        let trigger = context.trigger_offset;
        let mut touched: Vec<u32> = vec![trigger];
        for bit in 0..BLOCKS_PER_REGION {
            if bit == trigger {
                continue;
            }
            let in_canonical = canonical & (1 << bit) != 0;
            let accessed = if in_canonical {
                self.rng.gen_bool(stability)
            } else {
                self.rng.gen_bool(spurious)
            };
            if accessed {
                touched.push(bit);
            }
        }
        // Each touched block is revisited `accesses_per_block` times on
        // average (real code touches several fields of the records it
        // walks), so only the first access to each block can miss.
        let base_repeats = self.params.accesses_per_block.floor() as u32;
        let extra_prob = self.params.accesses_per_block - f64::from(base_repeats);
        let mut extras: Vec<u32> = Vec::new();
        for &bit in &touched {
            let repeats = base_repeats + u32::from(self.rng.gen_bool(extra_prob));
            let first_is_trigger_slot = bit == trigger;
            let start = usize::from(first_is_trigger_slot);
            for _ in start..repeats.max(1) as usize {
                extras.push(bit);
            }
        }
        // Visit the non-trigger accesses in a random order so the accesses
        // of one region interleave naturally with other regions.
        for i in (1..extras.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            extras.swap(i, j);
        }
        offsets.extend(extras);
        ActiveGeneration {
            context: context_idx,
            region_base,
            offsets,
            next: 0,
        }
    }

    /// Produces the next data access (address, PC, op).
    fn next_data_access(&mut self) -> (u64, u64, MemOp) {
        let op = if self.rng.gen_bool(self.params.write_fraction) {
            MemOp::Store
        } else {
            MemOp::Load
        };
        if self.rng.gen_bool(self.params.irregular_fraction) {
            let block = self.rng.gen_range(0..IRREGULAR_BLOCKS);
            let offset = u64::from(self.rng.gen_range(0..8u32)) * 8;
            let pc_idx = self.rng.gen_range(0..self.irregular_pcs.len());
            return (
                self.irregular_base + block * BLOCK_BYTES + offset,
                self.irregular_pcs[pc_idx],
                op,
            );
        }
        let slot = self.rng.gen_range(0..self.active.len());
        let (address, pc) = {
            let generation = &mut self.active[slot];
            let offset = generation.offsets[generation.next];
            generation.next += 1;
            let address = generation.region_base
                + u64::from(offset) * BLOCK_BYTES
                + u64::from(self.rng.gen_range(0..8u32)) * 8;
            (address, self.contexts[generation.context].pc)
        };
        if self.active[slot].finished() {
            let replacement = self.new_generation();
            self.active[slot] = replacement;
        }
        (address, pc, op)
    }

    /// Advances the instruction-fetch cursor by `instructions` instructions
    /// and pushes fetch records for every new code block entered.
    fn advance_instruction_stream(&mut self, instructions: u64) {
        let mut remaining_bytes = instructions * 4;
        while remaining_bytes > 0 {
            if self
                .rng
                .gen_bool(self.params.branch_fraction / (1.0 + self.params.instr_per_mem))
            {
                // Branch to a new code block.
                self.current_code_block = self.code_sampler.sample(&mut self.rng) as u64;
                self.bytes_into_block = 0;
            }
            let room = BLOCK_BYTES - self.bytes_into_block;
            let step = room.min(remaining_bytes);
            if self.last_fetched_block != Some(self.current_code_block) {
                let fetch_addr = self.code_base + self.current_code_block * BLOCK_BYTES;
                self.queue.push_back(TraceRecord::fetch(fetch_addr, fetch_addr));
                self.last_fetched_block = Some(self.current_code_block);
            }
            self.bytes_into_block += step;
            remaining_bytes -= step;
            if self.bytes_into_block >= BLOCK_BYTES {
                self.current_code_block =
                    (self.current_code_block + 1) % self.params.code_blocks as u64;
                self.bytes_into_block = 0;
            }
        }
    }

    /// Generates the next batch of records into the queue.
    fn refill(&mut self) {
        let mean = self.params.instr_per_mem;
        let base = mean.floor() as u32;
        let extra = if self.rng.gen_bool(mean - f64::from(base).min(mean)) {
            1
        } else {
            0
        };
        let non_mem = base + extra;
        self.advance_instruction_stream(u64::from(non_mem) + 1);
        let (address, pc, op) = self.next_data_access();
        self.queue.push_back(TraceRecord {
            pc,
            address,
            op,
            non_mem_instructions: non_mem,
        });
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        while self.queue.is_empty() {
            self.refill();
        }
        self.records_emitted += 1;
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn take(params: &WorkloadParams, n: usize) -> Vec<TraceRecord> {
        TraceGenerator::new(params, 1234, 0).take(n).collect()
    }

    #[test]
    fn generator_is_deterministic() {
        let params = workloads::apache();
        let a: Vec<_> = TraceGenerator::new(&params, 7, 0).take(5_000).collect();
        let b: Vec<_> = TraceGenerator::new(&params, 7, 0).take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cores_use_disjoint_address_spaces() {
        let params = workloads::db2();
        let a: Vec<_> = TraceGenerator::new(&params, 7, 0).take(2_000).collect();
        let b: Vec<_> = TraceGenerator::new(&params, 7, 1).take(2_000).collect();
        let max_a = a.iter().map(|r| r.address).max().unwrap();
        let min_b = b.iter().map(|r| r.address).min().unwrap();
        assert!(max_a < min_b, "core address ranges must not overlap");
    }

    #[test]
    fn stream_contains_all_operation_kinds() {
        let params = workloads::oracle();
        let records = take(&params, 20_000);
        assert!(records.iter().any(|r| r.op == MemOp::Load));
        assert!(records.iter().any(|r| r.op == MemOp::Store));
        assert!(records.iter().any(|r| r.op == MemOp::InstructionFetch));
    }

    #[test]
    fn write_fraction_is_respected_roughly() {
        let params = workloads::db2();
        let records = take(&params, 50_000);
        let data: Vec<_> = records.iter().filter(|r| r.op.is_data()).collect();
        let stores = data.iter().filter(|r| r.op.is_write()).count();
        let ratio = stores as f64 / data.len() as f64;
        assert!(
            (ratio - params.write_fraction).abs() < 0.03,
            "store ratio {ratio} too far from configured {}",
            params.write_fraction
        );
    }

    #[test]
    fn spatial_accesses_reuse_trigger_pcs() {
        // The same PC must recur many times: that is what the SMS PHT keys on.
        let params = workloads::qry1();
        let records = take(&params, 50_000);
        let mut pc_counts = std::collections::HashMap::new();
        for r in records.iter().filter(|r| r.op.is_data()) {
            *pc_counts.entry(r.pc).or_insert(0u32) += 1;
        }
        let max_count = pc_counts.values().copied().max().unwrap();
        assert!(
            max_count > 100,
            "hot trigger PCs must recur (max count {max_count})"
        );
    }

    #[test]
    fn data_addresses_stay_out_of_pv_reserved_range() {
        // The PV regions live in the top 256 KB below 3 GB for a 4-core
        // system; workload data must never land there.
        let pv_lo = 3u64 * 1024 * 1024 * 1024 - 4 * 64 * 1024;
        let pv_hi = 3u64 * 1024 * 1024 * 1024;
        for core in 0..4 {
            let params = workloads::zeus();
            let records: Vec<_> = TraceGenerator::new(&params, 3, core).take(5_000).collect();
            for r in records {
                assert!(
                    r.address < pv_lo || r.address >= pv_hi,
                    "workload address {:#x} collides with the reserved PV region",
                    r.address
                );
            }
        }
    }

    #[test]
    fn instruction_fetches_precede_dependent_data_accesses() {
        let params = workloads::qry17();
        let records = take(&params, 1_000);
        assert_eq!(
            records[0].op,
            MemOp::InstructionFetch,
            "the very first record must be the fetch of the first code block"
        );
    }

    #[test]
    fn records_emitted_counter_tracks_iteration() {
        let params = workloads::qry2();
        let mut generator = TraceGenerator::new(&params, 9, 0);
        let _ = (&mut generator).take(123).count();
        assert_eq!(generator.records_emitted(), 123);
    }

    #[test]
    fn mean_instructions_per_record_matches_parameter() {
        let params = workloads::apache();
        let records = take(&params, 100_000);
        let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
        let data_records = records.iter().filter(|r| r.op.is_data()).count() as f64;
        let mean = instructions as f64 / data_records;
        assert!(
            (mean - (1.0 + params.instr_per_mem)).abs() < 0.15,
            "mean instructions per data access {mean} should be close to {}",
            1.0 + params.instr_per_mem
        );
    }
}
