//! The eight named workload models of the paper's Table 2.
//!
//! Each function returns the parameter set of one synthetic workload. The
//! absolute values are calibrated so that the *relative* behaviour matches
//! what the paper reports:
//!
//! * web servers (Apache, Zeus) and OLTP (DB2, Oracle) have large
//!   spatial-pattern working sets with little skew, so their prefetch
//!   coverage collapses when the pattern history table shrinks to 16 or 8
//!   sets (Figure 4/5);
//! * the TPC-H decision-support queries have far fewer, hotter patterns, so
//!   they retain most of their coverage with small tables, with Query 1 (a
//!   scan) the least sensitive;
//! * OLTP and web servers have large instruction footprints and more
//!   irregular (pointer-chasing) accesses, bounding the achievable coverage;
//! * scans stream through data with little reuse, producing the large
//!   speedups the paper reports for the DSS queries.

use crate::params::WorkloadParams;

/// Identifier for one of the paper's eight workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadId {
    /// SPECweb99 on Apache HTTP Server (Table 2: 16K connections, FastCGI).
    Apache,
    /// SPECweb99 on Zeus Web Server (Table 2: 16K connections, FastCGI).
    Zeus,
    /// TPC-C on IBM DB2 (Table 2: 100 warehouses, 64 clients).
    Db2,
    /// TPC-C on Oracle (Table 2: 100 warehouses, 16 clients).
    Oracle,
    /// TPC-H Query 1 on DB2 (scan-dominated).
    Qry1,
    /// TPC-H Query 2 on DB2 (join-dominated).
    Qry2,
    /// TPC-H Query 16 on DB2 (join-dominated).
    Qry16,
    /// TPC-H Query 17 on DB2 (balanced scan-join).
    Qry17,
}

impl WorkloadId {
    /// All eight workloads in the order the paper's figures use.
    pub fn all() -> [WorkloadId; 8] {
        [
            WorkloadId::Apache,
            WorkloadId::Zeus,
            WorkloadId::Db2,
            WorkloadId::Oracle,
            WorkloadId::Qry1,
            WorkloadId::Qry2,
            WorkloadId::Qry16,
            WorkloadId::Qry17,
        ]
    }

    /// Short display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Apache => "Apache",
            WorkloadId::Zeus => "Zeus",
            WorkloadId::Db2 => "DB2",
            WorkloadId::Oracle => "Oracle",
            WorkloadId::Qry1 => "Qry1",
            WorkloadId::Qry2 => "Qry2",
            WorkloadId::Qry16 => "Qry16",
            WorkloadId::Qry17 => "Qry17",
        }
    }

    /// The parameter set for this workload.
    pub fn params(self) -> WorkloadParams {
        match self {
            WorkloadId::Apache => apache(),
            WorkloadId::Zeus => zeus(),
            WorkloadId::Db2 => db2(),
            WorkloadId::Oracle => oracle(),
            WorkloadId::Qry1 => qry1(),
            WorkloadId::Qry2 => qry2(),
            WorkloadId::Qry16 => qry16(),
            WorkloadId::Qry17 => qry17(),
        }
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns every paper workload together with its identifier.
pub fn paper_workloads() -> Vec<(WorkloadId, WorkloadParams)> {
    WorkloadId::all().iter().map(|&id| (id, id.params())).collect()
}

/// SPECweb99 served by Apache: many distinct request-handling code paths
/// (large, weakly-skewed pattern working set), sizeable irregular component
/// from string/hash handling, large instruction footprint.
pub fn apache() -> WorkloadParams {
    WorkloadParams {
        name: "Apache".to_owned(),
        description: "SPECweb99, Apache HTTP Server, 16K connections, FastCGI, worker threading"
            .to_owned(),
        contexts: 7_000,
        context_zipf: 0.55,
        pattern_density: 0.25,
        pattern_stability: 0.92,
        data_regions: 100_000,
        region_zipf: 0.95,
        irregular_fraction: 0.15,
        write_fraction: 0.12,
        accesses_per_block: 3.0,
        active_generations: 24,
        instr_per_mem: 4.0,
        code_blocks: 6_000,
        branch_fraction: 0.15,
    }
}

/// SPECweb99 served by Zeus: similar structure to Apache with a slightly
/// smaller, slightly hotter pattern set (Zeus is a single-process,
/// event-driven server).
pub fn zeus() -> WorkloadParams {
    WorkloadParams {
        name: "Zeus".to_owned(),
        description: "SPECweb99, Zeus Web Server, 16K connections, FastCGI".to_owned(),
        contexts: 6_000,
        context_zipf: 0.60,
        pattern_density: 0.28,
        pattern_stability: 0.93,
        data_regions: 90_000,
        region_zipf: 0.95,
        irregular_fraction: 0.12,
        write_fraction: 0.10,
        accesses_per_block: 3.0,
        active_generations: 24,
        instr_per_mem: 4.0,
        code_blocks: 5_000,
        branch_fraction: 0.15,
    }
}

/// TPC-C on DB2: OLTP with a large buffer pool, many distinct access paths,
/// moderate skew and a substantial store component (record updates).
pub fn db2() -> WorkloadParams {
    WorkloadParams {
        name: "DB2".to_owned(),
        description:
            "TPC-C v3.0, IBM DB2 v8 ESE, 100 warehouses (10 GB), 64 clients, 450 MB buffer pool"
                .to_owned(),
        contexts: 3_500,
        context_zipf: 0.70,
        pattern_density: 0.30,
        pattern_stability: 0.90,
        data_regions: 150_000,
        region_zipf: 1.00,
        irregular_fraction: 0.18,
        write_fraction: 0.20,
        accesses_per_block: 3.0,
        active_generations: 32,
        instr_per_mem: 3.5,
        code_blocks: 8_000,
        branch_fraction: 0.18,
    }
}

/// TPC-C on Oracle: like DB2 but with an even larger, flatter pattern
/// working set — the paper's most PHT-capacity-sensitive workload (coverage
/// drops from 44% at 1K sets to under 4% at 8 sets).
pub fn oracle() -> WorkloadParams {
    WorkloadParams {
        name: "Oracle".to_owned(),
        description:
            "TPC-C v3.0, Oracle 10g Enterprise, 100 warehouses (10 GB), 16 clients, 1.4 GB SGA"
                .to_owned(),
        contexts: 5_000,
        context_zipf: 0.55,
        pattern_density: 0.28,
        pattern_stability: 0.90,
        data_regions: 180_000,
        region_zipf: 1.00,
        irregular_fraction: 0.18,
        write_fraction: 0.22,
        accesses_per_block: 3.0,
        active_generations: 32,
        instr_per_mem: 3.5,
        code_blocks: 9_000,
        branch_fraction: 0.18,
    }
}

/// TPC-H Query 1: a scan-dominated aggregation. Few, very hot access
/// patterns with dense per-region footprints and almost no data reuse —
/// little sensitivity to PHT capacity and a large prefetching upside.
pub fn qry1() -> WorkloadParams {
    WorkloadParams {
        name: "Qry1".to_owned(),
        description: "TPC-H Query 1 on DB2, scan-dominated, 450 MB buffer pool".to_owned(),
        contexts: 400,
        context_zipf: 0.90,
        pattern_density: 0.60,
        pattern_stability: 0.97,
        data_regions: 150_000,
        region_zipf: 0.90,
        irregular_fraction: 0.06,
        write_fraction: 0.05,
        accesses_per_block: 2.5,
        active_generations: 8,
        instr_per_mem: 3.0,
        code_blocks: 1_500,
        branch_fraction: 0.10,
    }
}

/// TPC-H Query 2: join-dominated with moderately many patterns and moderate
/// reuse; more sensitive than Query 1 but far less than OLTP.
pub fn qry2() -> WorkloadParams {
    WorkloadParams {
        name: "Qry2".to_owned(),
        description: "TPC-H Query 2 on DB2, join-dominated, 450 MB buffer pool".to_owned(),
        contexts: 2_500,
        context_zipf: 0.70,
        pattern_density: 0.45,
        pattern_stability: 0.95,
        data_regions: 120_000,
        region_zipf: 0.95,
        irregular_fraction: 0.08,
        write_fraction: 0.05,
        accesses_per_block: 2.5,
        active_generations: 16,
        instr_per_mem: 3.0,
        code_blocks: 2_500,
        branch_fraction: 0.12,
    }
}

/// TPC-H Query 16: join-dominated with a somewhat larger, flatter pattern
/// set than Query 2.
pub fn qry16() -> WorkloadParams {
    WorkloadParams {
        name: "Qry16".to_owned(),
        description: "TPC-H Query 16 on DB2, join-dominated, 450 MB buffer pool".to_owned(),
        contexts: 3_000,
        context_zipf: 0.60,
        pattern_density: 0.40,
        pattern_stability: 0.94,
        data_regions: 120_000,
        region_zipf: 0.95,
        irregular_fraction: 0.10,
        write_fraction: 0.06,
        accesses_per_block: 2.5,
        active_generations: 16,
        instr_per_mem: 3.0,
        code_blocks: 2_500,
        branch_fraction: 0.12,
    }
}

/// TPC-H Query 17: balanced scan-join; between Query 1 and the join queries
/// in pattern-set size and density.
pub fn qry17() -> WorkloadParams {
    WorkloadParams {
        name: "Qry17".to_owned(),
        description: "TPC-H Query 17 on DB2, balanced scan-join, 450 MB buffer pool".to_owned(),
        contexts: 2_000,
        context_zipf: 0.65,
        pattern_density: 0.45,
        pattern_stability: 0.94,
        data_regions: 140_000,
        region_zipf: 0.95,
        irregular_fraction: 0.12,
        write_fraction: 0.08,
        accesses_per_block: 2.5,
        active_generations: 16,
        instr_per_mem: 3.0,
        code_blocks: 3_000,
        branch_fraction: 0.12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eight_workloads() {
        assert_eq!(WorkloadId::all().len(), 8);
        assert_eq!(paper_workloads().len(), 8);
    }

    #[test]
    fn names_are_unique_and_match_ids() {
        let mut names: Vec<&str> = WorkloadId::all().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(WorkloadId::Oracle.params().name, "Oracle");
        assert_eq!(format!("{}", WorkloadId::Qry16), "Qry16");
    }

    #[test]
    fn oltp_has_larger_pattern_working_sets_than_dss() {
        // The calibration invariant behind Figure 4: OLTP/web workloads need
        // big PHTs, DSS queries do not.
        let oltp_min =
            [apache(), zeus(), db2(), oracle()].iter().map(|w| w.contexts).min().unwrap();
        let dss_max = [qry1(), qry2(), qry16(), qry17()].iter().map(|w| w.contexts).max().unwrap();
        assert!(
            oltp_min > dss_max,
            "OLTP pattern sets must exceed DSS pattern sets"
        );
    }

    #[test]
    fn scan_query_is_least_sensitive() {
        // Query 1 must have the smallest pattern working set and the densest
        // patterns, making it the least sensitive to PHT capacity.
        for other in [qry2(), qry16(), qry17(), apache(), zeus(), db2(), oracle()] {
            assert!(qry1().contexts <= other.contexts);
            assert!(qry1().pattern_density >= other.pattern_density);
        }
    }

    #[test]
    fn all_workloads_have_big_data_footprints() {
        for (_, params) in paper_workloads() {
            // Footprints must comfortably exceed the 8 MB L2 so that the
            // baseline actually misses off-chip.
            assert!(params.data_footprint_bytes() > 64 * 1024 * 1024);
        }
    }
}
