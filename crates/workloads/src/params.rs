//! Workload-generator parameters.

/// Number of cache blocks per spatial region (32 in the paper, i.e. 2 KB
/// regions of 64 B blocks).
pub const BLOCKS_PER_REGION: u32 = 32;

/// Parameters of one synthetic workload.
///
/// Every parameter corresponds to a property of the paper's commercial
/// workloads that the Predictor Virtualization results depend on; the
/// per-workload values live in [`crate::workloads`] together with the
/// rationale for each choice.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Human-readable name (e.g. `"Oracle"`).
    pub name: String,
    /// One-line description mirroring Table 2 of the paper.
    pub description: String,
    /// Number of distinct trigger contexts (PC × trigger-offset pairs), i.e.
    /// the size of the spatial-pattern working set. This is the primary knob
    /// controlling how large a PHT the workload needs.
    pub contexts: usize,
    /// Zipf exponent of trigger-context selection (how skewed code-path
    /// popularity is).
    pub context_zipf: f64,
    /// Mean fraction of the 32 blocks of a region touched per generation.
    pub pattern_density: f64,
    /// Probability that a block that belongs to a context's canonical
    /// pattern is actually accessed in a given generation. Lower values
    /// produce over-predictions (prefetched blocks that are never used).
    pub pattern_stability: f64,
    /// Number of distinct spatial regions in the data footprint.
    pub data_regions: usize,
    /// Zipf exponent of region reuse (0 ≈ streaming scan, 1 ≈ heavily
    /// skewed reuse).
    pub region_zipf: f64,
    /// Fraction of data accesses with no spatial correlation (pointer
    /// chasing, hashed lookups); these bound the coverage any spatial
    /// prefetcher can reach.
    pub irregular_fraction: f64,
    /// Fraction of data accesses that are stores.
    pub write_fraction: f64,
    /// Mean number of demand accesses to each block touched during a
    /// generation (real code revisits fields of the structures it walks, so
    /// only a fraction of accesses miss even when the region is cold).
    pub accesses_per_block: f64,
    /// Number of spatial-region generations progressing concurrently; this
    /// controls how far apart in time the accesses of one region are spread.
    pub active_generations: usize,
    /// Mean non-memory instructions per memory access.
    pub instr_per_mem: f64,
    /// Instruction footprint in 64 B blocks (commercial workloads have large
    /// instruction footprints, which is why the baseline includes a
    /// next-line instruction prefetcher).
    pub code_blocks: usize,
    /// Probability per memory access that the instruction stream jumps to a
    /// new code block rather than falling through sequentially.
    pub branch_fraction: f64,
}

/// Errors produced when validating workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWorkload {
    message: String,
}

impl std::fmt::Display for InvalidWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid workload parameters: {}", self.message)
    }
}

impl std::error::Error for InvalidWorkload {}

impl WorkloadParams {
    /// Checks that every parameter is in its meaningful range.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWorkload`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), InvalidWorkload> {
        fn fraction(name: &str, value: f64) -> Result<(), InvalidWorkload> {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(InvalidWorkload {
                    message: format!("{name} must be in [0, 1], got {value}"),
                });
            }
            Ok(())
        }
        if self.name.is_empty() {
            return Err(InvalidWorkload {
                message: "name must not be empty".to_owned(),
            });
        }
        if self.contexts == 0 {
            return Err(InvalidWorkload {
                message: "contexts must be positive".to_owned(),
            });
        }
        if self.data_regions == 0 {
            return Err(InvalidWorkload {
                message: "data_regions must be positive".to_owned(),
            });
        }
        if self.active_generations == 0 {
            return Err(InvalidWorkload {
                message: "active_generations must be positive".to_owned(),
            });
        }
        if self.code_blocks == 0 {
            return Err(InvalidWorkload {
                message: "code_blocks must be positive".to_owned(),
            });
        }
        fraction("pattern_density", self.pattern_density)?;
        fraction("pattern_stability", self.pattern_stability)?;
        fraction("irregular_fraction", self.irregular_fraction)?;
        fraction("write_fraction", self.write_fraction)?;
        fraction("branch_fraction", self.branch_fraction)?;
        if self.pattern_density <= 0.0 {
            return Err(InvalidWorkload {
                message: "pattern_density must be positive".to_owned(),
            });
        }
        if !(0.0..=3.0).contains(&self.context_zipf) || !(0.0..=3.0).contains(&self.region_zipf) {
            return Err(InvalidWorkload {
                message: "Zipf exponents must be in [0, 3]".to_owned(),
            });
        }
        if self.instr_per_mem < 0.0 || !self.instr_per_mem.is_finite() {
            return Err(InvalidWorkload {
                message: format!(
                    "instr_per_mem must be non-negative, got {}",
                    self.instr_per_mem
                ),
            });
        }
        if self.accesses_per_block < 1.0 || !self.accesses_per_block.is_finite() {
            return Err(InvalidWorkload {
                message: format!(
                    "accesses_per_block must be at least 1, got {}",
                    self.accesses_per_block
                ),
            });
        }
        Ok(())
    }

    /// Approximate data footprint in bytes.
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_regions as u64 * u64::from(BLOCKS_PER_REGION) * 64
    }

    /// Approximate instruction footprint in bytes.
    pub fn code_footprint_bytes(&self) -> u64 {
        self.code_blocks as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use crate::workloads;

    #[test]
    fn paper_workloads_validate() {
        for (_, params) in workloads::paper_workloads() {
            params.validate().expect("paper workload must be valid");
        }
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let mut params = workloads::apache();
        params.irregular_fraction = 1.5;
        assert!(params.validate().is_err());
    }

    #[test]
    fn zero_contexts_is_rejected() {
        let mut params = workloads::apache();
        params.contexts = 0;
        let err = params.validate().unwrap_err();
        assert!(err.to_string().contains("contexts"));
    }

    #[test]
    fn footprint_helpers_scale_with_parameters() {
        let params = workloads::qry1();
        assert_eq!(
            params.data_footprint_bytes(),
            params.data_regions as u64 * 32 * 64
        );
        assert_eq!(
            params.code_footprint_bytes(),
            params.code_blocks as u64 * 64
        );
    }
}
