//! The stream abstraction every access source implements.
//!
//! The simulator used to own a [`TraceGenerator`] per core; anything that
//! wanted to feed it differently — a recorded trace replayed from disk, a
//! non-stationary scenario that flips workloads mid-run, a tee that records
//! while passing records through — had no seam to plug into. [`AccessStream`]
//! is that seam: one object-safe trait producing [`TraceRecord`]s until the
//! source runs dry. Synthetic generators are infinite; replayed traces end,
//! and the simulator terminates the run cleanly when they do.

use crate::generator::TraceGenerator;
use crate::record::TraceRecord;

/// A source of per-core trace records.
///
/// Implementations must be deterministic: the same construction parameters
/// must yield the same record sequence on every host (the digest-pinning
/// discipline depends on it). A stream may be finite; once `next_record`
/// returns `None` it must keep returning `None`.
///
/// `Send` is a supertrait: streams are owned by simulator cores, and a
/// whole `System` (cores, engines, hierarchy) must be movable across host
/// threads so fleet sweeps can distribute runs over a work-stealing pool.
pub trait AccessStream: Send {
    /// The next record, or `None` when the stream is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Short human-readable label (workload name, `"replay:..."`, scenario
    /// description) used for run labelling and reports.
    fn label(&self) -> &str;
}

impl AccessStream for TraceGenerator {
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.next()
    }

    fn label(&self) -> &str {
        &self.params().name
    }
}

impl<S: AccessStream + ?Sized> AccessStream for Box<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// A finite adaptor: passes through at most `limit` records of any inner
/// stream, then reports exhaustion. Turns an infinite generator into a
/// finite stream (the building block for recording fixed-length traces and
/// for testing end-of-stream handling).
#[derive(Debug)]
pub struct TakeStream<S> {
    inner: S,
    remaining: u64,
}

impl<S: AccessStream> TakeStream<S> {
    /// Caps `inner` at `limit` records.
    pub fn new(inner: S, limit: u64) -> Self {
        TakeStream {
            inner,
            remaining: limit,
        }
    }

    /// Records this stream will still hand out (upper bound; the inner
    /// stream may end sooner).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<S: AccessStream> AccessStream for TakeStream<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_record()
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn generators_are_access_streams() {
        let params = workloads::qry1();
        let mut stream = TraceGenerator::new(&params, 7, 0);
        assert_eq!(stream.label(), "Qry1");
        assert!(stream.next_record().is_some());
    }

    #[test]
    fn boxed_streams_forward() {
        let params = workloads::apache();
        let mut stream: Box<dyn AccessStream> = Box::new(TraceGenerator::new(&params, 7, 0));
        assert_eq!(stream.label(), "Apache");
        assert!(stream.next_record().is_some());
    }

    #[test]
    fn take_stream_ends_after_its_limit() {
        let params = workloads::qry17();
        let mut stream = TakeStream::new(TraceGenerator::new(&params, 7, 0), 5);
        let mut produced = 0;
        while stream.next_record().is_some() {
            produced += 1;
        }
        assert_eq!(produced, 5);
        assert_eq!(stream.remaining(), 0);
        assert!(stream.next_record().is_none(), "exhaustion is sticky");
    }

    #[test]
    fn streamed_records_match_direct_iteration() {
        let params = workloads::db2();
        let direct: Vec<_> = TraceGenerator::new(&params, 42, 1).take(100).collect();
        let mut stream = TraceGenerator::new(&params, 42, 1);
        let via_stream: Vec<_> = (0..100).map(|_| stream.next_record().unwrap()).collect();
        assert_eq!(direct, via_stream);
    }
}
