//! The Markov predictor's table entry and index arithmetic.

use pv_core::PvEntry;

/// Number of PC bits used in the table index.
pub const PC_INDEX_BITS: u32 = 22;
/// Total index width (the index is the PC bits alone).
pub const INDEX_BITS: u32 = PC_INDEX_BITS;

/// Set-bit count of the canonical 1K-set table (used to size the tag).
const SET_BITS: u32 = 10;

/// A 22-bit index into the next-address table, derived from the program
/// counter of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MarkovIndex(u32);

impl MarkovIndex {
    /// Builds the index from a program counter (instruction-word address).
    pub fn from_pc(pc: u64) -> Self {
        MarkovIndex(((pc >> 2) as u32) & ((1 << INDEX_BITS) - 1))
    }

    /// Builds an index from its raw value (masked to width).
    pub fn from_raw(raw: u32) -> Self {
        MarkovIndex(raw & ((1 << INDEX_BITS) - 1))
    }

    /// The raw index value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The set index for a table with `sets` sets (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or is zero.
    pub fn set_index(self, sets: usize) -> usize {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "table set count must be a power of two"
        );
        (self.0 as usize) & (sets - 1)
    }

    /// The tag for a table with `sets` sets: the index bits above the set
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or is zero.
    pub fn tag(self, sets: usize) -> u32 {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "table set count must be a power of two"
        );
        self.0 >> sets.trailing_zeros()
    }
}

/// One entry of the next-address table: the index tag and a signed block
/// delta, packed as 12 + 28 = 40 bits (twelve entries per 64-byte block —
/// a deliberately different geometry from SMS's 11 × 43 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovEntry {
    tag: u16,
    /// Zig-zag-encoded delta, biased by one so a valid payload is never the
    /// substrate's all-zero invalid marker.
    code: u32,
}

impl MarkovEntry {
    /// Largest delta magnitude the payload encoding can hold.
    pub fn max_delta() -> i64 {
        // Zig-zag + 1 must fit in PAYLOAD_BITS.
        i64::from((1u32 << (Self::PAYLOAD_BITS - 1)) - 1)
    }

    /// Creates an entry for `delta` blocks, or `None` if the delta is out of
    /// the encodable range (or zero — a zero delta predicts the block the
    /// demand access already fetches, so it is never stored).
    pub fn new(tag: u16, delta: i64) -> Option<Self> {
        if delta == 0 || delta.abs() > Self::max_delta() {
            return None;
        }
        let zigzag = ((delta << 1) ^ (delta >> 63)) as u64;
        Some(MarkovEntry {
            tag,
            code: (zigzag + 1) as u32,
        })
    }

    /// The stored block delta.
    pub fn delta(&self) -> i64 {
        let zigzag = u64::from(self.code - 1);
        ((zigzag >> 1) as i64) ^ -((zigzag & 1) as i64)
    }
}

impl PvEntry for MarkovEntry {
    const TAG_BITS: u32 = INDEX_BITS - SET_BITS; // 12
    const PAYLOAD_BITS: u32 = 28;

    fn tag(&self) -> u64 {
        u64::from(self.tag)
    }

    fn payload(&self) -> u64 {
        u64::from(self.code)
    }

    fn from_parts(tag: u64, payload: u64) -> Option<Self> {
        (payload != 0).then_some(MarkovEntry {
            tag: tag as u16,
            code: payload as u32,
        })
    }
}

/// Configuration of the Markov prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarkovConfig {
    /// Number of table sets (1K, matching the virtualized layout).
    pub table_sets: usize,
    /// Associativity of the *dedicated* on-chip variant.
    pub dedicated_ways: usize,
    /// Lookup latency of the dedicated on-chip table in cycles.
    pub dedicated_lookup_latency: u64,
}

impl MarkovConfig {
    /// The canonical configuration: a 1K-set table, 4-way when dedicated.
    pub fn paper_1k() -> Self {
        MarkovConfig {
            table_sets: 1024,
            dedicated_ways: 4,
            dedicated_lookup_latency: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn assert_valid(&self) {
        assert!(
            self.table_sets > 0 && self.table_sets.is_power_of_two(),
            "table_sets must be a power of two"
        );
        assert!(self.dedicated_ways > 0, "dedicated_ways must be positive");
        assert!(
            self.table_sets.trailing_zeros() + MarkovEntry::TAG_BITS >= INDEX_BITS,
            "set bits plus entry tag bits must cover the {INDEX_BITS}-bit index"
        );
    }

    /// Dedicated on-chip storage in bytes: tag + delta payload per entry.
    pub fn dedicated_storage_bytes(&self) -> u64 {
        let entries = (self.table_sets * self.dedicated_ways) as u64;
        let entry_bits = u64::from(MarkovEntry::TAG_BITS + MarkovEntry::PAYLOAD_BITS);
        (entries * entry_bits).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_core::PvLayout;

    #[test]
    fn twelve_entries_pack_per_block() {
        let layout = PvLayout::of::<MarkovEntry>(64);
        assert_eq!(MarkovEntry::entry_bits(), 40);
        assert_eq!(layout.entries_per_block(), 12);
        assert_eq!(layout.unused_trailing_bits(), 32);
    }

    #[test]
    fn deltas_round_trip_through_the_packed_encoding() {
        for delta in [
            1i64,
            -1,
            7,
            -42,
            1 << 20,
            -(1 << 20),
            MarkovEntry::max_delta(),
        ] {
            let entry = MarkovEntry::new(0x5A5, delta).expect("delta in range");
            assert_eq!(entry.delta(), delta, "delta {delta}");
            let rebuilt = MarkovEntry::from_parts(entry.tag(), entry.payload()).unwrap();
            assert_eq!(rebuilt, entry);
            assert_ne!(
                entry.payload(),
                0,
                "valid entries never use the invalid marker"
            );
        }
    }

    #[test]
    fn zero_and_oversized_deltas_are_rejected() {
        assert!(MarkovEntry::new(1, 0).is_none());
        assert!(MarkovEntry::new(1, MarkovEntry::max_delta() + 1).is_none());
        assert!(MarkovEntry::new(1, -(MarkovEntry::max_delta() + 1)).is_none());
    }

    #[test]
    fn index_set_and_tag_reconstruct() {
        let sets = 1024;
        for raw in [0u32, 1, 123_456, (1 << INDEX_BITS) - 1] {
            let index = MarkovIndex::from_raw(raw);
            let rebuilt = (index.tag(sets) << sets.trailing_zeros()) | index.set_index(sets) as u32;
            assert_eq!(rebuilt, index.raw());
        }
    }

    #[test]
    fn different_pcs_map_to_different_indices() {
        assert_ne!(MarkovIndex::from_pc(0x4000), MarkovIndex::from_pc(0x4004));
    }

    #[test]
    fn config_is_valid_and_sized() {
        let config = MarkovConfig::paper_1k();
        config.assert_valid();
        // 4K entries x 40 bits = 20 KB dedicated.
        assert_eq!(config.dedicated_storage_bytes(), 20 * 1024);
    }
}
