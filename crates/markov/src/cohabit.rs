//! The Markov next-address table on a *shared* PVProxy.
//!
//! Mirror of `pv_sms::cohabit`: [`SharedVirtualizedMarkov`] registers the
//! Markov table as one table of a per-core
//! [`SharedPvProxy`], so it competes with its
//! cohabitants (e.g. SMS) for the same table-tagged PVCache lines and the
//! same L2/DRAM bandwidth. Contents are write-through in the adapter's own
//! `PvTable<MarkovEntry>`; the engine still sees only [`NextAddrStorage`].
//!
//! The adapter does not own the proxy: it arrives by `&mut` through the
//! `shared` parameter of every call, which keeps the adapter (and the whole
//! simulator above it) `Send` with no `RefCell` bookkeeping on the hot path.

use crate::entry::{MarkovEntry, MarkovIndex};
use crate::storage::{NextAddrLookup, NextAddrStorage};
use pv_core::{
    PvConfig, PvEntry, PvStartRegister, PvStorageBudget, PvTable, SharedPvProxy, SharedStoreOutcome,
};
use pv_mem::{Address, MemoryHierarchy};

/// The Markov next-address table bound to a shared, table-tagged PVProxy.
#[derive(Debug)]
pub struct SharedVirtualizedMarkov {
    table_id: usize,
    /// PVCache sets of the proxy this adapter registered with (fixed for
    /// the proxy's lifetime), so labels and budgets need no proxy access.
    shared_capacity: usize,
    config: PvConfig,
    table: PvTable<MarkovEntry>,
}

impl SharedVirtualizedMarkov {
    /// Registers a Markov PVTable based at `pv_start` (normally a
    /// `PvRegionPlan` sub-region base) with the core's shared proxy.
    ///
    /// # Panics
    ///
    /// Panics if the configured number of table sets leaves more index tag
    /// bits than the packed entry stores (mirrors `VirtualizedMarkov::new`).
    pub fn new(shared: &mut SharedPvProxy, config: PvConfig, pv_start: Address) -> Self {
        let index_tag_bits = crate::entry::INDEX_BITS - config.table_sets.trailing_zeros();
        assert!(
            index_tag_bits <= MarkovEntry::TAG_BITS,
            "a {}-set PVTable needs {} tag bits but MarkovEntry stores {}",
            config.table_sets,
            index_tag_bits,
            MarkovEntry::TAG_BITS
        );
        let table_id = shared.add_table(pv_start, config.table_sets, config.block_bytes, "Markov");
        SharedVirtualizedMarkov {
            table_id,
            shared_capacity: shared.cache().capacity(),
            table: PvTable::new(&config, PvStartRegister::new(pv_start)),
            config,
        }
    }

    /// This table's id within the shared proxy.
    pub fn table_id(&self) -> usize {
        self.table_id
    }

    fn split_index(&self, index: u64) -> (usize, u64) {
        (
            (index as usize) & (self.config.table_sets - 1),
            index >> self.config.table_sets.trailing_zeros(),
        )
    }

    fn proxy(shared: Option<&mut SharedPvProxy>) -> &mut SharedPvProxy {
        shared.expect("SharedVirtualizedMarkov requires the shared proxy it registered with")
    }
}

impl NextAddrStorage for SharedVirtualizedMarkov {
    fn lookup(
        &mut self,
        index: MarkovIndex,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> NextAddrLookup {
        let raw = u64::from(index.raw());
        let (set_index, tag) = self.split_index(raw);
        let access = Self::proxy(shared).lookup_set(self.table_id, set_index, raw, mem, now);
        let delta = if access.resident {
            self.table.set_mut(set_index).lookup(tag).map(|entry| entry.delta())
        } else {
            None
        };
        NextAddrLookup {
            delta,
            ready_at: access.ready_at,
        }
    }

    fn store(
        &mut self,
        index: MarkovIndex,
        delta: i64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        let raw = u64::from(index.raw());
        let (set_index, tag) = self.split_index(raw);
        let Some(entry) = MarkovEntry::new(tag as u16, delta) else {
            return;
        };
        // Write-through only when the proxy accepted the store (unbacked
        // sets have no memory behind them).
        if Self::proxy(shared).store_set(self.table_id, set_index, mem, now)
            == SharedStoreOutcome::Accepted
        {
            self.table.set_mut(set_index).insert(entry);
        }
    }

    fn label(&self) -> String {
        format!("Markov-shPV-{}", self.shared_capacity)
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        let sized = PvConfig {
            pvcache_sets: self.shared_capacity,
            ..self.config
        };
        PvStorageBudget::for_entry::<MarkovEntry>(&sized).total_bytes()
    }

    fn resident_entries(&self) -> usize {
        self.table.resident_entries()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    // reset_stats: the default no-op — the proxy's owner resets its
    // statistics once for all cohabiting tables.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::{HierarchyConfig, PvRegionConfig};

    #[test]
    fn markov_round_trips_through_a_shared_proxy() {
        let mut config = HierarchyConfig::paper_baseline(4);
        config.pv_regions = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let mut mem = MemoryHierarchy::new(config);
        let mut shared = SharedPvProxy::new(0, PvConfig::pv8());
        let mut table = SharedVirtualizedMarkov::new(
            &mut shared,
            PvConfig::pv8(),
            config.pv_regions.core_base(0),
        );
        let index = MarkovIndex::from_pc(0x4000);
        table.store(index, -7, &mut mem, Some(&mut shared), 0);
        assert_eq!(
            table.lookup(index, &mut mem, Some(&mut shared), 1_000).delta,
            Some(-7)
        );
        assert_eq!(shared.table_stats(0).stores, 1);
        assert!(mem.stats().l2_requests.predictor > 0);
        assert_eq!(NextAddrStorage::label(&table), "Markov-shPV-8");
    }

    #[test]
    fn two_tables_cohabit_one_proxy_with_separate_stats() {
        // Two Markov tables in one region (the SMS+Markov pairing lives in
        // the cross-crate integration tests): per-table ids, labels and
        // stats must stay separate while the cache is shared.
        let mut config = HierarchyConfig::paper_baseline(4);
        config.pv_regions = PvRegionConfig::with_bytes_per_core(4, 128 * 1024);
        let mut mem = MemoryHierarchy::new(config);
        let mut shared = SharedPvProxy::new(0, PvConfig::pv8());
        let base = config.pv_regions.core_base(0);
        let mut first = SharedVirtualizedMarkov::new(&mut shared, PvConfig::pv8(), base);
        let mut second = SharedVirtualizedMarkov::new(
            &mut shared,
            PvConfig::pv8(),
            Address::new(base.raw() + 64 * 1024),
        );
        assert_eq!(first.table_id(), 0);
        assert_eq!(second.table_id(), 1);

        first.store(
            MarkovIndex::from_pc(0x4000),
            -2,
            &mut mem,
            Some(&mut shared),
            0,
        );
        second.store(
            MarkovIndex::from_pc(0x8000),
            3,
            &mut mem,
            Some(&mut shared),
            10,
        );

        assert_eq!(shared.tables(), 2);
        assert_eq!(shared.table_stats(0).stores, 1);
        assert_eq!(shared.table_stats(1).stores, 1);
        // Both tables occupy the one shared cache.
        assert_eq!(shared.cache().occupancy_of(0), 1);
        assert_eq!(shared.cache().occupancy_of(1), 1);

        // Both entries remain retrievable through their own adapters.
        assert_eq!(
            first
                .lookup(
                    MarkovIndex::from_pc(0x4000),
                    &mut mem,
                    Some(&mut shared),
                    2_000
                )
                .delta,
            Some(-2)
        );
        assert_eq!(
            second
                .lookup(
                    MarkovIndex::from_pc(0x8000),
                    &mut mem,
                    Some(&mut shared),
                    2_000
                )
                .delta,
            Some(3)
        );
    }

    #[test]
    fn the_adapter_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let config = HierarchyConfig::paper_baseline(4);
        let mut shared = SharedPvProxy::new(0, PvConfig::pv8());
        let table = SharedVirtualizedMarkov::new(
            &mut shared,
            PvConfig::pv8(),
            config.pv_regions.core_base(0),
        );
        assert_send(&table);
        assert_send(&shared);
    }
}
