//! Next-address-table storage backends: dedicated on-chip and virtualized.
//!
//! Mirrors the structure of `pv_sms::pht`: the engine talks to its table
//! through [`NextAddrStorage`], so the same engine runs unmodified over a
//! conventional on-chip table or over the `pv-core` substrate.

use crate::entry::{MarkovConfig, MarkovEntry, MarkovIndex};
use pv_core::{PvConfig, PvEntry, PvProxy, PvStorageBudget, SharedPvProxy, VirtualizedBackend};
use pv_mem::{Address, MemoryHierarchy, ReplacementKind, SetAssociative};

/// Result of a next-address lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextAddrLookup {
    /// The predicted block delta, or `None` on a predictor miss.
    pub delta: Option<i64>,
    /// Cycle at which the prediction is available to the prefetch engine.
    pub ready_at: u64,
}

/// Storage backend for the next-address table.
///
/// As with `pv_sms::PatternStorage`, backends registered with a per-core
/// [`SharedPvProxy`] receive the proxy by `&mut` reference (`shared`) on
/// every call; self-contained backends ignore it. `Send` is a supertrait so
/// a boxed storage can cross threads with the `System` that owns it.
pub trait NextAddrStorage: std::fmt::Debug + Send {
    /// Looks up the delta stored for `index`.
    fn lookup(
        &mut self,
        index: MarkovIndex,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> NextAddrLookup;

    /// Stores `delta` for `index`, replacing any previous delta. Deltas that
    /// cannot be encoded (zero or out of range) are ignored.
    fn store(
        &mut self,
        index: MarkovIndex,
        delta: i64,
        mem: &mut MemoryHierarchy,
        shared: Option<&mut SharedPvProxy>,
        now: u64,
    );

    /// Human-readable label used in experiment reports.
    fn label(&self) -> String;

    /// Dedicated on-chip storage in bytes required by this backend.
    fn dedicated_storage_bytes(&self) -> u64;

    /// Number of deltas currently retained (diagnostic).
    fn resident_entries(&self) -> usize;

    /// Access to the concrete backend type for backend-specific statistics.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Resets backend statistics (learned state is preserved).
    fn reset_stats(&mut self) {}
}

/// A conventional dedicated on-chip next-address table: set-associative,
/// LRU.
#[derive(Debug)]
pub struct DedicatedMarkov {
    config: MarkovConfig,
    table: SetAssociative<i64>,
}

impl DedicatedMarkov {
    /// Creates a dedicated table.
    pub fn new(config: MarkovConfig) -> Self {
        config.assert_valid();
        DedicatedMarkov {
            table: SetAssociative::new(
                config.table_sets,
                config.dedicated_ways,
                ReplacementKind::Lru,
            ),
            config,
        }
    }
}

impl NextAddrStorage for DedicatedMarkov {
    fn lookup(
        &mut self,
        index: MarkovIndex,
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> NextAddrLookup {
        let set = index.set_index(self.config.table_sets);
        let tag = u64::from(index.tag(self.config.table_sets));
        NextAddrLookup {
            delta: self.table.get(set, tag).copied(),
            ready_at: now + self.config.dedicated_lookup_latency,
        }
    }

    fn store(
        &mut self,
        index: MarkovIndex,
        delta: i64,
        _mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        _now: u64,
    ) {
        if delta == 0 || delta.abs() > MarkovEntry::max_delta() {
            return;
        }
        let set = index.set_index(self.config.table_sets);
        let tag = u64::from(index.tag(self.config.table_sets));
        let _ = self.table.insert(set, tag, delta);
    }

    fn label(&self) -> String {
        format!("Markov-{}K", self.config.table_sets / 1024)
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        self.config.dedicated_storage_bytes()
    }

    fn resident_entries(&self) -> usize {
        self.table.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The virtualized next-address table: the same generic `PvProxy` the SMS
/// backend uses, instantiated at `MarkovEntry`'s 40-bit geometry.
#[derive(Debug)]
pub struct VirtualizedMarkov {
    proxy: PvProxy<MarkovEntry>,
}

impl VirtualizedMarkov {
    /// Creates the virtualized table for `core`, with its PVTable based at
    /// `pv_start`.
    ///
    /// # Panics
    ///
    /// Panics if the configured number of table sets leaves more index tag
    /// bits than the packed entry stores (mirrors `VirtualizedPht::new`).
    pub fn new(core: usize, config: PvConfig, pv_start: Address) -> Self {
        let index_tag_bits = crate::entry::INDEX_BITS - config.table_sets.trailing_zeros();
        assert!(
            index_tag_bits <= MarkovEntry::TAG_BITS,
            "a {}-set PVTable needs {} tag bits but MarkovEntry stores {}",
            config.table_sets,
            index_tag_bits,
            MarkovEntry::TAG_BITS
        );
        VirtualizedMarkov {
            proxy: PvProxy::new(core, config, pv_start),
        }
    }

    /// The generic proxy underneath (PVCache, PVTable, statistics).
    pub fn proxy(&self) -> &PvProxy<MarkovEntry> {
        &self.proxy
    }

    /// The Section 4.6-style storage budget of a Markov proxy with
    /// `config`.
    pub fn storage_budget(config: &PvConfig) -> PvStorageBudget {
        PvStorageBudget::for_entry::<MarkovEntry>(config)
    }

    /// Writes every dirty PVCache entry back to the memory hierarchy.
    pub fn drain(&mut self, mem: &mut MemoryHierarchy, now: u64) {
        VirtualizedBackend::drain(&mut self.proxy, mem, now);
    }
}

impl NextAddrStorage for VirtualizedMarkov {
    fn lookup(
        &mut self,
        index: MarkovIndex,
        mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> NextAddrLookup {
        let lookup = self.proxy.lookup(u64::from(index.raw()), mem, now);
        NextAddrLookup {
            delta: lookup.entry.map(|e| e.delta()),
            ready_at: lookup.ready_at,
        }
    }

    fn store(
        &mut self,
        index: MarkovIndex,
        delta: i64,
        mem: &mut MemoryHierarchy,
        _shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) {
        let raw = u64::from(index.raw());
        let Some(entry) = MarkovEntry::new(self.proxy.tag_of(raw) as u16, delta) else {
            return;
        };
        self.proxy.store(raw, entry, mem, now);
    }

    fn label(&self) -> String {
        format!("Markov-{}", VirtualizedBackend::label(&self.proxy))
    }

    fn dedicated_storage_bytes(&self) -> u64 {
        self.proxy.dedicated_storage_bytes()
    }

    fn resident_entries(&self) -> usize {
        self.proxy.resident_entries()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn reset_stats(&mut self) {
        VirtualizedBackend::reset_stats(&mut self.proxy);
    }
}

/// Builds the storage variant for `virtualized`: a [`VirtualizedMarkov`]
/// over `pv` when set, a [`DedicatedMarkov`] otherwise.
pub fn build_markov_storage(
    config: MarkovConfig,
    virtualized: Option<(usize, PvConfig, Address)>,
) -> Box<dyn NextAddrStorage> {
    match virtualized {
        Some((core, pv, base)) => Box::new(VirtualizedMarkov::new(core, pv, base)),
        None => Box::new(DedicatedMarkov::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_mem::HierarchyConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(4))
    }

    #[test]
    fn dedicated_table_stores_and_retrieves_deltas() {
        let mut table = DedicatedMarkov::new(MarkovConfig::paper_1k());
        let mut mem = mem();
        let index = MarkovIndex::from_pc(0x4000);
        assert!(table.lookup(index, &mut mem, None, 0).delta.is_none());
        table.store(index, -7, &mut mem, None, 0);
        assert_eq!(table.lookup(index, &mut mem, None, 10).delta, Some(-7));
        assert_eq!(table.resident_entries(), 1);
        assert_eq!(table.label(), "Markov-1K");
    }

    #[test]
    fn virtualized_table_round_trips_through_the_proxy() {
        let config = HierarchyConfig::paper_baseline(4);
        let mut mem = MemoryHierarchy::new(config);
        let mut table = VirtualizedMarkov::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        let index = MarkovIndex::from_pc(0x4000);
        table.store(index, 3, &mut mem, None, 0);
        assert_eq!(table.lookup(index, &mut mem, None, 100).delta, Some(3));
        assert_eq!(table.proxy().stats().stores, 1);
        assert!(
            mem.stats().l2_requests.predictor > 0,
            "table traffic flows through the L2"
        );
        assert_eq!(table.label(), "Markov-PV-8");
    }

    #[test]
    fn markov_budget_differs_from_sms_because_widths_differ() {
        let budget = VirtualizedMarkov::storage_budget(&PvConfig::pv8());
        // 8 sets x 12 entries x 40 bits = 480 bytes of PVCache data
        // (vs the SMS instance's 473), same fixed proxy overheads.
        assert_eq!(budget.pvcache_data_bytes, 480);
        assert_eq!(budget.total_bytes(), 896);
    }

    #[test]
    fn unencodable_deltas_are_dropped_not_stored() {
        let config = HierarchyConfig::paper_baseline(4);
        let mut mem = MemoryHierarchy::new(config);
        let mut table = VirtualizedMarkov::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
        let index = MarkovIndex::from_pc(0x4000);
        table.store(index, 0, &mut mem, None, 0);
        table.store(index, MarkovEntry::max_delta() + 1, &mut mem, None, 0);
        assert_eq!(table.proxy().stats().stores, 0);
        assert!(table.lookup(index, &mut mem, None, 10).delta.is_none());
    }
}
