//! The next-address prefetch engine: learns per-PC block deltas and turns
//! them into prefetches.
//!
//! Like the SMS engine, this engine is storage-agnostic: it sees its table
//! only through [`NextAddrStorage`], so it runs unchanged over the dedicated
//! on-chip table or the virtualized one.

use crate::entry::{MarkovConfig, MarkovIndex};
use crate::storage::NextAddrStorage;
use pv_core::SharedPvProxy;
use pv_mem::{Address, BlockAddr, MemoryHierarchy};

/// Counters maintained by one Markov engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarkovStats {
    /// Data accesses observed.
    pub accesses_observed: u64,
    /// Table lookups performed.
    pub lookups: u64,
    /// Lookups that found a delta.
    pub hits: u64,
    /// Deltas stored (transitions learned).
    pub stores: u64,
    /// Prefetches produced.
    pub predictions: u64,
}

impl MarkovStats {
    /// Adds `other`'s counters into `self` (aggregation across cores).
    pub fn merge(&mut self, other: &MarkovStats) {
        let MarkovStats {
            accesses_observed,
            lookups,
            hits,
            stores,
            predictions,
        } = *other;
        self.accesses_observed += accesses_observed;
        self.lookups += lookups;
        self.hits += hits;
        self.stores += stores;
        self.predictions += predictions;
    }

    /// Lookup hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One prefetch the engine wants performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovResponse {
    /// Block to bring into the L1 data cache, if a delta was predicted.
    pub prefetch: Option<BlockAddr>,
    /// Cycle at which the prediction became available (the prefetch cannot
    /// be issued earlier; a virtualized lookup may add latency here).
    pub issue_at: u64,
}

/// The PC-indexed next-address prefetch engine for one core.
#[derive(Debug)]
pub struct MarkovPrefetcher {
    config: MarkovConfig,
    storage: Box<dyn NextAddrStorage>,
    /// The previous data access: its table index and block (the transition
    /// source the next access completes).
    last: Option<(MarkovIndex, BlockAddr)>,
    stats: MarkovStats,
}

impl MarkovPrefetcher {
    /// Creates an engine with the given configuration and table backend.
    pub fn new(config: MarkovConfig, storage: Box<dyn NextAddrStorage>) -> Self {
        config.assert_valid();
        MarkovPrefetcher {
            config,
            storage,
            last: None,
            stats: MarkovStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MarkovConfig {
        &self.config
    }

    /// The table storage backend.
    pub fn storage(&self) -> &dyn NextAddrStorage {
        self.storage.as_ref()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &MarkovStats {
        &self.stats
    }

    /// Resets the statistics (the learned state is preserved), including any
    /// statistics the storage backend keeps.
    pub fn reset_stats(&mut self) {
        self.stats = MarkovStats::default();
        self.storage.reset_stats();
    }

    /// Observes one L1 data access by the core and returns the predicted
    /// prefetch, if any.
    pub fn on_data_access(
        &mut self,
        pc: u64,
        address: u64,
        mem: &mut MemoryHierarchy,
        mut shared: Option<&mut SharedPvProxy>,
        now: u64,
    ) -> MarkovResponse {
        self.stats.accesses_observed += 1;
        let block = Address::new(address).block();
        // 1. Learn: the previous access's PC led to this block.
        if let Some((last_index, last_block)) = self.last {
            let delta = block.raw() as i64 - last_block.raw() as i64;
            if delta != 0 {
                self.stats.stores += 1;
                self.storage.store(last_index, delta, mem, shared.as_deref_mut(), now);
            }
        }
        // 2. Predict: what followed this PC's access last time?
        let index = MarkovIndex::from_pc(pc);
        self.stats.lookups += 1;
        let lookup = self.storage.lookup(index, mem, shared, now);
        self.last = Some((index, block));
        match lookup.delta {
            Some(delta) => {
                self.stats.hits += 1;
                let target = block.raw() as i64 + delta;
                if target < 0 {
                    return MarkovResponse {
                        prefetch: None,
                        issue_at: lookup.ready_at,
                    };
                }
                self.stats.predictions += 1;
                MarkovResponse {
                    prefetch: Some(BlockAddr::new(target as u64)),
                    issue_at: lookup.ready_at,
                }
            }
            None => MarkovResponse {
                prefetch: None,
                issue_at: lookup.ready_at,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{DedicatedMarkov, VirtualizedMarkov};
    use pv_core::{PvConfig, VirtualizedBackend};
    use pv_mem::HierarchyConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(4))
    }

    fn dedicated_engine() -> MarkovPrefetcher {
        let config = MarkovConfig::paper_1k();
        MarkovPrefetcher::new(config, Box::new(DedicatedMarkov::new(config)))
    }

    /// Trains the transition `pc: block b -> next access at b + 2 blocks`
    /// and re-executes `pc` to check the prediction.
    fn train_and_retrigger(
        engine: &mut MarkovPrefetcher,
        mem: &mut MemoryHierarchy,
    ) -> MarkovResponse {
        // pc 0x4000 touches block 100; the following access (pc 0x4004)
        // lands on block 102, so pc 0x4000's entry learns delta +2.
        engine.on_data_access(0x4000, 100 * 64, mem, None, 0);
        engine.on_data_access(0x4004, 102 * 64, mem, None, 10);
        // Re-run pc 0x4000 at a different block: it predicts +2 blocks.
        engine.on_data_access(0x4008, 500 * 64, mem, None, 20);
        engine.on_data_access(0x4000, 200 * 64, mem, None, 30)
    }

    #[test]
    fn cold_engine_produces_no_prefetches() {
        let mut engine = dedicated_engine();
        let mut mem = mem();
        let response = engine.on_data_access(0x4000, 0x10_0000, &mut mem, None, 0);
        assert!(response.prefetch.is_none());
        assert_eq!(engine.stats().hits, 0);
    }

    #[test]
    fn learned_delta_predicts_relative_to_the_new_block() {
        let mut engine = dedicated_engine();
        let mut mem = mem();
        let response = train_and_retrigger(&mut engine, &mut mem);
        assert_eq!(
            response.prefetch,
            Some(BlockAddr::new(202)),
            "delta +2 from block 200"
        );
        assert!(engine.stats().hits >= 1);
        assert!(engine.stats().predictions >= 1);
    }

    #[test]
    fn virtualized_engine_behaves_like_dedicated_but_uses_memory() {
        let hierarchy_config = HierarchyConfig::paper_baseline(4);
        let mut mem = MemoryHierarchy::new(hierarchy_config);
        let config = MarkovConfig::paper_1k();
        let storage =
            VirtualizedMarkov::new(0, PvConfig::pv8(), hierarchy_config.pv_regions.core_base(0));
        let mut engine = MarkovPrefetcher::new(config, Box::new(storage));
        let response = train_and_retrigger(&mut engine, &mut mem);
        assert_eq!(response.prefetch, Some(BlockAddr::new(202)));
        assert!(
            mem.stats().l2_requests.predictor > 0,
            "virtualized table traffic hits the L2"
        );
        let proxy_stats = engine
            .storage()
            .as_any()
            .downcast_ref::<VirtualizedMarkov>()
            .unwrap()
            .proxy()
            .stats();
        assert!(proxy_stats.memory_requests > 0);
    }

    #[test]
    fn stats_reset_keeps_learned_state() {
        let mut engine = dedicated_engine();
        let mut mem = mem();
        // Learn delta +2 for pc 0x4000 (stored by the following access).
        engine.on_data_access(0x4000, 100 * 64, &mut mem, None, 0);
        engine.on_data_access(0x4004, 102 * 64, &mut mem, None, 10);
        engine.reset_stats();
        assert_eq!(engine.stats().hits, 0);
        // The next 0x4000 access stores a delta for 0x4004 (the previous
        // access), not for 0x4000 itself, so 0x4000's entry is intact.
        let response = engine.on_data_access(0x4000, 300 * 64, &mut mem, None, 100);
        assert_eq!(
            response.prefetch,
            Some(BlockAddr::new(302)),
            "reset must not clear the table"
        );
    }
}
