//! # pv-markov — a second virtualized backend
//!
//! A PC-indexed next-address (Markov-style) data prefetcher, built to prove
//! that the `pv-core` substrate is predictor-agnostic (paper Section 2: any
//! predictor's metadata tables can be emulated in the memory hierarchy; SMS
//! is merely the case study).
//!
//! The predictor keys on the program counter of a memory instruction and
//! learns the *block delta* that followed its last access: table\[PC\] = the
//! signed distance (in cache blocks) between consecutive data accesses made
//! under that PC. On the next execution of the PC the learned delta predicts
//! the block the program will touch next, and the prefetcher fetches it into
//! the L1. This is the classic correlation/next-address scheme — much
//! simpler than SMS, with a *different table geometry*: 40-bit entries
//! (12-bit tag + 28-bit delta payload) instead of SMS's 43-bit entries, so
//! twelve entries pack into each 64-byte PVTable block instead of eleven.
//!
//! Like the SMS PHT, the table's storage is abstracted behind a trait
//! ([`NextAddrStorage`]) with a dedicated on-chip implementation
//! ([`DedicatedMarkov`]) and a virtualized one ([`VirtualizedMarkov`])
//! that adapts the *same* generic `PvProxy` — instantiated at
//! `PvProxy<MarkovEntry>` — the SMS backend uses at `PvProxy<SmsEntry>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohabit;
pub mod entry;
pub mod prefetcher;
pub mod storage;

pub use cohabit::SharedVirtualizedMarkov;
pub use entry::{MarkovConfig, MarkovEntry, MarkovIndex, INDEX_BITS, PC_INDEX_BITS};
pub use prefetcher::{MarkovPrefetcher, MarkovResponse, MarkovStats};
pub use storage::{
    build_markov_storage, DedicatedMarkov, NextAddrLookup, NextAddrStorage, VirtualizedMarkov,
};
