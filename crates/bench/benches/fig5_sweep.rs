//! Bench target for Figure 5 - coverage across PHT sizes: regenerates the figure's rows at smoke scale
//! and measures the cost of a representative simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use pv_bench::{bench_runner, figure_bench_group, print_report, smoke_run};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

fn bench(c: &mut Criterion) {
    let runner = bench_runner();
    print_report(
        "Figure 5 - coverage across PHT sizes",
        &pv_experiments::fig5::report(&runner),
    );
    let mut group = figure_bench_group(c, "fig5_sweep");
    group.bench_function("Apache_sms_1k_11a_smoke_run", |b| {
        b.iter(|| smoke_run(WorkloadId::Apache, PrefetcherKind::sms_1k_11a()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
