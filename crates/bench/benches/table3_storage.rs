//! Bench target for Table 3 and Section 4.6: prints the storage accounting
//! and measures the PVTable set packing codec (the Figure 3a layout).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_bench::print_report;
use pv_core::{decode_set, encode_set, PvConfig, PvLayout, PvSet};
use pv_sms::{SmsEntry, SpatialPattern};

fn bench(c: &mut Criterion) {
    print_report("Table 3 - PHT storage", &pv_experiments::table3::report());
    print_report(
        "Section 4.6 - PVProxy storage",
        &pv_experiments::sec46::report(),
    );

    let config = PvConfig::pv8();
    let layout = PvLayout::of::<SmsEntry>(config.block_bytes);
    let mut set = PvSet::new(layout.entries_per_block());
    for i in 0..layout.entries_per_block() as u16 {
        set.insert(SmsEntry::new(
            i * 37 % 2048,
            SpatialPattern::from_bits(0x8421_1248 ^ u32::from(i)),
        ));
    }
    c.bench_function("table3_encode_pvtable_set", |b| {
        b.iter(|| encode_set(black_box(&set), &layout))
    });
    let encoded = encode_set(&set, &layout);
    c.bench_function("table3_decode_pvtable_set", |b| {
        b.iter(|| decode_set::<SmsEntry>(black_box(&encoded), &layout))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
