//! Bench target for Figure 8 - application vs PV data off-chip: regenerates the figure's rows at smoke scale
//! and measures the cost of a representative simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use pv_bench::{bench_runner, figure_bench_group, print_report, smoke_run};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

fn bench(c: &mut Criterion) {
    let runner = bench_runner();
    print_report(
        "Figure 8 - application vs PV data off-chip",
        &pv_experiments::fig8::report(&runner),
    );
    let mut group = figure_bench_group(c, "fig8_split");
    group.bench_function("Db2_sms_pv8_smoke_run", |b| {
        b.iter(|| smoke_run(WorkloadId::Db2, PrefetcherKind::sms_pv8()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
