//! Bench target for Table 1: prints the system configuration and measures
//! the cost of constructing the simulated memory hierarchy.

use criterion::{criterion_group, criterion_main, Criterion};
use pv_bench::print_report;
use pv_mem::{HierarchyConfig, MemoryHierarchy};

fn bench(c: &mut Criterion) {
    print_report(
        "Table 1 - system configuration",
        &pv_experiments::table1::report(),
    );
    print_report("Table 2 - workloads", &pv_experiments::table2::report());
    c.bench_function("table1_build_paper_hierarchy", |b| {
        b.iter(|| MemoryHierarchy::new(HierarchyConfig::paper_baseline(4)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
