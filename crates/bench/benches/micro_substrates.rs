//! Microbenchmarks of the substrates the reproduction is built on: cache
//! accesses, PHT lookups through both storage backends, PVProxy operations
//! and workload-trace generation. These guard the simulator's own
//! performance (the experiments run hundreds of millions of such operations).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pv_core::PvConfig;
use pv_mem::{AccessKind, CacheConfig, DataClass, HierarchyConfig, MemoryHierarchy, Requester};
use pv_sms::{
    build_storage, PatternStorage, SmsConfig, SpatialPattern, TriggerKey, VirtualizedPht,
};
use pv_workloads::{workloads, TraceGenerator};

fn bench_cache(c: &mut Criterion) {
    let mut cache = pv_mem::Cache::new("bench-L1", CacheConfig::l1_paper());
    // Pre-fill with a footprint larger than the cache so the benchmark sees
    // a hit/miss mix.
    for block in 0..4096u64 {
        cache.fill(
            pv_mem::BlockAddr::new(block),
            false,
            0,
            pv_mem::FillOrigin::Demand,
        );
    }
    let mut block = 0u64;
    c.bench_function("micro_l1_cache_access", |b| {
        b.iter(|| {
            block = (block + 17) % 8192;
            cache.access(
                pv_mem::BlockAddr::new(black_box(block)),
                AccessKind::Read,
                block,
            )
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::paper_baseline(4));
    let mut addr = 0u64;
    c.bench_function("micro_hierarchy_demand_access", |b| {
        b.iter(|| {
            addr = (addr + 4096) % (256 * 1024 * 1024);
            hierarchy.access(
                Requester::data(0),
                black_box(addr),
                AccessKind::Read,
                DataClass::Application,
                addr,
            )
        })
    });
}

fn bench_pht(c: &mut Criterion) {
    let config = SmsConfig::paper_1k_11a();
    let mut dedicated = build_storage(&config);
    let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_baseline(1));
    for i in 0..4096u64 {
        dedicated.store(
            TriggerKey::new(i * 4, (i % 32) as u32).index(),
            SpatialPattern::from_bits(0xA5A5_5A5A),
            &mut mem,
            None,
            i,
        );
    }
    let mut i = 0u64;
    c.bench_function("micro_dedicated_pht_lookup", |b| {
        b.iter(|| {
            i += 1;
            dedicated.lookup(
                TriggerKey::new((i % 8192) * 4, (i % 32) as u32).index(),
                &mut mem,
                None,
                i,
            )
        })
    });

    let hierarchy_config = HierarchyConfig::paper_baseline(1);
    let mut virtualized =
        VirtualizedPht::new(0, PvConfig::pv8(), hierarchy_config.pv_regions.core_base(0));
    let mut mem = MemoryHierarchy::new(hierarchy_config);
    let mut i = 0u64;
    c.bench_function("micro_pvproxy_lookup", |b| {
        b.iter(|| {
            i += 1;
            virtualized.lookup(
                TriggerKey::new((i % 8192) * 4, (i % 32) as u32).index(),
                &mut mem,
                None,
                i * 10,
            )
        })
    });
}

fn bench_workload(c: &mut Criterion) {
    let params = workloads::oracle();
    let mut generator = TraceGenerator::new(&params, 7, 0);
    c.bench_function("micro_trace_generation", |b| {
        b.iter(|| generator.next().expect("trace is infinite"))
    });
}

fn all(c: &mut Criterion) {
    bench_cache(c);
    bench_hierarchy(c);
    bench_pht(c);
    bench_workload(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
