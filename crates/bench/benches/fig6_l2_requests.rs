//! Bench target for Figure 6 - L2 request increase: regenerates the figure's rows at smoke scale
//! and measures the cost of a representative simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use pv_bench::{bench_runner, figure_bench_group, print_report, smoke_run};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

fn bench(c: &mut Criterion) {
    let runner = bench_runner();
    print_report(
        "Figure 6 - L2 request increase",
        &pv_experiments::fig6::report(&runner),
    );
    let mut group = figure_bench_group(c, "fig6_l2_requests");
    group.bench_function("Oracle_sms_pv8_smoke_run", |b| {
        b.iter(|| smoke_run(WorkloadId::Oracle, PrefetcherKind::sms_pv8()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
