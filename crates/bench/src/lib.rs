//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target corresponds to one table or figure of the paper: it
//! first *regenerates* the rows/series the paper reports (printed to
//! standard error so `cargo bench` output contains the reproduction data)
//! and then benchmarks the cost of the underlying simulation kernel so
//! regressions in the simulator itself are caught.

use criterion::Criterion;
use pv_experiments::{Runner, Scale};
use pv_sim::{run_workload, PrefetcherKind, RunMetrics, SimConfig};
use pv_workloads::WorkloadId;

/// Builds the smoke-scale runner used to regenerate a figure inside a bench.
pub fn bench_runner() -> Runner {
    Runner::with_default_threads(Scale::Smoke)
}

/// Prints a figure/table report to standard error with a banner, so the
/// regenerated rows appear in the `cargo bench` log.
pub fn print_report(name: &str, report: &str) {
    eprintln!("\n===== {name} (regenerated at smoke scale) =====\n{report}");
}

/// Runs one smoke-scale simulation of `workload` with `prefetcher`; used as
/// the measured kernel inside figure benches.
pub fn smoke_run(workload: WorkloadId, prefetcher: PrefetcherKind) -> RunMetrics {
    let mut config = SimConfig::quick(prefetcher);
    config.warmup_records = 20_000;
    config.measure_records = 30_000;
    run_workload(&config, &workload.params())
}

/// Standard Criterion settings for the figure benches: few samples because
/// each iteration is a full (smoke-scale) simulation.
pub fn figure_bench_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name.to_owned());
    group.sample_size(10);
    group
}
