//! Miss-status holding registers.
//!
//! An [`MshrFile`] tracks outstanding fills at block granularity so that
//! concurrent accesses to a block that is already being fetched merge into
//! the in-flight request instead of generating duplicate traffic. Both the
//! L1/L2 caches and the PVProxy use this structure (the paper's PVProxy
//! contains "an MSHR-like structure").

use crate::address::BlockAddr;
use std::collections::HashMap;

/// One outstanding fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// Block being fetched.
    pub block: BlockAddr,
    /// Cycle at which the fill completes.
    pub ready_at: u64,
    /// Number of requests merged into this entry (including the initiator).
    pub merged: u32,
}

/// Outcome of asking the MSHR file to track a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the fill.
    Allocated,
    /// The block was already in flight; the caller should wait until
    /// `ready_at` instead of issuing a new fill.
    Merged {
        /// Completion cycle of the in-flight fill.
        ready_at: u64,
    },
    /// No free entry was available; the caller must stall and retry (modelled
    /// as paying the full fill latency serially).
    Full,
}

/// A file of miss-status holding registers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: HashMap<u64, MshrEntry>,
    /// Cached minimum `ready_at` over `entries` (`u64::MAX` when empty), so
    /// the per-miss [`Self::retire`] call is a single compare on the common
    /// nothing-has-completed-yet path instead of a full map scan. Updated
    /// on insert (`min`), recomputed only when entries actually retire.
    earliest: u64,
    /// Peak simultaneous occupancy, for reporting.
    peak_occupancy: usize,
    /// Total merges performed.
    merges: u64,
    /// Times a request found the file full.
    full_stalls: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// Occupancy is hard-capped at `capacity` ([`Self::register`] reports
    /// [`MshrOutcome::Full`] instead of growing), so pre-sizing the map
    /// here means it never reallocates afterwards — the access hot path
    /// stays allocation-free (pinned by `tests/tests/alloc_free.rs`).
    /// The reservation is 2× the cap because the std `HashMap` leaves
    /// tombstones behind removals and only rehashes in place (rather than
    /// growing) when live items fit in half the table; twice the cap keeps
    /// every retire/insert churn pattern under that threshold, whatever
    /// the per-process hash seed scatters where.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: HashMap::with_capacity(capacity * 2),
            earliest: u64::MAX,
            peak_occupancy: 0,
            merges: 0,
            full_stalls: 0,
        }
    }

    /// Number of entries currently in flight.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Peak simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Total number of merged (secondary) misses.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of requests that found the file full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Drops entries whose fills have completed by `now`. The cached
    /// earliest completion makes the common no-entry-has-completed case a
    /// single compare; the map is only scanned when something retires.
    pub fn retire(&mut self, now: u64) {
        if self.earliest > now {
            return;
        }
        self.entries.retain(|_, entry| entry.ready_at > now);
        self.earliest = self.entries.values().map(|entry| entry.ready_at).min().unwrap_or(u64::MAX);
    }

    /// Looks up an in-flight fill for `block`.
    pub fn lookup(&self, block: BlockAddr) -> Option<&MshrEntry> {
        self.entries.get(&block.raw())
    }

    /// The completion cycle of the entry that will retire first, or `None`
    /// when the file is empty. Under queued contention a requester that
    /// finds the file full waits until this cycle for a slot to drain.
    pub fn earliest_ready(&self) -> Option<u64> {
        (self.earliest != u64::MAX).then_some(self.earliest)
    }

    /// Queued-contention backpressure: when the file is full at cycle
    /// `now`, waits until the earliest outstanding fill drains (retiring
    /// completed entries) and returns the wait in cycles; returns 0 when a
    /// slot is already free. The request is delayed, never dropped.
    pub fn wait_for_slot(&mut self, now: u64) -> u64 {
        if self.entries.len() < self.capacity {
            return 0;
        }
        let Some(drain) = self.earliest_ready() else {
            return 0;
        };
        let start = now.max(drain);
        self.retire(start);
        start - now
    }

    /// Registers a miss on `block` whose fill would complete at `ready_at`.
    ///
    /// Completed entries are retired first (based on `now`), then the miss
    /// either merges into an existing entry, allocates a new one, or reports
    /// that the file is full.
    pub fn register(&mut self, block: BlockAddr, now: u64, ready_at: u64) -> MshrOutcome {
        self.retire(now);
        if let Some(entry) = self.entries.get_mut(&block.raw()) {
            entry.merged += 1;
            self.merges += 1;
            return MshrOutcome::Merged {
                ready_at: entry.ready_at,
            };
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(
            block.raw(),
            MshrEntry {
                block,
                ready_at,
                merged: 1,
            },
        );
        self.earliest = self.earliest.min(ready_at);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Clears all in-flight state (used when resetting between sampling
    /// windows).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.earliest = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_allocates() {
        let mut mshr = MshrFile::new(4);
        let outcome = mshr.register(BlockAddr::new(1), 0, 100);
        assert_eq!(outcome, MshrOutcome::Allocated);
        assert_eq!(mshr.occupancy(), 1);
    }

    #[test]
    fn second_miss_to_same_block_merges() {
        let mut mshr = MshrFile::new(4);
        mshr.register(BlockAddr::new(1), 0, 100);
        let outcome = mshr.register(BlockAddr::new(1), 10, 110);
        assert_eq!(outcome, MshrOutcome::Merged { ready_at: 100 });
        assert_eq!(mshr.merges(), 1);
        assert_eq!(mshr.occupancy(), 1);
    }

    #[test]
    fn completed_entries_retire() {
        let mut mshr = MshrFile::new(4);
        mshr.register(BlockAddr::new(1), 0, 100);
        // At cycle 200 the fill has completed; a new miss allocates again.
        let outcome = mshr.register(BlockAddr::new(1), 200, 300);
        assert_eq!(outcome, MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_reports_full() {
        let mut mshr = MshrFile::new(2);
        mshr.register(BlockAddr::new(1), 0, 100);
        mshr.register(BlockAddr::new(2), 0, 100);
        let outcome = mshr.register(BlockAddr::new(3), 0, 100);
        assert_eq!(outcome, MshrOutcome::Full);
        assert_eq!(mshr.full_stalls(), 1);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut mshr = MshrFile::new(8);
        for i in 0..5 {
            mshr.register(BlockAddr::new(i), 0, 100);
        }
        mshr.retire(1000);
        assert_eq!(mshr.occupancy(), 0);
        assert_eq!(mshr.peak_occupancy(), 5);
    }

    #[test]
    fn lookup_finds_in_flight_entries() {
        let mut mshr = MshrFile::new(2);
        mshr.register(BlockAddr::new(7), 0, 50);
        assert!(mshr.lookup(BlockAddr::new(7)).is_some());
        assert!(mshr.lookup(BlockAddr::new(8)).is_none());
        mshr.clear();
        assert!(mshr.lookup(BlockAddr::new(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }

    #[test]
    fn earliest_ready_reports_next_drain() {
        let mut mshr = MshrFile::new(4);
        assert_eq!(mshr.earliest_ready(), None);
        mshr.register(BlockAddr::new(1), 0, 300);
        mshr.register(BlockAddr::new(2), 0, 100);
        mshr.register(BlockAddr::new(3), 0, 200);
        assert_eq!(mshr.earliest_ready(), Some(100));
        mshr.retire(150);
        assert_eq!(mshr.earliest_ready(), Some(200));
    }

    /// The cached minimum behind `earliest_ready` must track inserts,
    /// partial retires (including the nothing-completed early exit) and
    /// clears.
    #[test]
    fn cached_earliest_survives_retire_insert_clear_cycles() {
        let mut mshr = MshrFile::new(4);
        mshr.register(BlockAddr::new(1), 0, 50);
        mshr.register(BlockAddr::new(2), 0, 150);
        mshr.retire(10); // nothing completed: the early-exit compare path
        assert_eq!(mshr.earliest_ready(), Some(50));
        assert_eq!(mshr.occupancy(), 2);
        mshr.retire(60); // retires the first entry, recomputes the minimum
        assert_eq!(mshr.earliest_ready(), Some(150));
        mshr.register(BlockAddr::new(3), 60, 100);
        assert_eq!(mshr.earliest_ready(), Some(100));
        mshr.clear();
        assert_eq!(mshr.earliest_ready(), None);
    }

    #[test]
    fn wait_for_slot_delays_until_a_drain_and_frees_it() {
        let mut mshr = MshrFile::new(2);
        mshr.register(BlockAddr::new(1), 0, 100);
        mshr.register(BlockAddr::new(2), 0, 250);
        // Full at cycle 10: wait until the first fill completes at 100.
        assert_eq!(mshr.wait_for_slot(10), 90);
        assert_eq!(mshr.occupancy(), 1, "the drained entry must be retired");
        assert_eq!(
            mshr.register(BlockAddr::new(3), 100, 500),
            MshrOutcome::Allocated
        );
        // Not full: no wait, nothing retired.
        let mut free = MshrFile::new(2);
        free.register(BlockAddr::new(1), 0, 100);
        assert_eq!(free.wait_for_slot(10), 0);
        assert_eq!(free.occupancy(), 1);
    }
}
