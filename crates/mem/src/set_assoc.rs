//! A generic set-associative array with pluggable replacement.
//!
//! The same container backs the L1/L2 cache tag arrays, the SMS pattern
//! history table and the PVCache inside the PVProxy, which keeps the
//! replacement and eviction behaviour identical everywhere it matters.
//!
//! This is the hottest structure in the simulator — every simulated access
//! walks it several times — so it is laid out for speed: entries live in one
//! flat `Vec` indexed by `set * ways + way`, replacement state is the
//! bit-packed [`ReplacementState`] (one enum for the whole array instead of
//! one boxed [`ReplacementPolicy`](crate::ReplacementPolicy) per set), and
//! occupancy is counted incrementally. After construction no operation
//! allocates. The boxed-policy formulation is retained as
//! [`ReferenceSetAssociative`](crate::set_assoc_ref::ReferenceSetAssociative)
//! and differential tests pin the two to identical behaviour.

use crate::replacement::{ReplacementKind, ReplacementState};
use std::fmt;

/// One occupied way: the tag stored there and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupied<T> {
    /// Tag identifying the entry within its set.
    pub tag: u64,
    /// Payload stored alongside the tag.
    pub value: T,
}

/// A set-associative array of `sets` sets with `ways` ways each.
///
/// Entries are addressed by `(set_index, tag)`. Replacement decisions within
/// a set are made by the array's inline [`ReplacementState`].
pub struct SetAssociative<T> {
    sets: usize,
    ways: usize,
    occupied: usize,
    /// Flat storage, way `w` of set `s` at index `s * ways + w`.
    entries: Vec<Option<Occupied<T>>>,
    replacement: ReplacementState,
    kind: ReplacementKind,
}

impl<T: fmt::Debug> fmt::Debug for SetAssociative<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssociative")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("replacement", &self.kind)
            .finish()
    }
}

impl<T> SetAssociative<T> {
    /// Creates an array with `sets` sets of `ways` ways using `replacement`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if the replacement policy
    /// rejects the way count (e.g. tree-PLRU with a non-power-of-two).
    pub fn new(sets: usize, ways: usize, replacement: ReplacementKind) -> Self {
        assert!(sets > 0, "a set-associative array needs at least one set");
        assert!(ways > 0, "a set-associative array needs at least one way");
        let mut entries = Vec::new();
        entries.resize_with(sets * ways, || None);
        SetAssociative {
            sets,
            ways,
            occupied: 0,
            entries,
            replacement: ReplacementState::new(replacement, sets, ways),
            kind: replacement,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of occupied entries across all sets (tracked incrementally,
    /// O(1)).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    fn assert_set(&self, set: usize) {
        assert!(
            set < self.sets,
            "set index {set} out of range for {} sets",
            self.sets
        );
    }

    fn set_slice(&self, set: usize) -> &[Option<Occupied<T>>] {
        &self.entries[set * self.ways..(set + 1) * self.ways]
    }

    fn way_of(&self, set: usize, tag: u64) -> Option<usize> {
        self.set_slice(set)
            .iter()
            .position(|way| way.as_ref().is_some_and(|occ| occ.tag == tag))
    }

    /// Looks up `(set, tag)` without updating replacement state.
    pub fn peek(&self, set: usize, tag: u64) -> Option<&T> {
        self.assert_set(set);
        self.way_of(set, tag)
            .and_then(|way| self.entries[set * self.ways + way].as_ref())
            .map(|occ| &occ.value)
    }

    /// Looks up `(set, tag)`, updating recency on a hit.
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.replacement.on_access(set, way);
        self.entries[set * self.ways + way].as_ref().map(|occ| &occ.value)
    }

    /// Mutable lookup, updating recency on a hit.
    pub fn get_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.replacement.on_access(set, way);
        self.entries[set * self.ways + way].as_mut().map(|occ| &mut occ.value)
    }

    /// Whether `(set, tag)` is present (no recency update).
    pub fn contains(&self, set: usize, tag: u64) -> bool {
        self.peek(set, tag).is_some()
    }

    /// Inserts `(set, tag) -> value`, returning the evicted entry if the set
    /// was full and a victim had to be replaced, or the previous value if the
    /// tag was already present.
    pub fn insert(&mut self, set: usize, tag: u64, value: T) -> Option<Occupied<T>> {
        self.assert_set(set);
        let base = set * self.ways;
        if let Some(way) = self.way_of(set, tag) {
            self.replacement.on_access(set, way);
            return self.entries[base + way].replace(Occupied { tag, value });
        }
        let entries = &self.entries;
        let way = self.replacement.victim(set, |w| entries[base + w].is_some());
        assert!(
            way < self.ways,
            "replacement state returned way out of range"
        );
        let evicted = self.entries[base + way].replace(Occupied { tag, value });
        if evicted.is_none() {
            self.occupied += 1;
        }
        self.replacement.on_fill(set, way);
        evicted
    }

    /// Removes `(set, tag)` and returns its payload. The replacement state
    /// observes the invalidation, so the vacated way's stale recency cannot
    /// outlive the entry.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        let removed = self.entries[set * self.ways + way].take().map(|occ| occ.value);
        if removed.is_some() {
            self.occupied -= 1;
            self.replacement.on_invalidate(set, way);
        }
        removed
    }

    /// Iterates over all occupied entries of one set.
    pub fn set_entries(&self, set: usize) -> impl Iterator<Item = &Occupied<T>> {
        self.assert_set(set);
        self.set_slice(set).iter().filter_map(|way| way.as_ref())
    }

    /// Iterates over every occupied entry as `(set, &Occupied)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Occupied<T>)> {
        let ways = self.ways;
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(index, way)| way.as_ref().map(|occ| (index / ways, occ)))
    }

    /// Clears every set (replacement state is left as-is, matching the
    /// reference implementation).
    pub fn clear(&mut self) {
        for way in &mut self.entries {
            *way = None;
        }
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssociative<u32> {
        SetAssociative::new(4, 2, ReplacementKind::Lru)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut arr = small();
        assert!(arr.insert(1, 0xaa, 7).is_none());
        assert_eq!(arr.get(1, 0xaa), Some(&7));
        assert_eq!(arr.peek(1, 0xaa), Some(&7));
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn insert_same_tag_replaces_value_and_returns_previous() {
        let mut arr = small();
        arr.insert(0, 5, 1);
        let prev = arr.insert(0, 5, 2);
        assert_eq!(prev.map(|o| o.value), Some(1));
        assert_eq!(arr.get(0, 5), Some(&2));
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut arr = small();
        arr.insert(2, 1, 10);
        arr.insert(2, 2, 20);
        // Touch tag 1 so tag 2 becomes LRU.
        arr.get(2, 1);
        let evicted = arr.insert(2, 3, 30).expect("set was full, must evict");
        assert_eq!(evicted.tag, 2);
        assert_eq!(evicted.value, 20);
        assert!(arr.contains(2, 1));
        assert!(arr.contains(2, 3));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut arr = small();
        arr.insert(3, 9, 99);
        assert_eq!(arr.invalidate(3, 9), Some(99));
        assert!(!arr.contains(3, 9));
        assert_eq!(arr.invalidate(3, 9), None);
    }

    #[test]
    fn capacity_and_len_track_occupancy() {
        let mut arr = SetAssociative::new(2, 3, ReplacementKind::Lru);
        assert_eq!(arr.capacity(), 6);
        assert!(arr.is_empty());
        for tag in 0..3 {
            arr.insert(0, tag, tag as u32);
        }
        assert_eq!(arr.len(), 3);
        arr.clear();
        assert!(arr.is_empty());
    }

    #[test]
    fn len_stays_exact_under_churn() {
        let mut arr = SetAssociative::new(2, 2, ReplacementKind::Lru);
        arr.insert(0, 1, 1);
        arr.insert(0, 2, 2);
        arr.insert(0, 3, 3); // evicts, occupancy stays 2
        assert_eq!(arr.len(), 2);
        arr.insert(0, 3, 4); // in-place update, occupancy stays 2
        assert_eq!(arr.len(), 2);
        arr.invalidate(0, 3);
        assert_eq!(arr.len(), 1);
        arr.invalidate(0, 3);
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn invalidated_way_is_refilled_first() {
        let mut arr = SetAssociative::new(1, 4, ReplacementKind::Lru);
        for tag in 0..4 {
            arr.insert(0, tag, tag as u32);
        }
        arr.invalidate(0, 1);
        // The vacated way must be refilled before any valid entry is evicted.
        assert!(arr.insert(0, 9, 9).is_none());
        assert_eq!(arr.len(), 4);
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut arr = SetAssociative::new(4, 4, ReplacementKind::Lru);
        for set in 0..4 {
            for tag in 0..4u64 {
                arr.insert(set, tag, (set as u32) * 10 + tag as u32);
            }
        }
        let mut seen: Vec<(usize, u64)> = arr.iter().map(|(set, occ)| (set, occ.tag)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 16);
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn peek_does_not_change_replacement_order() {
        let mut arr = small();
        arr.insert(0, 1, 1);
        arr.insert(0, 2, 2);
        // Peek at tag 1 only; tag 1 stays LRU because peeks don't touch.
        arr.peek(0, 1);
        let evicted = arr.insert(0, 3, 3).unwrap();
        assert_eq!(evicted.tag, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        small().peek(10, 0);
    }
}
