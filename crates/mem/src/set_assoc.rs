//! A generic set-associative array with pluggable replacement.
//!
//! The same container backs the L1/L2 cache tag arrays, the SMS pattern
//! history table and the PVCache inside the PVProxy, which keeps the
//! replacement and eviction behaviour identical everywhere it matters.

use crate::replacement::{ReplacementKind, ReplacementPolicy};
use std::fmt;

/// One occupied way: the tag stored there and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupied<T> {
    /// Tag identifying the entry within its set.
    pub tag: u64,
    /// Payload stored alongside the tag.
    pub value: T,
}

/// A set-associative array of `sets` sets with `ways` ways each.
///
/// Entries are addressed by `(set_index, tag)`. Replacement decisions within
/// a set are delegated to a [`ReplacementPolicy`] instance per set.
pub struct SetAssociative<T> {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<Option<Occupied<T>>>>,
    policies: Vec<Box<dyn ReplacementPolicy>>,
    kind: ReplacementKind,
}

impl<T: fmt::Debug> fmt::Debug for SetAssociative<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssociative")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("replacement", &self.kind)
            .finish()
    }
}

impl<T> SetAssociative<T> {
    /// Creates an array with `sets` sets of `ways` ways using `replacement`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if the replacement policy
    /// rejects the way count (e.g. tree-PLRU with a non-power-of-two).
    pub fn new(sets: usize, ways: usize, replacement: ReplacementKind) -> Self {
        assert!(sets > 0, "a set-associative array needs at least one set");
        assert!(ways > 0, "a set-associative array needs at least one way");
        let entries = (0..sets).map(|_| (0..ways).map(|_| None).collect()).collect();
        let policies = (0..sets).map(|set| replacement.build(ways, set as u64)).collect();
        SetAssociative {
            sets,
            ways,
            entries,
            policies,
            kind: replacement,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of occupied entries across all sets.
    pub fn len(&self) -> usize {
        self.entries
            .iter()
            .map(|set| set.iter().filter(|way| way.is_some()).count())
            .sum()
    }

    /// Whether no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn assert_set(&self, set: usize) {
        assert!(
            set < self.sets,
            "set index {set} out of range for {} sets",
            self.sets
        );
    }

    fn way_of(&self, set: usize, tag: u64) -> Option<usize> {
        self.entries[set]
            .iter()
            .position(|way| way.as_ref().is_some_and(|occ| occ.tag == tag))
    }

    /// Looks up `(set, tag)` without updating replacement state.
    pub fn peek(&self, set: usize, tag: u64) -> Option<&T> {
        self.assert_set(set);
        self.way_of(set, tag)
            .and_then(|way| self.entries[set][way].as_ref())
            .map(|occ| &occ.value)
    }

    /// Looks up `(set, tag)`, updating recency on a hit.
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.policies[set].on_access(way);
        self.entries[set][way].as_ref().map(|occ| &occ.value)
    }

    /// Mutable lookup, updating recency on a hit.
    pub fn get_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.policies[set].on_access(way);
        self.entries[set][way].as_mut().map(|occ| &mut occ.value)
    }

    /// Whether `(set, tag)` is present (no recency update).
    pub fn contains(&self, set: usize, tag: u64) -> bool {
        self.peek(set, tag).is_some()
    }

    /// Inserts `(set, tag) -> value`, returning the evicted entry if the set
    /// was full and a victim had to be replaced, or the previous value if the
    /// tag was already present.
    pub fn insert(&mut self, set: usize, tag: u64, value: T) -> Option<Occupied<T>> {
        self.assert_set(set);
        if let Some(way) = self.way_of(set, tag) {
            self.policies[set].on_access(way);
            let previous = self.entries[set][way].replace(Occupied { tag, value });
            return previous;
        }
        let valid: Vec<bool> = self.entries[set].iter().map(|w| w.is_some()).collect();
        let way = self.policies[set].victim(&valid);
        assert!(
            way < self.ways,
            "replacement policy returned way out of range"
        );
        let evicted = self.entries[set][way].take();
        self.entries[set][way] = Some(Occupied { tag, value });
        self.policies[set].on_fill(way);
        evicted
    }

    /// Removes `(set, tag)` and returns its payload.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.entries[set][way].take().map(|occ| occ.value)
    }

    /// Iterates over all occupied entries of one set.
    pub fn set_entries(&self, set: usize) -> impl Iterator<Item = &Occupied<T>> {
        self.assert_set(set);
        self.entries[set].iter().filter_map(|way| way.as_ref())
    }

    /// Iterates over every occupied entry as `(set, &Occupied)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Occupied<T>)> {
        self.entries.iter().enumerate().flat_map(|(set, ways)| {
            ways.iter().filter_map(move |w| w.as_ref().map(|occ| (set, occ)))
        })
    }

    /// Clears every set.
    pub fn clear(&mut self) {
        for set in 0..self.sets {
            for way in 0..self.ways {
                self.entries[set][way] = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssociative<u32> {
        SetAssociative::new(4, 2, ReplacementKind::Lru)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut arr = small();
        assert!(arr.insert(1, 0xaa, 7).is_none());
        assert_eq!(arr.get(1, 0xaa), Some(&7));
        assert_eq!(arr.peek(1, 0xaa), Some(&7));
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn insert_same_tag_replaces_value_and_returns_previous() {
        let mut arr = small();
        arr.insert(0, 5, 1);
        let prev = arr.insert(0, 5, 2);
        assert_eq!(prev.map(|o| o.value), Some(1));
        assert_eq!(arr.get(0, 5), Some(&2));
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut arr = small();
        arr.insert(2, 1, 10);
        arr.insert(2, 2, 20);
        // Touch tag 1 so tag 2 becomes LRU.
        arr.get(2, 1);
        let evicted = arr.insert(2, 3, 30).expect("set was full, must evict");
        assert_eq!(evicted.tag, 2);
        assert_eq!(evicted.value, 20);
        assert!(arr.contains(2, 1));
        assert!(arr.contains(2, 3));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut arr = small();
        arr.insert(3, 9, 99);
        assert_eq!(arr.invalidate(3, 9), Some(99));
        assert!(!arr.contains(3, 9));
        assert_eq!(arr.invalidate(3, 9), None);
    }

    #[test]
    fn capacity_and_len_track_occupancy() {
        let mut arr = SetAssociative::new(2, 3, ReplacementKind::Lru);
        assert_eq!(arr.capacity(), 6);
        assert!(arr.is_empty());
        for tag in 0..3 {
            arr.insert(0, tag, tag as u32);
        }
        assert_eq!(arr.len(), 3);
        arr.clear();
        assert!(arr.is_empty());
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut arr = SetAssociative::new(4, 4, ReplacementKind::Lru);
        for set in 0..4 {
            for tag in 0..4u64 {
                arr.insert(set, tag, (set as u32) * 10 + tag as u32);
            }
        }
        let mut seen: Vec<(usize, u64)> = arr.iter().map(|(set, occ)| (set, occ.tag)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 16);
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn peek_does_not_change_replacement_order() {
        let mut arr = small();
        arr.insert(0, 1, 1);
        arr.insert(0, 2, 2);
        // Peek at tag 1 only; tag 1 stays LRU because peeks don't touch.
        arr.peek(0, 1);
        let evicted = arr.insert(0, 3, 3).unwrap();
        assert_eq!(evicted.tag, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        small().peek(10, 0);
    }
}
