//! Configuration types for the simulated memory system.
//!
//! [`HierarchyConfig::paper_baseline`] reproduces Table 1 of the paper:
//! 64 KB 4-way L1 I/D caches with 64 B blocks and 2-cycle latency, an 8 MB
//! 16-way shared L2 with 6/12-cycle tag/data latency, and 400-cycle main
//! memory, for a four-core CMP.

use crate::address::{Address, BLOCK_BYTES};
use crate::replacement::ReplacementKind;

/// How shared memory-system resources are timed.
///
/// * `Ideal` reproduces the pre-contention semantics: every access observes
///   the configured latencies regardless of load. L2 ports, MSHR capacity
///   and DRAM bandwidth are all free; an `Ideal` run is bit-identical to the
///   fixed-latency model the original figure/table reproductions were
///   recorded with.
/// * `Queued` makes predictor and application traffic actually compete:
///   L2 tag-pipeline banks have a per-bank occupancy, a full MSHR file
///   stalls the requester until an entry drains (instead of being a free
///   counter), and DRAM is a channel/bank model with finite request queues
///   and a per-block data-bus transfer cost, so latency grows under load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ContentionModel {
    /// Fixed latencies; shared resources are uncontended.
    #[default]
    Ideal,
    /// Shared-resource model with port/queue occupancy and backpressure.
    Queued,
}

/// Geometry and timing of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block size in bytes (64 throughout the paper).
    pub block_bytes: u64,
    /// Tag-array access latency in cycles.
    pub tag_latency: u64,
    /// Data-array access latency in cycles (paid on a hit).
    pub data_latency: u64,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Number of outstanding-miss registers.
    pub mshr_entries: usize,
    /// Number of independently-ported tag-pipeline banks. Only the shared L2
    /// is contended (and only under [`ContentionModel::Queued`]); requests to
    /// the same bank serialize behind each other.
    pub banks: usize,
    /// Cycles one request occupies its bank's tag pipeline before the next
    /// request to that bank may start (ignored under
    /// [`ContentionModel::Ideal`]).
    pub port_occupancy: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let blocks = self.size_bytes / self.block_bytes;
        assert!(
            blocks.is_multiple_of(self.ways as u64),
            "cache of {} blocks cannot be {}-way set-associative",
            blocks,
            self.ways
        );
        (blocks / self.ways as u64) as usize
    }

    /// Paper Table 1 L1 data/instruction cache: 64 KB, 4-way, 64 B blocks,
    /// LRU, 2-cycle latency.
    pub fn l1_paper() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            block_bytes: BLOCK_BYTES,
            tag_latency: 1,
            data_latency: 2,
            replacement: ReplacementKind::Lru,
            mshr_entries: 16,
            banks: 1,
            port_occupancy: 1,
        }
    }

    /// Paper Table 1 unified L2: 8 MB, 16-way, 64 B blocks, LRU,
    /// 6-cycle tag / 12-cycle data latency.
    pub fn l2_paper() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 16,
            block_bytes: BLOCK_BYTES,
            tag_latency: 6,
            data_latency: 12,
            replacement: ReplacementKind::Lru,
            mshr_entries: 64,
            banks: 8,
            port_occupancy: 2,
        }
    }

    /// L2 with a different total capacity (used by the Figure 10 sweep).
    pub fn l2_with_size(size_bytes: u64) -> Self {
        CacheConfig {
            size_bytes,
            ..Self::l2_paper()
        }
    }

    /// L2 with the slower 8/16-cycle tag/data latency of Figure 11.
    pub fn l2_slow() -> Self {
        CacheConfig {
            tag_latency: 8,
            data_latency: 16,
            ..Self::l2_paper()
        }
    }
}

/// Main-memory timing.
///
/// Under [`ContentionModel::Ideal`] only `latency` matters; the channel,
/// bank, queue and bandwidth parameters describe the shared-resource model
/// used under [`ContentionModel::Queued`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Unloaded access latency in cycles (400 in Table 1).
    pub latency: u64,
    /// Modelled capacity in bytes (3 GB in Table 1); only used for
    /// PV-region reservation checks.
    pub capacity_bytes: u64,
    /// Number of independent memory channels.
    pub channels: usize,
    /// Banks per channel; a bank is busy for [`Self::bank_occupancy`] cycles
    /// per request it services.
    pub banks_per_channel: usize,
    /// Cycles a bank stays busy servicing one request (row activate +
    /// column access + precharge), limiting per-bank request throughput.
    pub bank_occupancy: u64,
    /// Cycles one 64-byte block occupies a channel's data bus. This is the
    /// bandwidth knob: at a 4-byte-per-cycle bus a block costs 16 cycles;
    /// larger values model narrower/slower memory.
    pub cycles_per_transfer: u64,
    /// Per-channel request-queue depth. When a channel already has this many
    /// requests in flight, a new request waits at the L2 until a slot
    /// drains — finite buffering, not an infinite free queue.
    pub queue_depth: usize,
}

impl DramConfig {
    /// Paper Table 1 main memory: 3 GB, 400 cycles unloaded. The contention
    /// parameters model a two-channel memory system with eight banks per
    /// channel, 16-deep per-channel queues and a 16-cycle block transfer
    /// (4 bytes per cycle), roughly DDR2-class bandwidth for the paper's
    /// 4-core CMP.
    pub fn paper() -> Self {
        DramConfig {
            latency: 400,
            capacity_bytes: 3 * 1024 * 1024 * 1024,
            channels: 2,
            banks_per_channel: 8,
            bank_occupancy: 40,
            cycles_per_transfer: 16,
            queue_depth: 16,
        }
    }

    /// The same memory with a different data-bus transfer cost (bandwidth
    /// sweep knob; larger is slower).
    pub fn with_cycles_per_transfer(mut self, cycles: u64) -> Self {
        self.cycles_per_transfer = cycles;
        self
    }
}

/// Reserved physical-address regions used to back per-core PVTables.
///
/// The paper reserves a chunk of the physical address space per core, fixed
/// at boot and invisible to the OS; the base is exposed to the PVProxy
/// through the `PVStart` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvRegionConfig {
    /// Base physical address of core 0's PVTable region.
    pub base: Address,
    /// Bytes reserved per core.
    pub bytes_per_core: u64,
    /// Number of per-core regions.
    pub cores: usize,
}

impl PvRegionConfig {
    /// Default layout: regions placed just below the top of the modelled
    /// 3 GB physical memory, 64 KB per core (1K sets of 64 B, as in §4.2).
    pub fn paper_default(cores: usize) -> Self {
        let bytes_per_core = 64 * 1024;
        let total = bytes_per_core * cores as u64;
        PvRegionConfig {
            base: Address::new(3 * 1024 * 1024 * 1024 - total),
            bytes_per_core,
            cores,
        }
    }

    /// A layout reserving `bytes_per_core` bytes per core, placed just below
    /// the top of the modelled 3 GB physical memory like
    /// [`Self::paper_default`]. Used when several virtualized tables cohabit
    /// one core's region (e.g. SMS + Markov need 2 × 64 KB per core).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_core` is zero or not block-aligned.
    pub fn with_bytes_per_core(cores: usize, bytes_per_core: u64) -> Self {
        assert!(bytes_per_core > 0, "PV regions need at least one byte");
        assert!(
            bytes_per_core.is_multiple_of(BLOCK_BYTES),
            "PV regions must be block-aligned ({bytes_per_core} bytes)"
        );
        let total = bytes_per_core * cores as u64;
        PvRegionConfig {
            base: Address::new(3 * 1024 * 1024 * 1024 - total),
            bytes_per_core,
            cores,
        }
    }

    /// Base address of `core`'s region.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_base(&self, core: usize) -> Address {
        assert!(
            core < self.cores,
            "core {core} out of range ({} cores)",
            self.cores
        );
        Address::new(self.base.raw() + core as u64 * self.bytes_per_core)
    }

    /// Whether `addr` lies inside any reserved PV region.
    pub fn contains(&self, addr: Address) -> bool {
        let start = self.base.raw();
        let end = start + self.bytes_per_core * self.cores as u64;
        addr.raw() >= start && addr.raw() < end
    }

    /// Total reserved bytes across all cores.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_core * self.cores as u64
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (private L1s each).
    pub cores: usize,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Reserved PV regions (present even when PV is unused; harmless).
    pub pv_regions: PvRegionConfig,
    /// Whether each core runs the next-line instruction prefetcher of the
    /// baseline configuration.
    pub next_line_iprefetch: bool,
    /// How shared resources (L2 ports, MSHRs, DRAM queues) are timed.
    pub contention: ContentionModel,
    /// Prefetch-outcome events (first uses + unused evictions) per
    /// prefetch-accuracy sampling epoch (see [`crate::AccuracyWindow`]).
    /// Sampling is pure bookkeeping and never perturbs timing; consumers
    /// that ignore the windows behave identically at any epoch.
    pub accuracy_epoch: u64,
}

impl HierarchyConfig {
    /// The paper's Table 1 baseline for `cores` cores.
    pub fn paper_baseline(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1d: CacheConfig::l1_paper(),
            l1i: CacheConfig::l1_paper(),
            l2: CacheConfig::l2_paper(),
            dram: DramConfig::paper(),
            pv_regions: PvRegionConfig::paper_default(cores),
            next_line_iprefetch: true,
            contention: ContentionModel::Ideal,
            accuracy_epoch: 256,
        }
    }

    /// Baseline with a different shared-L2 capacity (Figure 10).
    pub fn with_l2_size(mut self, size_bytes: u64) -> Self {
        self.l2 = CacheConfig::l2_with_size(size_bytes);
        self
    }

    /// Baseline with the slower L2 of Figure 11.
    pub fn with_slow_l2(mut self) -> Self {
        self.l2 = CacheConfig::l2_slow();
        self
    }

    /// Baseline with a different contention model.
    pub fn with_contention(mut self, contention: ContentionModel) -> Self {
        self.contention = contention;
        self
    }

    /// Baseline with `bytes_per_core` bytes of reserved PV region per core
    /// (cohabiting predictors need room for one sub-region per table).
    pub fn with_pv_bytes_per_core(mut self, bytes_per_core: u64) -> Self {
        self.pv_regions = PvRegionConfig::with_bytes_per_core(self.cores, bytes_per_core);
        self
    }

    /// Baseline with a different DRAM data-bus transfer cost (bandwidth
    /// sweep knob).
    pub fn with_dram_cycles_per_transfer(mut self, cycles: u64) -> Self {
        self.dram = self.dram.with_cycles_per_transfer(cycles);
        self
    }

    /// Baseline with a different prefetch-accuracy sampling epoch
    /// (events per window; must be non-zero).
    pub fn with_accuracy_epoch(mut self, epoch: u64) -> Self {
        self.accuracy_epoch = epoch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry_matches_table1() {
        let l1 = CacheConfig::l1_paper();
        assert_eq!(l1.size_bytes, 64 * 1024);
        assert_eq!(l1.ways, 4);
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.data_latency, 2);
    }

    #[test]
    fn paper_l2_geometry_matches_table1() {
        let l2 = CacheConfig::l2_paper();
        assert_eq!(l2.size_bytes, 8 * 1024 * 1024);
        assert_eq!(l2.ways, 16);
        assert_eq!(l2.sets(), 8192);
        assert_eq!(l2.tag_latency, 6);
        assert_eq!(l2.data_latency, 12);
    }

    #[test]
    fn slow_l2_matches_fig11_latencies() {
        let l2 = CacheConfig::l2_slow();
        assert_eq!(l2.tag_latency, 8);
        assert_eq!(l2.data_latency, 16);
        assert_eq!(l2.size_bytes, CacheConfig::l2_paper().size_bytes);
    }

    #[test]
    fn dram_matches_table1() {
        assert_eq!(DramConfig::paper().latency, 400);
    }

    #[test]
    fn contention_defaults_to_ideal() {
        assert_eq!(ContentionModel::default(), ContentionModel::Ideal);
        let base = HierarchyConfig::paper_baseline(4);
        assert_eq!(base.contention, ContentionModel::Ideal);
        let queued = base.with_contention(ContentionModel::Queued);
        assert_eq!(queued.contention, ContentionModel::Queued);
        // The contention switch must not disturb the rest of the baseline.
        assert_eq!(queued.l2, base.l2);
        assert_eq!(queued.dram, base.dram);
    }

    #[test]
    fn dram_bandwidth_knob_only_moves_transfer_cost() {
        let base = DramConfig::paper();
        let slow = base.with_cycles_per_transfer(128);
        assert_eq!(slow.cycles_per_transfer, 128);
        assert_eq!(slow.latency, base.latency);
        assert_eq!(slow.queue_depth, base.queue_depth);
        let hier = HierarchyConfig::paper_baseline(4).with_dram_cycles_per_transfer(64);
        assert_eq!(hier.dram.cycles_per_transfer, 64);
    }

    #[test]
    fn l2_is_banked_and_l1_is_not() {
        assert_eq!(CacheConfig::l2_paper().banks, 8);
        assert!(CacheConfig::l2_paper().port_occupancy >= 1);
        assert_eq!(CacheConfig::l1_paper().banks, 1);
    }

    #[test]
    fn pv_regions_are_disjoint_per_core() {
        let pv = PvRegionConfig::paper_default(4);
        for core in 0..4 {
            let base = pv.core_base(core);
            assert!(pv.contains(base));
            assert!(pv.contains(Address::new(base.raw() + pv.bytes_per_core - 1)));
            if core > 0 {
                assert_eq!(base.raw(), pv.core_base(core - 1).raw() + pv.bytes_per_core);
            }
        }
        assert_eq!(pv.total_bytes(), 4 * 64 * 1024);
    }

    #[test]
    fn pv_region_excludes_low_memory() {
        let pv = PvRegionConfig::paper_default(4);
        assert!(!pv.contains(Address::new(0)));
        assert!(!pv.contains(Address::new(1 << 20)));
    }

    #[test]
    fn baseline_builder_overrides_apply() {
        let base = HierarchyConfig::paper_baseline(4);
        assert_eq!(base.cores, 4);
        let small = base.with_l2_size(2 * 1024 * 1024);
        assert_eq!(small.l2.size_bytes, 2 * 1024 * 1024);
        let slow = base.with_slow_l2();
        assert_eq!(slow.l2.tag_latency, 8);
    }

    #[test]
    #[should_panic(expected = "cannot be")]
    fn bad_geometry_panics() {
        let cfg = CacheConfig {
            size_bytes: 64 * 1024 + 64,
            ..CacheConfig::l1_paper()
        };
        cfg.sets();
    }
}
