//! Configuration types for the simulated memory system.
//!
//! [`HierarchyConfig::paper_baseline`] reproduces Table 1 of the paper:
//! 64 KB 4-way L1 I/D caches with 64 B blocks and 2-cycle latency, an 8 MB
//! 16-way shared L2 with 6/12-cycle tag/data latency, and 400-cycle main
//! memory, for a four-core CMP.

use crate::address::{Address, BLOCK_BYTES};
use crate::replacement::ReplacementKind;

/// Geometry and timing of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block size in bytes (64 throughout the paper).
    pub block_bytes: u64,
    /// Tag-array access latency in cycles.
    pub tag_latency: u64,
    /// Data-array access latency in cycles (paid on a hit).
    pub data_latency: u64,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Number of outstanding-miss registers.
    pub mshr_entries: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let blocks = self.size_bytes / self.block_bytes;
        assert!(
            blocks.is_multiple_of(self.ways as u64),
            "cache of {} blocks cannot be {}-way set-associative",
            blocks,
            self.ways
        );
        (blocks / self.ways as u64) as usize
    }

    /// Paper Table 1 L1 data/instruction cache: 64 KB, 4-way, 64 B blocks,
    /// LRU, 2-cycle latency.
    pub fn l1_paper() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            block_bytes: BLOCK_BYTES,
            tag_latency: 1,
            data_latency: 2,
            replacement: ReplacementKind::Lru,
            mshr_entries: 16,
        }
    }

    /// Paper Table 1 unified L2: 8 MB, 16-way, 64 B blocks, LRU,
    /// 6-cycle tag / 12-cycle data latency.
    pub fn l2_paper() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 16,
            block_bytes: BLOCK_BYTES,
            tag_latency: 6,
            data_latency: 12,
            replacement: ReplacementKind::Lru,
            mshr_entries: 64,
        }
    }

    /// L2 with a different total capacity (used by the Figure 10 sweep).
    pub fn l2_with_size(size_bytes: u64) -> Self {
        CacheConfig {
            size_bytes,
            ..Self::l2_paper()
        }
    }

    /// L2 with the slower 8/16-cycle tag/data latency of Figure 11.
    pub fn l2_slow() -> Self {
        CacheConfig {
            tag_latency: 8,
            data_latency: 16,
            ..Self::l2_paper()
        }
    }
}

/// Main-memory timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Access latency in cycles (400 in Table 1).
    pub latency: u64,
    /// Modelled capacity in bytes (3 GB in Table 1); only used for
    /// PV-region reservation checks.
    pub capacity_bytes: u64,
}

impl DramConfig {
    /// Paper Table 1 main memory: 3 GB, 400 cycles.
    pub fn paper() -> Self {
        DramConfig {
            latency: 400,
            capacity_bytes: 3 * 1024 * 1024 * 1024,
        }
    }
}

/// Reserved physical-address regions used to back per-core PVTables.
///
/// The paper reserves a chunk of the physical address space per core, fixed
/// at boot and invisible to the OS; the base is exposed to the PVProxy
/// through the `PVStart` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvRegionConfig {
    /// Base physical address of core 0's PVTable region.
    pub base: Address,
    /// Bytes reserved per core.
    pub bytes_per_core: u64,
    /// Number of per-core regions.
    pub cores: usize,
}

impl PvRegionConfig {
    /// Default layout: regions placed just below the top of the modelled
    /// 3 GB physical memory, 64 KB per core (1K sets of 64 B, as in §4.2).
    pub fn paper_default(cores: usize) -> Self {
        let bytes_per_core = 64 * 1024;
        let total = bytes_per_core * cores as u64;
        PvRegionConfig {
            base: Address::new(3 * 1024 * 1024 * 1024 - total),
            bytes_per_core,
            cores,
        }
    }

    /// Base address of `core`'s region.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_base(&self, core: usize) -> Address {
        assert!(
            core < self.cores,
            "core {core} out of range ({} cores)",
            self.cores
        );
        Address::new(self.base.raw() + core as u64 * self.bytes_per_core)
    }

    /// Whether `addr` lies inside any reserved PV region.
    pub fn contains(&self, addr: Address) -> bool {
        let start = self.base.raw();
        let end = start + self.bytes_per_core * self.cores as u64;
        addr.raw() >= start && addr.raw() < end
    }

    /// Total reserved bytes across all cores.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_core * self.cores as u64
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (private L1s each).
    pub cores: usize,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Reserved PV regions (present even when PV is unused; harmless).
    pub pv_regions: PvRegionConfig,
    /// Whether each core runs the next-line instruction prefetcher of the
    /// baseline configuration.
    pub next_line_iprefetch: bool,
}

impl HierarchyConfig {
    /// The paper's Table 1 baseline for `cores` cores.
    pub fn paper_baseline(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1d: CacheConfig::l1_paper(),
            l1i: CacheConfig::l1_paper(),
            l2: CacheConfig::l2_paper(),
            dram: DramConfig::paper(),
            pv_regions: PvRegionConfig::paper_default(cores),
            next_line_iprefetch: true,
        }
    }

    /// Baseline with a different shared-L2 capacity (Figure 10).
    pub fn with_l2_size(mut self, size_bytes: u64) -> Self {
        self.l2 = CacheConfig::l2_with_size(size_bytes);
        self
    }

    /// Baseline with the slower L2 of Figure 11.
    pub fn with_slow_l2(mut self) -> Self {
        self.l2 = CacheConfig::l2_slow();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry_matches_table1() {
        let l1 = CacheConfig::l1_paper();
        assert_eq!(l1.size_bytes, 64 * 1024);
        assert_eq!(l1.ways, 4);
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.data_latency, 2);
    }

    #[test]
    fn paper_l2_geometry_matches_table1() {
        let l2 = CacheConfig::l2_paper();
        assert_eq!(l2.size_bytes, 8 * 1024 * 1024);
        assert_eq!(l2.ways, 16);
        assert_eq!(l2.sets(), 8192);
        assert_eq!(l2.tag_latency, 6);
        assert_eq!(l2.data_latency, 12);
    }

    #[test]
    fn slow_l2_matches_fig11_latencies() {
        let l2 = CacheConfig::l2_slow();
        assert_eq!(l2.tag_latency, 8);
        assert_eq!(l2.data_latency, 16);
        assert_eq!(l2.size_bytes, CacheConfig::l2_paper().size_bytes);
    }

    #[test]
    fn dram_matches_table1() {
        assert_eq!(DramConfig::paper().latency, 400);
    }

    #[test]
    fn pv_regions_are_disjoint_per_core() {
        let pv = PvRegionConfig::paper_default(4);
        for core in 0..4 {
            let base = pv.core_base(core);
            assert!(pv.contains(base));
            assert!(pv.contains(Address::new(base.raw() + pv.bytes_per_core - 1)));
            if core > 0 {
                assert_eq!(base.raw(), pv.core_base(core - 1).raw() + pv.bytes_per_core);
            }
        }
        assert_eq!(pv.total_bytes(), 4 * 64 * 1024);
    }

    #[test]
    fn pv_region_excludes_low_memory() {
        let pv = PvRegionConfig::paper_default(4);
        assert!(!pv.contains(Address::new(0)));
        assert!(!pv.contains(Address::new(1 << 20)));
    }

    #[test]
    fn baseline_builder_overrides_apply() {
        let base = HierarchyConfig::paper_baseline(4);
        assert_eq!(base.cores, 4);
        let small = base.with_l2_size(2 * 1024 * 1024);
        assert_eq!(small.l2.size_bytes, 2 * 1024 * 1024);
        let slow = base.with_slow_l2();
        assert_eq!(slow.l2.tag_latency, 8);
    }

    #[test]
    #[should_panic(expected = "cannot be")]
    fn bad_geometry_panics() {
        let cfg = CacheConfig {
            size_bytes: 64 * 1024 + 64,
            ..CacheConfig::l1_paper()
        };
        cfg.sets();
    }
}
