//! The pre-flattening set-associative array, retained as a behavioural
//! reference.
//!
//! This is the original formulation of [`SetAssociative`](crate::SetAssociative):
//! a `Vec` of `Vec`s of ways with one boxed [`ReplacementPolicy`] per set and
//! a temporary valid-mask allocated on every insert. It is deliberately kept
//! byte-for-byte faithful to that implementation (allocations included) so
//! that
//!
//! * differential tests can drive it and the flat array with the same
//!   seeded op streams and assert identical hits, evictions and victims, and
//! * `perfbench` can measure the flat array's speedup against it honestly.
//!
//! It must not be used on any simulation path.

use crate::replacement::{ReplacementKind, ReplacementPolicy};
use crate::set_assoc::Occupied;
use std::fmt;

/// The boxed-policy reference set-associative array.
pub struct ReferenceSetAssociative<T> {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<Option<Occupied<T>>>>,
    policies: Vec<Box<dyn ReplacementPolicy>>,
    kind: ReplacementKind,
}

impl<T: fmt::Debug> fmt::Debug for ReferenceSetAssociative<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReferenceSetAssociative")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("replacement", &self.kind)
            .finish()
    }
}

impl<T> ReferenceSetAssociative<T> {
    /// Creates an array with `sets` sets of `ways` ways using `replacement`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if the replacement policy
    /// rejects the way count (e.g. tree-PLRU with a non-power-of-two).
    pub fn new(sets: usize, ways: usize, replacement: ReplacementKind) -> Self {
        assert!(sets > 0, "a set-associative array needs at least one set");
        assert!(ways > 0, "a set-associative array needs at least one way");
        let entries = (0..sets).map(|_| (0..ways).map(|_| None).collect()).collect();
        let policies = (0..sets).map(|set| replacement.build(ways, set as u64)).collect();
        ReferenceSetAssociative {
            sets,
            ways,
            entries,
            policies,
            kind: replacement,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of occupied entries across all sets (O(capacity) scan).
    pub fn len(&self) -> usize {
        self.entries
            .iter()
            .map(|set| set.iter().filter(|way| way.is_some()).count())
            .sum()
    }

    /// Whether no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn assert_set(&self, set: usize) {
        assert!(
            set < self.sets,
            "set index {set} out of range for {} sets",
            self.sets
        );
    }

    fn way_of(&self, set: usize, tag: u64) -> Option<usize> {
        self.entries[set]
            .iter()
            .position(|way| way.as_ref().is_some_and(|occ| occ.tag == tag))
    }

    /// Looks up `(set, tag)` without updating replacement state.
    pub fn peek(&self, set: usize, tag: u64) -> Option<&T> {
        self.assert_set(set);
        self.way_of(set, tag)
            .and_then(|way| self.entries[set][way].as_ref())
            .map(|occ| &occ.value)
    }

    /// Looks up `(set, tag)`, updating recency on a hit.
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.policies[set].on_access(way);
        self.entries[set][way].as_ref().map(|occ| &occ.value)
    }

    /// Whether `(set, tag)` is present (no recency update).
    pub fn contains(&self, set: usize, tag: u64) -> bool {
        self.peek(set, tag).is_some()
    }

    /// Inserts `(set, tag) -> value`, returning the evicted entry if the set
    /// was full and a victim had to be replaced, or the previous value if the
    /// tag was already present.
    pub fn insert(&mut self, set: usize, tag: u64, value: T) -> Option<Occupied<T>> {
        self.assert_set(set);
        if let Some(way) = self.way_of(set, tag) {
            self.policies[set].on_access(way);
            let previous = self.entries[set][way].replace(Occupied { tag, value });
            return previous;
        }
        let valid: Vec<bool> = self.entries[set].iter().map(|w| w.is_some()).collect();
        let way = self.policies[set].victim(&valid);
        assert!(
            way < self.ways,
            "replacement policy returned way out of range"
        );
        let evicted = self.entries[set][way].take();
        self.entries[set][way] = Some(Occupied { tag, value });
        self.policies[set].on_fill(way);
        evicted
    }

    /// Removes `(set, tag)` and returns its payload. The replacement policy
    /// is *not* notified — the historical behaviour the flat array must stay
    /// observationally equivalent to.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<T> {
        self.assert_set(set);
        let way = self.way_of(set, tag)?;
        self.entries[set][way].take().map(|occ| occ.value)
    }

    /// Iterates over every occupied entry as `(set, &Occupied)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Occupied<T>)> {
        self.entries.iter().enumerate().flat_map(|(set, ways)| {
            ways.iter().filter_map(move |w| w.as_ref().map(|occ| (set, occ)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_behaves_like_original() {
        let mut arr: ReferenceSetAssociative<u32> =
            ReferenceSetAssociative::new(4, 2, ReplacementKind::Lru);
        arr.insert(2, 1, 10);
        arr.insert(2, 2, 20);
        arr.get(2, 1);
        let evicted = arr.insert(2, 3, 30).expect("set was full, must evict");
        assert_eq!(evicted.tag, 2);
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.invalidate(2, 1), Some(10));
        assert!(!arr.contains(2, 1));
    }
}
