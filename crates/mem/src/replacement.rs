//! Replacement policies for set-associative structures.
//!
//! The paper's caches use LRU; the PVCache in the proxy is fully associative
//! and also uses LRU. Tree-PLRU and a deterministic pseudo-random policy are
//! provided for ablation studies.

use std::fmt::Debug;

/// A replacement policy for one set of `ways` ways.
///
/// Implementations keep whatever per-set state they need (recency stacks,
/// PLRU trees, ...) and are driven by the cache through [`on_access`],
/// [`on_fill`] and [`victim`].
///
/// [`on_access`]: ReplacementPolicy::on_access
/// [`on_fill`]: ReplacementPolicy::on_fill
/// [`victim`]: ReplacementPolicy::victim
pub trait ReplacementPolicy: Debug {
    /// Called when the block in `way` is referenced.
    fn on_access(&mut self, way: usize);

    /// Called when a new block is installed in `way`.
    fn on_fill(&mut self, way: usize);

    /// Returns the way that should be evicted next.
    ///
    /// `valid` flags which ways currently hold valid blocks; policies must
    /// prefer an invalid way when one exists.
    fn victim(&mut self, valid: &[bool]) -> usize;

    /// Number of ways this policy instance manages.
    fn ways(&self) -> usize;
}

/// True least-recently-used replacement.
#[derive(Debug, Clone)]
pub struct Lru {
    /// `stack[0]` is the most recently used way.
    stack: Vec<usize>,
}

impl Lru {
    /// Creates an LRU policy for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        Lru {
            stack: (0..ways).collect(),
        }
    }

    fn touch(&mut self, way: usize) {
        let pos = self
            .stack
            .iter()
            .position(|&w| w == way)
            .expect("way index out of range for LRU stack");
        let way = self.stack.remove(pos);
        self.stack.insert(0, way);
    }
}

impl ReplacementPolicy for Lru {
    fn on_access(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.stack.len(), "valid mask length mismatch");
        if let Some(way) = (0..valid.len()).find(|&w| !valid[w]) {
            return way;
        }
        *self.stack.last().expect("LRU stack is never empty")
    }

    fn ways(&self) -> usize {
        self.stack.len()
    }
}

/// Tree-based pseudo-LRU, the classic hardware approximation of LRU for
/// power-of-two associativities.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: usize,
    /// One bit per internal node of the binary tree, stored level order.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates a tree-PLRU policy for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or not a power of two.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        assert!(
            ways.is_power_of_two(),
            "tree-PLRU requires a power-of-two way count"
        );
        TreePlru {
            ways,
            bits: vec![false; ways.saturating_sub(1)],
        }
    }

    fn update_on_access(&mut self, way: usize) {
        if self.ways == 1 {
            return;
        }
        let mut node = 0usize;
        let mut low = 0usize;
        let mut high = self.ways;
        while high - low > 1 {
            let mid = (low + high) / 2;
            let go_right = way >= mid;
            // Point away from the accessed half.
            self.bits[node] = !go_right;
            if go_right {
                node = 2 * node + 2;
                low = mid;
            } else {
                node = 2 * node + 1;
                high = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_access(&mut self, way: usize) {
        self.update_on_access(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.update_on_access(way);
    }

    fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        if let Some(way) = (0..valid.len()).find(|&w| !valid[w]) {
            return way;
        }
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut low = 0usize;
        let mut high = self.ways;
        while high - low > 1 {
            let mid = (low + high) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                low = mid;
            } else {
                node = 2 * node + 1;
                high = mid;
            }
        }
        low
    }

    fn ways(&self) -> usize {
        self.ways
    }
}

/// Deterministic pseudo-random replacement (xorshift), useful as an ablation
/// baseline; never used by the paper configurations.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    ways: usize,
    state: u64,
}

impl RandomEvict {
    /// Creates a random-replacement policy seeded deterministically per set.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        RandomEvict {
            ways,
            state: seed | 1,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl ReplacementPolicy for RandomEvict {
    fn on_access(&mut self, _way: usize) {}

    fn on_fill(&mut self, _way: usize) {}

    fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        if let Some(way) = (0..valid.len()).find(|&w| !valid[w]) {
            return way;
        }
        (self.next() % self.ways as u64) as usize
    }

    fn ways(&self) -> usize {
        self.ways
    }
}

/// Which replacement policy a cache should instantiate per set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True LRU (paper default).
    Lru,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Deterministic pseudo-random.
    Random,
}

impl ReplacementKind {
    /// Builds a policy instance for a set with `ways` ways.
    pub fn build(self, ways: usize, set_index: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(ways)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(ways)),
            ReplacementKind::Random => {
                Box::new(RandomEvict::new(ways, set_index.wrapping_add(0x9E37_79B9)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(4);
        for way in 0..4 {
            lru.on_fill(way);
        }
        // Access 0, 1, 2 again: way 3 becomes LRU.
        lru.on_access(0);
        lru.on_access(1);
        lru.on_access(2);
        assert_eq!(lru.victim(&[true; 4]), 3);
    }

    #[test]
    fn lru_prefers_invalid_way() {
        let mut lru = Lru::new(4);
        lru.on_fill(0);
        lru.on_fill(1);
        assert_eq!(lru.victim(&[true, true, false, true]), 2);
    }

    #[test]
    fn lru_single_way() {
        let mut lru = Lru::new(1);
        lru.on_fill(0);
        assert_eq!(lru.victim(&[true]), 0);
    }

    #[test]
    fn plru_prefers_invalid_way() {
        let mut plru = TreePlru::new(8);
        assert_eq!(
            plru.victim(&[true, true, true, false, true, true, true, true]),
            3
        );
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut plru = TreePlru::new(8);
        for way in 0..8 {
            plru.on_fill(way);
        }
        for target in 0..8 {
            plru.on_access(target);
            let victim = plru.victim(&[true; 8]);
            assert_ne!(victim, target, "PLRU must not evict the just-accessed way");
        }
    }

    #[test]
    fn random_is_deterministic_for_same_seed() {
        let mut a = RandomEvict::new(16, 7);
        let mut b = RandomEvict::new(16, 7);
        let valid = [true; 16];
        for _ in 0..64 {
            assert_eq!(a.victim(&valid), b.victim(&valid));
        }
    }

    #[test]
    fn random_victims_are_in_range() {
        let mut r = RandomEvict::new(11, 3);
        let valid = [true; 11];
        for _ in 0..256 {
            assert!(r.victim(&valid) < 11);
        }
    }

    #[test]
    fn kind_builds_expected_way_count() {
        for kind in [ReplacementKind::Lru, ReplacementKind::Random] {
            let policy = kind.build(11, 0);
            assert_eq!(policy.ways(), 11);
        }
        let policy = ReplacementKind::TreePlru.build(16, 0);
        assert_eq!(policy.ways(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_way_lru_panics() {
        Lru::new(0);
    }
}
