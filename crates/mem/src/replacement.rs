//! Replacement policies for set-associative structures.
//!
//! The paper's caches use LRU; the PVCache in the proxy is fully associative
//! and also uses LRU. Tree-PLRU and a deterministic pseudo-random policy are
//! provided for ablation studies.
//!
//! Two representations live here:
//!
//! * [`ReplacementState`] — the bit-packed, enum-dispatched per-array state
//!   the hot [`SetAssociative`](crate::SetAssociative) path uses. All sets'
//!   state lives in a handful of flat vectors sized at construction; no
//!   allocation happens afterwards.
//! * The [`ReplacementPolicy`] trait with one boxed instance per set — the
//!   original formulation, retained as the behavioural reference that the
//!   differential tests drive against the packed state.

use std::fmt::Debug;

/// Enum-dispatched, bit-packed replacement state for a whole set-associative
/// array.
///
/// Per-set state is packed into machine words held in flat vectors:
///
/// * LRU with at most 16 ways: one `u64` recency word per set, nibble `p`
///   holding the way at recency position `p` (position 0 = MRU).
/// * Wider LRU: a flat `u8` recency stack, `ways` bytes per set, MRU first.
/// * Tree-PLRU: one `u64` bitfield per set, bit `n` = internal node `n` of
///   the binary tree in level order.
/// * Random: one xorshift64* state per set.
///
/// Victim selection always prefers an invalid way (lowest index first),
/// matching the [`ReplacementPolicy`] contract; callers pass occupancy as a
/// closure so no temporary valid-mask vector is materialised.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// True LRU, `ways <= 16`, one packed recency word per set.
    LruPacked {
        /// Associativity.
        ways: usize,
        /// One recency word per set; nibble `p` = way at position `p`.
        words: Vec<u64>,
    },
    /// True LRU, `16 < ways <= 256`, flat per-set recency stacks.
    LruFlat {
        /// Associativity.
        ways: usize,
        /// `ways` bytes per set, most recently used way first.
        stacks: Vec<u8>,
    },
    /// Tree pseudo-LRU, one bitfield per set.
    TreePlru {
        /// Associativity (power of two, at most 64).
        ways: usize,
        /// One `u64` of tree bits per set.
        bits: Vec<u64>,
    },
    /// Deterministic pseudo-random (xorshift64*), one state word per set.
    Random {
        /// Associativity.
        ways: usize,
        /// Per-set generator state.
        states: Vec<u64>,
    },
}

/// Nibble `p` of an LRU recency word: the identity permutation at reset.
fn identity_word(ways: usize) -> u64 {
    let mut word = 0u64;
    for p in 0..ways {
        word |= (p as u64) << (4 * p);
    }
    word
}

impl ReplacementState {
    /// Builds packed state for `sets` sets of `ways` ways under `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, if tree-PLRU is requested with a
    /// non-power-of-two or greater-than-64 way count, or if LRU is requested
    /// with more than 256 ways.
    pub fn new(kind: ReplacementKind, sets: usize, ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        match kind {
            ReplacementKind::Lru if ways <= 16 => ReplacementState::LruPacked {
                ways,
                words: vec![identity_word(ways); sets],
            },
            ReplacementKind::Lru => {
                assert!(ways <= 256, "packed LRU supports at most 256 ways");
                let mut stacks = vec![0u8; sets * ways];
                for set in 0..sets {
                    for (p, slot) in stacks[set * ways..(set + 1) * ways].iter_mut().enumerate() {
                        *slot = p as u8;
                    }
                }
                ReplacementState::LruFlat { ways, stacks }
            }
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires a power-of-two way count"
                );
                assert!(ways <= 64, "packed tree-PLRU supports at most 64 ways");
                ReplacementState::TreePlru {
                    ways,
                    bits: vec![0u64; sets],
                }
            }
            ReplacementKind::Random => ReplacementState::Random {
                ways,
                states: (0..sets).map(|set| (set as u64).wrapping_add(0x9E37_79B9) | 1).collect(),
            },
        }
    }

    /// Promotes `way` of `set` to most-recently-used.
    pub fn on_access(&mut self, set: usize, way: usize) {
        match self {
            ReplacementState::LruPacked { ways, words } => {
                let word = &mut words[set];
                let pos = (0..*ways)
                    .find(|&p| (*word >> (4 * p)) & 0xF == way as u64)
                    .expect("way index out of range for LRU recency word");
                // Keep nibbles above `pos`, shift [0, pos) up one position and
                // install `way` as MRU.
                let below = *word & ((1u64 << (4 * pos)) - 1);
                let above = if 4 * (pos + 1) >= 64 {
                    0
                } else {
                    *word & !((1u64 << (4 * (pos + 1))) - 1)
                };
                *word = above | (below << 4) | way as u64;
            }
            ReplacementState::LruFlat { ways, stacks } => {
                let stack = &mut stacks[set * *ways..(set + 1) * *ways];
                let pos = stack
                    .iter()
                    .position(|&w| w == way as u8)
                    .expect("way index out of range for LRU recency stack");
                stack[..=pos].rotate_right(1);
            }
            ReplacementState::TreePlru { ways, bits } => {
                plru_touch(&mut bits[set], *ways, way, false);
            }
            ReplacementState::Random { .. } => {}
        }
    }

    /// Records a fill of `way` in `set` (same recency effect as an access).
    pub fn on_fill(&mut self, set: usize, way: usize) {
        self.on_access(set, way);
    }

    /// Observes the invalidation of `way` in `set`, demoting its stale
    /// recency so it cannot outlive the entry: LRU moves the way to the
    /// least-recently-used position, tree-PLRU points the tree at it, random
    /// keeps no recency. Observationally this never changes victim choice —
    /// invalid ways are preferred by scan and refills re-touch — but the
    /// state no longer claims an empty way was recently used.
    pub fn on_invalidate(&mut self, set: usize, way: usize) {
        match self {
            ReplacementState::LruPacked { ways, words } => {
                let word = &mut words[set];
                let pos = (0..*ways)
                    .find(|&p| (*word >> (4 * p)) & 0xF == way as u64)
                    .expect("way index out of range for LRU recency word");
                if pos == *ways - 1 {
                    return;
                }
                // Keep nibbles below `pos`, shift (pos, ways) down one
                // position and park `way` at the LRU end.
                let below = *word & ((1u64 << (4 * pos)) - 1);
                let rest = (*word >> (4 * (pos + 1))) << (4 * pos);
                *word = below | rest | ((way as u64) << (4 * (*ways - 1)));
            }
            ReplacementState::LruFlat { ways, stacks } => {
                let stack = &mut stacks[set * *ways..(set + 1) * *ways];
                let pos = stack
                    .iter()
                    .position(|&w| w == way as u8)
                    .expect("way index out of range for LRU recency stack");
                stack[pos..].rotate_left(1);
            }
            ReplacementState::TreePlru { ways, bits } => {
                plru_touch(&mut bits[set], *ways, way, true);
            }
            ReplacementState::Random { .. } => {}
        }
    }

    /// Picks the victim way for `set`; `valid(way)` reports occupancy.
    ///
    /// Invalid ways are preferred (lowest index first). The random policy
    /// only advances its generator when every way is valid, matching the
    /// reference [`RandomEvict`].
    pub fn victim<F: Fn(usize) -> bool>(&mut self, set: usize, valid: F) -> usize {
        let ways = self.ways();
        if let Some(way) = (0..ways).find(|&w| !valid(w)) {
            return way;
        }
        match self {
            ReplacementState::LruPacked { ways, words } => {
                ((words[set] >> (4 * (*ways - 1))) & 0xF) as usize
            }
            ReplacementState::LruFlat { ways, stacks } => stacks[(set + 1) * *ways - 1] as usize,
            ReplacementState::TreePlru { ways, bits } => {
                if *ways == 1 {
                    return 0;
                }
                let word = bits[set];
                let mut node = 0usize;
                let mut low = 0usize;
                let mut high = *ways;
                while high - low > 1 {
                    let mid = (low + high) / 2;
                    if (word >> node) & 1 != 0 {
                        node = 2 * node + 2;
                        low = mid;
                    } else {
                        node = 2 * node + 1;
                        high = mid;
                    }
                }
                low
            }
            ReplacementState::Random { ways, states } => {
                let state = &mut states[set];
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % *ways as u64) as usize
            }
        }
    }

    /// Associativity this state manages.
    pub fn ways(&self) -> usize {
        match self {
            ReplacementState::LruPacked { ways, .. }
            | ReplacementState::LruFlat { ways, .. }
            | ReplacementState::TreePlru { ways, .. }
            | ReplacementState::Random { ways, .. } => *ways,
        }
    }
}

/// Walks the PLRU tree path of `way`, pointing every node on the path away
/// from it (`toward == false`, the access/fill update) or toward it
/// (`toward == true`, the invalidation update).
fn plru_touch(word: &mut u64, ways: usize, way: usize, toward: bool) {
    if ways == 1 {
        return;
    }
    let mut node = 0usize;
    let mut low = 0usize;
    let mut high = ways;
    while high - low > 1 {
        let mid = (low + high) / 2;
        let go_right = way >= mid;
        let bit = if toward { go_right } else { !go_right };
        if bit {
            *word |= 1u64 << node;
        } else {
            *word &= !(1u64 << node);
        }
        if go_right {
            node = 2 * node + 2;
            low = mid;
        } else {
            node = 2 * node + 1;
            high = mid;
        }
    }
}

/// A replacement policy for one set of `ways` ways.
///
/// Implementations keep whatever per-set state they need (recency stacks,
/// PLRU trees, ...) and are driven by the cache through [`on_access`],
/// [`on_fill`] and [`victim`].
///
/// [`on_access`]: ReplacementPolicy::on_access
/// [`on_fill`]: ReplacementPolicy::on_fill
/// [`victim`]: ReplacementPolicy::victim
pub trait ReplacementPolicy: Debug {
    /// Called when the block in `way` is referenced.
    fn on_access(&mut self, way: usize);

    /// Called when a new block is installed in `way`.
    fn on_fill(&mut self, way: usize);

    /// Returns the way that should be evicted next.
    ///
    /// `valid` flags which ways currently hold valid blocks; policies must
    /// prefer an invalid way when one exists.
    fn victim(&mut self, valid: &[bool]) -> usize;

    /// Number of ways this policy instance manages.
    fn ways(&self) -> usize;
}

/// True least-recently-used replacement.
#[derive(Debug, Clone)]
pub struct Lru {
    /// `stack[0]` is the most recently used way.
    stack: Vec<usize>,
}

impl Lru {
    /// Creates an LRU policy for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        Lru {
            stack: (0..ways).collect(),
        }
    }

    fn touch(&mut self, way: usize) {
        let pos = self
            .stack
            .iter()
            .position(|&w| w == way)
            .expect("way index out of range for LRU stack");
        let way = self.stack.remove(pos);
        self.stack.insert(0, way);
    }
}

impl ReplacementPolicy for Lru {
    fn on_access(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.stack.len(), "valid mask length mismatch");
        if let Some(way) = (0..valid.len()).find(|&w| !valid[w]) {
            return way;
        }
        *self.stack.last().expect("LRU stack is never empty")
    }

    fn ways(&self) -> usize {
        self.stack.len()
    }
}

/// Tree-based pseudo-LRU, the classic hardware approximation of LRU for
/// power-of-two associativities.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: usize,
    /// One bit per internal node of the binary tree, stored level order.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates a tree-PLRU policy for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or not a power of two.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        assert!(
            ways.is_power_of_two(),
            "tree-PLRU requires a power-of-two way count"
        );
        TreePlru {
            ways,
            bits: vec![false; ways.saturating_sub(1)],
        }
    }

    fn update_on_access(&mut self, way: usize) {
        if self.ways == 1 {
            return;
        }
        let mut node = 0usize;
        let mut low = 0usize;
        let mut high = self.ways;
        while high - low > 1 {
            let mid = (low + high) / 2;
            let go_right = way >= mid;
            // Point away from the accessed half.
            self.bits[node] = !go_right;
            if go_right {
                node = 2 * node + 2;
                low = mid;
            } else {
                node = 2 * node + 1;
                high = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_access(&mut self, way: usize) {
        self.update_on_access(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.update_on_access(way);
    }

    fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        if let Some(way) = (0..valid.len()).find(|&w| !valid[w]) {
            return way;
        }
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut low = 0usize;
        let mut high = self.ways;
        while high - low > 1 {
            let mid = (low + high) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                low = mid;
            } else {
                node = 2 * node + 1;
                high = mid;
            }
        }
        low
    }

    fn ways(&self) -> usize {
        self.ways
    }
}

/// Deterministic pseudo-random replacement (xorshift), useful as an ablation
/// baseline; never used by the paper configurations.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    ways: usize,
    state: u64,
}

impl RandomEvict {
    /// Creates a random-replacement policy seeded deterministically per set.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        RandomEvict {
            ways,
            state: seed | 1,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl ReplacementPolicy for RandomEvict {
    fn on_access(&mut self, _way: usize) {}

    fn on_fill(&mut self, _way: usize) {}

    fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        if let Some(way) = (0..valid.len()).find(|&w| !valid[w]) {
            return way;
        }
        (self.next() % self.ways as u64) as usize
    }

    fn ways(&self) -> usize {
        self.ways
    }
}

/// Which replacement policy a cache should instantiate per set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True LRU (paper default).
    Lru,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Deterministic pseudo-random.
    Random,
}

impl ReplacementKind {
    /// Builds a policy instance for a set with `ways` ways.
    pub fn build(self, ways: usize, set_index: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(ways)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(ways)),
            ReplacementKind::Random => {
                Box::new(RandomEvict::new(ways, set_index.wrapping_add(0x9E37_79B9)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(4);
        for way in 0..4 {
            lru.on_fill(way);
        }
        // Access 0, 1, 2 again: way 3 becomes LRU.
        lru.on_access(0);
        lru.on_access(1);
        lru.on_access(2);
        assert_eq!(lru.victim(&[true; 4]), 3);
    }

    #[test]
    fn lru_prefers_invalid_way() {
        let mut lru = Lru::new(4);
        lru.on_fill(0);
        lru.on_fill(1);
        assert_eq!(lru.victim(&[true, true, false, true]), 2);
    }

    #[test]
    fn lru_single_way() {
        let mut lru = Lru::new(1);
        lru.on_fill(0);
        assert_eq!(lru.victim(&[true]), 0);
    }

    #[test]
    fn plru_prefers_invalid_way() {
        let mut plru = TreePlru::new(8);
        assert_eq!(
            plru.victim(&[true, true, true, false, true, true, true, true]),
            3
        );
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut plru = TreePlru::new(8);
        for way in 0..8 {
            plru.on_fill(way);
        }
        for target in 0..8 {
            plru.on_access(target);
            let victim = plru.victim(&[true; 8]);
            assert_ne!(victim, target, "PLRU must not evict the just-accessed way");
        }
    }

    #[test]
    fn random_is_deterministic_for_same_seed() {
        let mut a = RandomEvict::new(16, 7);
        let mut b = RandomEvict::new(16, 7);
        let valid = [true; 16];
        for _ in 0..64 {
            assert_eq!(a.victim(&valid), b.victim(&valid));
        }
    }

    #[test]
    fn random_victims_are_in_range() {
        let mut r = RandomEvict::new(11, 3);
        let valid = [true; 11];
        for _ in 0..256 {
            assert!(r.victim(&valid) < 11);
        }
    }

    #[test]
    fn kind_builds_expected_way_count() {
        for kind in [ReplacementKind::Lru, ReplacementKind::Random] {
            let policy = kind.build(11, 0);
            assert_eq!(policy.ways(), 11);
        }
        let policy = ReplacementKind::TreePlru.build(16, 0);
        assert_eq!(policy.ways(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_way_lru_panics() {
        Lru::new(0);
    }
}
