//! Next-line instruction prefetcher.
//!
//! The paper's baseline configuration gives every core a next-line
//! instruction prefetcher (and no data prefetching). On an instruction-fetch
//! miss for block *B*, the prefetcher requests block *B+1* into the L1
//! instruction cache.

use crate::address::BlockAddr;

/// A simple next-line (sequential, degree-1) instruction prefetcher.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher {
    issued: u64,
    suppressed: u64,
    last_miss: Option<BlockAddr>,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called on every L1I demand miss; returns the block to prefetch, if
    /// any. Consecutive misses to the same block are suppressed so a stalled
    /// fetch stream does not spam the L2.
    pub fn on_instruction_miss(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        if self.last_miss == Some(block) {
            self.suppressed += 1;
            return None;
        }
        self.last_miss = Some(block);
        self.issued += 1;
        Some(block.next())
    }

    /// Number of prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of duplicate-miss suppressions.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Resets counters and history.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Resets the counters only, preserving the last-miss history so a
    /// measurement-window boundary does not change which prefetches the
    /// predictor issues next (counters never influence behaviour).
    pub fn reset_stats(&mut self) {
        self.issued = 0;
        self.suppressed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_next_sequential_block() {
        let mut pf = NextLinePrefetcher::new();
        assert_eq!(
            pf.on_instruction_miss(BlockAddr::new(10)),
            Some(BlockAddr::new(11))
        );
        assert_eq!(pf.issued(), 1);
    }

    #[test]
    fn repeated_miss_to_same_block_is_suppressed() {
        let mut pf = NextLinePrefetcher::new();
        pf.on_instruction_miss(BlockAddr::new(10));
        assert_eq!(pf.on_instruction_miss(BlockAddr::new(10)), None);
        assert_eq!(pf.suppressed(), 1);
        assert_eq!(
            pf.on_instruction_miss(BlockAddr::new(11)),
            Some(BlockAddr::new(12))
        );
    }

    #[test]
    fn reset_stats_keeps_suppression_history() {
        let mut pf = NextLinePrefetcher::new();
        pf.on_instruction_miss(BlockAddr::new(10));
        pf.reset_stats();
        assert_eq!(pf.issued(), 0);
        assert_eq!(pf.suppressed(), 0);
        // The repeated miss is still suppressed: behaviour is unchanged by
        // the counter reset.
        assert_eq!(pf.on_instruction_miss(BlockAddr::new(10)), None);
        assert_eq!(pf.suppressed(), 1);
    }

    #[test]
    fn reset_clears_history() {
        let mut pf = NextLinePrefetcher::new();
        pf.on_instruction_miss(BlockAddr::new(10));
        pf.reset();
        assert_eq!(pf.issued(), 0);
        assert_eq!(
            pf.on_instruction_miss(BlockAddr::new(10)),
            Some(BlockAddr::new(11))
        );
    }
}
