//! A single cache level (used for L1 I/D and the shared L2).
//!
//! The cache tracks tags and per-line metadata only; data values are never
//! modelled because the paper's metrics depend solely on hit/miss behaviour,
//! traffic and timing. Prefetch timeliness is modelled with a per-line
//! `ready_at` cycle: a demand access that arrives before an in-flight fill
//! completes pays the residual latency ("late prefetch").

use crate::address::BlockAddr;
use crate::block::LineState;
use crate::config::CacheConfig;
use crate::set_assoc::SetAssociative;
use crate::stats::CacheStats;
use std::fmt;

/// Demand access type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load or instruction fetch.
    Read,
    /// Store.
    Write,
}

/// How a line came to be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillOrigin {
    /// Installed to satisfy a demand miss.
    Demand,
    /// Installed by a prefetcher (SMS stream or next-line I-prefetch).
    Prefetch,
}

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Serviced by the private L1.
    L1,
    /// Serviced by the shared L2.
    L2,
    /// Serviced by main memory.
    Memory,
}

/// Per-line metadata stored in the tag array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineMeta {
    state: LineState,
    ready_at: u64,
    prefetched_unused: bool,
}

/// Result of a demand access against one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// Latency contributed by this level. On a hit this is the data latency
    /// (plus any residual in-flight wait); on a miss it is the tag latency
    /// only — the caller adds the lower-level latency.
    pub latency: u64,
    /// The access hit a line whose fill had not yet completed.
    pub late_prefetch: bool,
    /// The access is the first demand use of a prefetched line (used for
    /// coverage accounting).
    pub first_use_of_prefetch: bool,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether the line was dirty and must be written back below.
    pub dirty: bool,
    /// Whether the line had been prefetched and never used by a demand
    /// access (an over-prediction).
    pub prefetched_unused: bool,
}

/// One level of the cache hierarchy.
pub struct Cache {
    name: String,
    config: CacheConfig,
    sets: usize,
    array: SetAssociative<LineMeta>,
    stats: CacheStats,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.name)
            .field("size_bytes", &self.config.size_bytes)
            .field("ways", &self.config.ways)
            .field("sets", &self.sets)
            .finish()
    }
}

impl Cache {
    /// Creates a cache level with the given configuration.
    pub fn new(name: impl Into<String>, config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            name: name.into(),
            config,
            sets,
            array: SetAssociative::new(sets, config.ways, config.replacement),
            stats: CacheStats::default(),
        }
    }

    /// The cache's human-readable name (e.g. `"L1D.0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    fn index(&self, block: BlockAddr) -> (usize, u64) {
        let set = (block.raw() % self.sets as u64) as usize;
        let tag = block.raw() / self.sets as u64;
        (set, tag)
    }

    /// Whether `block` is currently present (no recency update, no stats).
    pub fn contains(&self, block: BlockAddr) -> bool {
        let (set, tag) = self.index(block);
        self.array.peek(set, tag).is_some()
    }

    /// Performs a demand access. Returns whether it hit and the latency this
    /// level contributes; the caller is responsible for going below the
    /// cache on a miss and then calling [`Cache::fill`].
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind, now: u64) -> AccessOutcome {
        let (set, tag) = self.index(block);
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        if let Some(line) = self.array.get_mut(set, tag) {
            let residual = line.ready_at.saturating_sub(now);
            let late_prefetch = residual > 0 && line.prefetched_unused;
            let first_use_of_prefetch = line.prefetched_unused;
            line.prefetched_unused = false;
            if kind == AccessKind::Write {
                line.state = LineState::Dirty;
            }
            match kind {
                AccessKind::Read => self.stats.read_hits += 1,
                AccessKind::Write => self.stats.write_hits += 1,
            }
            if late_prefetch {
                self.stats.late_prefetch_hits += 1;
            }
            AccessOutcome {
                hit: true,
                latency: self.config.data_latency.max(residual),
                late_prefetch,
                first_use_of_prefetch,
            }
        } else {
            match kind {
                AccessKind::Read => self.stats.read_misses += 1,
                AccessKind::Write => self.stats.write_misses += 1,
            }
            AccessOutcome {
                hit: false,
                latency: self.config.tag_latency,
                late_prefetch: false,
                first_use_of_prefetch: false,
            }
        }
    }

    /// Installs `block`, evicting a victim if necessary.
    ///
    /// `ready_at` is the cycle at which the fill data arrives; `dirty` marks
    /// the line modified from the start (write-allocate stores, write-backs
    /// arriving from the level above).
    pub fn fill(
        &mut self,
        block: BlockAddr,
        dirty: bool,
        ready_at: u64,
        origin: FillOrigin,
    ) -> Option<Evicted> {
        let (set, tag) = self.index(block);
        if origin == FillOrigin::Prefetch {
            self.stats.prefetch_fills += 1;
        }
        // If the block is already present just merge state.
        if let Some(line) = self.array.get_mut(set, tag) {
            if dirty {
                line.state = LineState::Dirty;
            }
            return None;
        }
        let meta = LineMeta {
            state: if dirty {
                LineState::Dirty
            } else {
                LineState::Clean
            },
            ready_at,
            prefetched_unused: origin == FillOrigin::Prefetch,
        };
        let evicted = self.array.insert(set, tag, meta);
        evicted.map(|occ| {
            let victim_block = BlockAddr::new(occ.tag * self.sets as u64 + set as u64);
            if occ.value.prefetched_unused {
                self.stats.prefetched_evicted_unused += 1;
            }
            if occ.value.state.is_dirty() {
                self.stats.writebacks += 1;
            }
            Evicted {
                block: victim_block,
                dirty: occ.value.state.is_dirty(),
                prefetched_unused: occ.value.prefetched_unused,
            }
        })
    }

    /// Removes `block` from the cache, returning its state if present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Evicted> {
        let (set, tag) = self.index(block);
        self.array.invalidate(set, tag).map(|meta| {
            if meta.prefetched_unused {
                self.stats.prefetched_evicted_unused += 1;
            }
            Evicted {
                block,
                dirty: meta.state.is_dirty(),
                prefetched_unused: meta.prefetched_unused,
            }
        })
    }

    /// Marks `block` dirty if present (used when a write-back from above
    /// lands on an already-resident L2 line).
    pub fn mark_dirty(&mut self, block: BlockAddr) -> bool {
        let (set, tag) = self.index(block);
        if let Some(line) = self.array.get_mut(set, tag) {
            line.state = LineState::Dirty;
            true
        } else {
            false
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (not the contents), as at the end of warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.array.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::replacement::ReplacementKind;

    fn tiny_cache() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        let config = CacheConfig {
            size_bytes: 512,
            ways: 2,
            block_bytes: 64,
            tag_latency: 1,
            data_latency: 2,
            replacement: ReplacementKind::Lru,
            mshr_entries: 4,
            banks: 1,
            port_occupancy: 1,
        };
        Cache::new("test", config)
    }

    #[test]
    fn cold_access_misses_then_hits_after_fill() {
        let mut cache = tiny_cache();
        let block = BlockAddr::new(0x40);
        let miss = cache.access(block, AccessKind::Read, 0);
        assert!(!miss.hit);
        assert_eq!(miss.latency, 1);
        cache.fill(block, false, 10, FillOrigin::Demand);
        let hit = cache.access(block, AccessKind::Read, 20);
        assert!(hit.hit);
        assert_eq!(hit.latency, 2);
        assert_eq!(cache.stats().read_misses, 1);
        assert_eq!(cache.stats().read_hits, 1);
    }

    #[test]
    fn in_flight_fill_pays_residual_latency() {
        let mut cache = tiny_cache();
        let block = BlockAddr::new(0x80);
        cache.fill(block, false, 100, FillOrigin::Prefetch);
        // Demand access at cycle 60: the prefetch completes at 100, so the
        // access waits 40 cycles instead of the full miss latency.
        let outcome = cache.access(block, AccessKind::Read, 60);
        assert!(outcome.hit);
        assert!(outcome.late_prefetch);
        assert!(outcome.first_use_of_prefetch);
        assert_eq!(outcome.latency, 40);
        assert_eq!(cache.stats().late_prefetch_hits, 1);
    }

    #[test]
    fn write_marks_line_dirty_and_eviction_reports_writeback() {
        let mut cache = tiny_cache();
        let block = BlockAddr::new(0);
        cache.fill(block, false, 0, FillOrigin::Demand);
        cache.access(block, AccessKind::Write, 0);
        // Fill two more blocks mapping to the same set (set 0) to force the
        // dirty line out: blocks 0, 4, 8 all map to set 0 with 4 sets.
        cache.fill(BlockAddr::new(4), false, 0, FillOrigin::Demand);
        let evicted = cache.fill(BlockAddr::new(8), false, 0, FillOrigin::Demand);
        let evicted = evicted.expect("set of 2 ways with 3 blocks must evict");
        assert_eq!(evicted.block, block);
        assert!(evicted.dirty);
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn unused_prefetch_eviction_counts_as_overprediction() {
        let mut cache = tiny_cache();
        cache.fill(BlockAddr::new(0), false, 0, FillOrigin::Prefetch);
        cache.fill(BlockAddr::new(4), false, 0, FillOrigin::Demand);
        cache.fill(BlockAddr::new(8), false, 0, FillOrigin::Demand);
        assert_eq!(cache.stats().prefetched_evicted_unused, 1);
        assert_eq!(cache.stats().prefetch_fills, 1);
    }

    #[test]
    fn used_prefetch_is_not_an_overprediction() {
        let mut cache = tiny_cache();
        cache.fill(BlockAddr::new(0), false, 0, FillOrigin::Prefetch);
        cache.access(BlockAddr::new(0), AccessKind::Read, 10);
        cache.fill(BlockAddr::new(4), false, 0, FillOrigin::Demand);
        cache.fill(BlockAddr::new(8), false, 0, FillOrigin::Demand);
        assert_eq!(cache.stats().prefetched_evicted_unused, 0);
    }

    #[test]
    fn invalidate_reports_state() {
        let mut cache = tiny_cache();
        let block = BlockAddr::new(0x100);
        cache.fill(block, true, 0, FillOrigin::Demand);
        let evicted = cache.invalidate(block).expect("line was resident");
        assert!(evicted.dirty);
        assert!(!cache.contains(block));
        assert!(cache.invalidate(block).is_none());
    }

    #[test]
    fn fill_of_resident_block_merges_dirty_state() {
        let mut cache = tiny_cache();
        let block = BlockAddr::new(0x40);
        cache.fill(block, false, 0, FillOrigin::Demand);
        assert!(cache.fill(block, true, 0, FillOrigin::Demand).is_none());
        let evicted = cache.invalidate(block).unwrap();
        assert!(evicted.dirty);
    }

    #[test]
    fn mark_dirty_only_affects_resident_lines() {
        let mut cache = tiny_cache();
        assert!(!cache.mark_dirty(BlockAddr::new(1)));
        cache.fill(BlockAddr::new(1), false, 0, FillOrigin::Demand);
        assert!(cache.mark_dirty(BlockAddr::new(1)));
    }

    #[test]
    fn eviction_reconstructs_block_address() {
        let mut cache = tiny_cache();
        // Blocks 3, 7, 11 all map to set 3.
        cache.fill(BlockAddr::new(3), false, 0, FillOrigin::Demand);
        cache.fill(BlockAddr::new(7), false, 0, FillOrigin::Demand);
        let evicted = cache.fill(BlockAddr::new(11), false, 0, FillOrigin::Demand).unwrap();
        assert_eq!(evicted.block, BlockAddr::new(3));
    }

    #[test]
    fn paper_l1_has_256_sets() {
        let cache = Cache::new("L1D", CacheConfig::l1_paper());
        assert_eq!(cache.sets(), 256);
        assert_eq!(cache.resident_lines(), 0);
    }
}
