//! # pv-mem — memory-hierarchy substrate
//!
//! This crate implements the memory-system substrate used by the Predictor
//! Virtualization (PV) reproduction: physical addresses and cache-block
//! arithmetic, generic set-associative arrays with pluggable replacement
//! policies, L1/L2 cache models with write-back/write-allocate semantics,
//! MSHR files, a DRAM model with reserved PV regions, and a
//! multi-core [`MemoryHierarchy`] that ties the pieces together and keeps the
//! per-requester traffic statistics the paper's evaluation reports
//! (L1 read misses, L2 requests, L2 misses, L2 write-backs, off-chip traffic
//! split into application vs. predictor data).
//!
//! The model is *cycle-approximate*: every access returns the latency it
//! would have observed (tag/data latencies per level plus DRAM latency on a
//! miss) and records which level serviced it. In-flight fills are modelled
//! through a per-line `ready_at` timestamp so that the timeliness of
//! prefetches is captured (a demand access arriving before the prefetch
//! completes pays the residual latency).
//!
//! Timing comes in two flavours selected by [`ContentionModel`]: `Ideal`
//! (fixed latencies, shared resources free — the original semantics) and
//! `Queued` (L2 tag-pipeline banks with port occupancy, MSHR files that
//! exert backpressure when full, and a channel/bank DRAM model with finite
//! request queues whose latency grows under load, with every wait reported
//! as `queue_delay` and split into application vs. predictor traffic).
//!
//! # Example
//!
//! ```
//! use pv_mem::{HierarchyConfig, MemoryHierarchy, Requester, AccessKind, DataClass};
//!
//! let config = HierarchyConfig::paper_baseline(4);
//! let mut hierarchy = MemoryHierarchy::new(config);
//!
//! // Core 0 reads a data block at cycle 100.
//! let response = hierarchy.access(
//!     Requester::data(0),
//!     0x8000,
//!     AccessKind::Read,
//!     DataClass::Application,
//!     100,
//! );
//! assert!(response.latency >= 2); // at least the L1 hit latency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod address;
pub mod block;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod inflight;
pub mod memory;
pub mod mshr;
pub mod prefetch;
pub mod replacement;
pub mod set_assoc;
pub mod set_assoc_ref;
pub mod stats;

pub use accuracy::{AccuracySample, AccuracyWindow};
pub use address::{Address, BlockAddr, RegionAddr, BLOCK_BYTES, BLOCK_OFFSET_BITS};
pub use block::{CacheLine, LineState};
pub use cache::{AccessKind, AccessOutcome, Cache, Evicted, FillOrigin, HitLevel};
pub use config::{CacheConfig, ContentionModel, DramConfig, HierarchyConfig, PvRegionConfig};
pub use hierarchy::{
    AccessResponse, DataClass, EvictionBuffer, MemoryHierarchy, PrefetchResponse, Requester,
    RequesterKind,
};
pub use inflight::{InflightRing, ReferenceInflightQueue};
pub use memory::{DramResponse, MainMemory};
pub use mshr::{MshrEntry, MshrFile, MshrOutcome};
pub use prefetch::NextLinePrefetcher;
pub use replacement::{
    Lru, RandomEvict, ReplacementKind, ReplacementPolicy, ReplacementState, TreePlru,
};
pub use set_assoc::{Occupied, SetAssociative};
pub use set_assoc_ref::ReferenceSetAssociative;
pub use stats::{CacheStats, DelayBreakdown, HierarchyStats, NextLineStats, TrafficBreakdown};
