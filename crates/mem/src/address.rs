//! Physical addresses, cache-block addresses and spatial-region addresses.
//!
//! All address arithmetic used by the caches, the SMS prefetcher and the
//! PVTable layout goes through the newtypes in this module so that byte
//! addresses, block addresses and region addresses cannot be mixed up.

use std::fmt;

/// Number of bytes in a cache block (64 B throughout the paper).
pub const BLOCK_BYTES: u64 = 64;

/// log2 of [`BLOCK_BYTES`].
pub const BLOCK_OFFSET_BITS: u32 = 6;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

/// A cache-block-granularity address (byte address divided by 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

/// A spatial-region-granularity address (block address divided by the number
/// of blocks per region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionAddr(pub u64);

impl Address {
    /// Creates an address from a raw byte value.
    pub fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-block address containing this byte address.
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_OFFSET_BITS)
    }

    /// Returns the byte offset within the containing cache block.
    pub fn block_offset(self) -> u64 {
        self.0 & (BLOCK_BYTES - 1)
    }

    /// Returns the spatial region containing this address for regions of
    /// `blocks_per_region` cache blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_region` is not a power of two.
    pub fn region(self, blocks_per_region: u32) -> RegionAddr {
        self.block().region(blocks_per_region)
    }

    /// Returns the block offset of this address inside its spatial region.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_region` is not a power of two.
    pub fn region_offset(self, blocks_per_region: u32) -> u32 {
        self.block().region_offset(blocks_per_region)
    }

    /// Byte address aligned down to the start of its cache block.
    pub fn block_aligned(self) -> Address {
        Address(self.0 & !(BLOCK_BYTES - 1))
    }
}

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of this block.
    pub fn base_address(self) -> Address {
        Address(self.0 << BLOCK_OFFSET_BITS)
    }

    /// Returns the spatial region containing this block.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_region` is not a power of two.
    pub fn region(self, blocks_per_region: u32) -> RegionAddr {
        assert!(
            blocks_per_region.is_power_of_two(),
            "blocks per region must be a power of two, got {blocks_per_region}"
        );
        RegionAddr(self.0 >> blocks_per_region.trailing_zeros())
    }

    /// Block offset of this block inside its spatial region.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_region` is not a power of two.
    pub fn region_offset(self, blocks_per_region: u32) -> u32 {
        assert!(
            blocks_per_region.is_power_of_two(),
            "blocks per region must be a power of two, got {blocks_per_region}"
        );
        (self.0 & u64::from(blocks_per_region - 1)) as u32
    }

    /// The block immediately following this one (used by the next-line
    /// instruction prefetcher).
    pub fn next(self) -> BlockAddr {
        BlockAddr(self.0.wrapping_add(1))
    }
}

impl RegionAddr {
    /// Creates a region address from a raw region number.
    pub fn new(raw: u64) -> Self {
        RegionAddr(raw)
    }

    /// Returns the raw region number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Block address of the `offset`-th block in this region.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_region` is not a power of two or `offset` is out
    /// of range.
    pub fn block_at(self, offset: u32, blocks_per_region: u32) -> BlockAddr {
        assert!(
            blocks_per_region.is_power_of_two(),
            "blocks per region must be a power of two, got {blocks_per_region}"
        );
        assert!(
            offset < blocks_per_region,
            "offset {offset} out of range for region of {blocks_per_region} blocks"
        );
        BlockAddr((self.0 << blocks_per_region.trailing_zeros()) | u64::from(offset))
    }

    /// First byte address of this region.
    pub fn base_address(self, blocks_per_region: u32) -> Address {
        self.block_at(0, blocks_per_region).base_address()
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {:#x}", self.0)
    }
}

impl fmt::Display for RegionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region {:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_extraction_drops_offset_bits() {
        let addr = Address::new(0x1234_5678);
        assert_eq!(addr.block().raw(), 0x1234_5678 >> 6);
        assert_eq!(addr.block_offset(), 0x1234_5678 & 63);
    }

    #[test]
    fn block_aligned_is_multiple_of_block_size() {
        let addr = Address::new(0xdead_beef);
        assert_eq!(addr.block_aligned().raw() % BLOCK_BYTES, 0);
        assert_eq!(addr.block_aligned().block(), addr.block());
    }

    #[test]
    fn region_round_trip() {
        let blocks_per_region = 32;
        let block = BlockAddr::new(0xabcd);
        let region = block.region(blocks_per_region);
        let offset = block.region_offset(blocks_per_region);
        assert_eq!(region.block_at(offset, blocks_per_region), block);
    }

    #[test]
    fn region_offset_is_bounded() {
        for raw in 0..256u64 {
            let block = BlockAddr::new(raw);
            assert!(block.region_offset(32) < 32);
        }
    }

    #[test]
    fn region_base_address_is_region_aligned() {
        let region = RegionAddr::new(7);
        let base = region.base_address(32);
        assert_eq!(base.raw() % (32 * BLOCK_BYTES), 0);
        assert_eq!(base.region(32), region);
    }

    #[test]
    fn next_block_is_adjacent() {
        let block = BlockAddr::new(100);
        assert_eq!(block.next().raw(), 101);
        assert_eq!(
            block.next().base_address().raw(),
            block.base_address().raw() + BLOCK_BYTES
        );
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", Address::new(0)).is_empty());
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
        assert!(!format!("{}", RegionAddr::new(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_size_panics() {
        BlockAddr::new(1).region(33);
    }
}
