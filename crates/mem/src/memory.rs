//! Main-memory (DRAM) model with reserved PV regions.
//!
//! Two timing modes share one traffic-accounting core:
//!
//! * [`ContentionModel::Ideal`] — every access costs the configured latency;
//!   this reproduces the original fixed-latency model bit for bit.
//! * [`ContentionModel::Queued`] — a channel/bank model with finite request
//!   queues. Each block maps to a channel and a bank within it; a request
//!   waits for a queue slot when the channel already has `queue_depth`
//!   requests in flight, waits for its bank to finish earlier requests
//!   (`bank_occupancy` cycles each), and reserves the channel data bus for
//!   `cycles_per_transfer` cycles, so observed latency grows with load. The
//!   wait beyond the unloaded latency is reported per access and accumulated
//!   as queueing-delay statistics split into application and predictor
//!   traffic.

use crate::address::{Address, BLOCK_OFFSET_BITS};
use crate::config::{ContentionModel, DramConfig, PvRegionConfig};
use crate::inflight::InflightRing;
use crate::stats::{DelayBreakdown, TrafficBreakdown};

/// Timing of one serviced DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResponse {
    /// End-to-end latency in cycles (unloaded latency plus any waiting).
    pub latency: u64,
    /// Cycles spent waiting for shared resources (queue slot, bank, data
    /// bus) beyond the unloaded latency. Always zero in `Ideal` mode.
    pub queue_delay: u64,
}

/// Timing state of one memory channel (only consulted in `Queued` mode).
#[derive(Debug, Clone)]
struct ChannelState {
    /// Cycle each bank becomes free.
    banks: Vec<u64>,
    /// Cycle the channel data bus becomes free.
    data_busy_until: u64,
    /// Completion cycles of requests currently occupying queue slots,
    /// sorted ascending (see `service` for why construction guarantees it).
    inflight: InflightRing,
}

/// The main-memory backing store.
#[derive(Debug, Clone)]
pub struct MainMemory {
    config: DramConfig,
    pv_regions: PvRegionConfig,
    contention: ContentionModel,
    channels: Vec<ChannelState>,
    reads: TrafficBreakdown,
    writes: TrafficBreakdown,
    queue_delay: DelayBreakdown,
    busy_cycles: u64,
}

impl MainMemory {
    /// Creates a memory model.
    ///
    /// # Panics
    ///
    /// Panics if the queued-model geometry is degenerate (zero channels,
    /// banks or queue depth).
    pub fn new(
        config: DramConfig,
        pv_regions: PvRegionConfig,
        contention: ContentionModel,
    ) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(
            config.banks_per_channel > 0,
            "DRAM needs at least one bank per channel"
        );
        assert!(config.queue_depth > 0, "DRAM queues need at least one slot");
        let channels = (0..config.channels)
            .map(|_| ChannelState {
                banks: vec![0; config.banks_per_channel],
                data_busy_until: 0,
                inflight: InflightRing::new(config.queue_depth),
            })
            .collect();
        MainMemory {
            config,
            pv_regions,
            contention,
            channels,
            reads: TrafficBreakdown::default(),
            writes: TrafficBreakdown::default(),
            queue_delay: DelayBreakdown::default(),
            busy_cycles: 0,
        }
    }

    /// Unloaded access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// The contention model this memory runs under.
    pub fn contention(&self) -> ContentionModel {
        self.contention
    }

    /// Whether `addr` belongs to a reserved predictor region.
    pub fn is_predictor_address(&self, addr: Address) -> bool {
        self.pv_regions.contains(addr)
    }

    /// Performs a block read issued at cycle `now`.
    pub fn read(&mut self, addr: Address, now: u64) -> DramResponse {
        let predictor = self.is_predictor_address(addr);
        self.read_classified(addr, predictor, now)
    }

    /// Performs a block read whose PV-region classification the caller has
    /// already computed (`predictor` must equal
    /// [`Self::is_predictor_address`] for `addr`). The hierarchy resolves
    /// the region once per request and threads the result through the
    /// miss/writeback/eviction chain instead of re-deriving it here.
    pub fn read_classified(&mut self, addr: Address, predictor: bool, now: u64) -> DramResponse {
        debug_assert_eq!(predictor, self.is_predictor_address(addr));
        self.reads.record(predictor);
        self.service(addr, now, predictor, true)
    }

    /// Performs a block write (write-back) issued at cycle `now`. The
    /// requester does not wait for writes, but in `Queued` mode they occupy
    /// banks, queue slots and data-bus cycles like reads do, so write-back
    /// bursts slow concurrent reads down. Because nobody waits on them,
    /// their computed wait is *not* added to the reported queueing-delay
    /// statistics — only to the shared timing state.
    pub fn write(&mut self, addr: Address, now: u64) -> DramResponse {
        let predictor = self.is_predictor_address(addr);
        self.write_classified(addr, predictor, now)
    }

    /// Performs a block write with a caller-computed PV-region
    /// classification; see [`Self::read_classified`].
    pub fn write_classified(&mut self, addr: Address, predictor: bool, now: u64) -> DramResponse {
        debug_assert_eq!(predictor, self.is_predictor_address(addr));
        self.writes.record(predictor);
        self.service(addr, now, predictor, false)
    }

    /// Shared-resource timing of one request.
    fn service(&mut self, addr: Address, now: u64, predictor: bool, is_read: bool) -> DramResponse {
        if self.contention == ContentionModel::Ideal {
            return DramResponse {
                latency: self.config.latency,
                queue_delay: 0,
            };
        }
        let block = addr.raw() >> BLOCK_OFFSET_BITS;
        let channel_idx = (block % self.config.channels as u64) as usize;
        let bank_idx =
            ((block / self.config.channels as u64) % self.config.banks_per_channel as u64) as usize;
        let channel = &mut self.channels[channel_idx];

        // Queue admission: wait until the channel has a free request slot.
        // `inflight` is sorted ascending by construction: each request's
        // completion is strictly later than the previous one's on the same
        // channel (it waits for at least `data_busy_until`), so completed
        // requests drain from the front without scanning the whole queue,
        // and a full queue delays the newcomer until the oldest in-flight
        // request — the ring front — completes (see `crate::inflight` for
        // the equivalence with the historical `VecDeque` queue).
        channel.inflight.drain(now);
        let start = channel.inflight.admit(now);

        // Bank occupancy: earlier requests to the same bank serialize.
        let bank_start = start.max(channel.banks[bank_idx]);
        channel.banks[bank_idx] = bank_start + self.config.bank_occupancy;

        // Data bus: one block transfer per `cycles_per_transfer` cycles.
        let unloaded_done = bank_start + self.config.latency;
        let done = unloaded_done.max(channel.data_busy_until + self.config.cycles_per_transfer);
        channel.data_busy_until = done;
        channel.inflight.push(done);
        self.busy_cycles += self.config.cycles_per_transfer;

        let latency = done - now;
        let queue_delay = latency - self.config.latency;
        if is_read {
            self.queue_delay.record(predictor, queue_delay);
        }
        DramResponse {
            latency,
            queue_delay,
        }
    }

    /// Block reads served so far, split by data class.
    pub fn reads(&self) -> TrafficBreakdown {
        self.reads
    }

    /// Block writes served so far, split by data class.
    pub fn writes(&self) -> TrafficBreakdown {
        self.writes
    }

    /// Queueing-delay cycles accumulated by *reads* so far (the waits a
    /// requester actually experiences), split by data class.
    pub fn queue_delay(&self) -> DelayBreakdown {
        self.queue_delay
    }

    /// Channel-cycles the data buses spent transferring blocks.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Resets the traffic counters. Channel/bank/queue timing state is
    /// preserved; see [`Self::reset_timing`] for window boundaries where
    /// the requesters' clocks restart.
    pub fn reset_stats(&mut self) {
        self.reads = TrafficBreakdown::default();
        self.writes = TrafficBreakdown::default();
        self.queue_delay = DelayBreakdown::default();
        self.busy_cycles = 0;
    }

    /// Rebases the channel/bank/queue timing state to cycle zero (all banks
    /// and buses idle, queues empty). Called at measurement-window
    /// boundaries, where requester clocks restart from zero — absolute
    /// busy times from the previous window would otherwise read as phantom
    /// queueing delay.
    pub fn reset_timing(&mut self) {
        for channel in &mut self.channels {
            channel.banks.iter_mut().for_each(|bank| *bank = 0);
            channel.data_busy_until = 0;
            channel.inflight.clear();
        }
    }

    /// The PV-region configuration this memory was built with.
    pub fn pv_regions(&self) -> PvRegionConfig {
        self.pv_regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> MainMemory {
        MainMemory::new(
            DramConfig::paper(),
            PvRegionConfig::paper_default(4),
            ContentionModel::Ideal,
        )
    }

    fn queued(config: DramConfig) -> MainMemory {
        MainMemory::new(
            config,
            PvRegionConfig::paper_default(4),
            ContentionModel::Queued,
        )
    }

    #[test]
    fn ideal_read_and_write_cost_configured_latency() {
        let mut mem = memory();
        assert_eq!(mem.read(Address::new(0x1000), 0).latency, 400);
        assert_eq!(mem.write(Address::new(0x2000), 50).latency, 400);
        assert_eq!(mem.queue_delay().total_cycles(), 0);
    }

    #[test]
    fn traffic_is_classified_by_region() {
        let mut mem = memory();
        let pv_base = mem.pv_regions().core_base(0);
        mem.read(Address::new(0x1000), 0);
        mem.read(pv_base, 0);
        mem.write(pv_base, 0);
        assert_eq!(mem.reads().application, 1);
        assert_eq!(mem.reads().predictor, 1);
        assert_eq!(mem.writes().predictor, 1);
        assert_eq!(mem.writes().application, 0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut mem = memory();
        mem.read(Address::new(0), 0);
        mem.reset_stats();
        assert_eq!(mem.reads().total(), 0);
        assert_eq!(mem.writes().total(), 0);
        assert_eq!(mem.busy_cycles(), 0);
    }

    #[test]
    fn queued_single_access_pays_unloaded_latency() {
        let mut mem = queued(DramConfig::paper());
        let response = mem.read(Address::new(0x4000), 100);
        assert_eq!(response.latency, 400);
        assert_eq!(response.queue_delay, 0);
    }

    #[test]
    fn queued_latency_grows_under_burst_load() {
        let mut mem = queued(DramConfig::paper());
        // A burst of back-to-back blocks at the same cycle: the data buses
        // serialize transfers, so later requests observe growing latency.
        let mut last = 0;
        for i in 0..64u64 {
            let response = mem.read(Address::new(i * 64), 0);
            last = last.max(response.latency);
        }
        assert!(
            last > 400,
            "a 64-block burst must queue behind the data bus, got max latency {last}"
        );
        assert!(mem.queue_delay().application_cycles() > 0);
        assert_eq!(mem.queue_delay().predictor_cycles(), 0);
    }

    #[test]
    fn queued_full_queue_delays_admission() {
        let mut config = DramConfig::paper();
        config.channels = 1;
        config.banks_per_channel = 1;
        config.queue_depth = 2;
        config.bank_occupancy = 1;
        config.cycles_per_transfer = 1;
        let mut mem = queued(config);
        // Two requests fill the queue; the third must wait for a slot, which
        // frees when the first request completes.
        let first = mem.read(Address::new(0), 0);
        mem.read(Address::new(64), 0);
        let third = mem.read(Address::new(128), 0);
        assert!(
            third.queue_delay >= first.latency,
            "third request must wait at least until the first drains \
             (delay {}, first latency {})",
            third.queue_delay,
            first.latency
        );
    }

    #[test]
    fn lower_bandwidth_means_more_queueing() {
        let run = |cycles_per_transfer: u64| {
            let mut mem = queued(DramConfig::paper().with_cycles_per_transfer(cycles_per_transfer));
            for i in 0..256u64 {
                // A steady stream faster than the bus can drain.
                mem.read(Address::new(i * 64), i * 2);
            }
            mem.queue_delay().total_cycles()
        };
        let fast = run(4);
        let medium = run(32);
        let slow = run(128);
        assert!(
            fast < medium && medium < slow,
            "queueing must grow as bandwidth shrinks: {fast} < {medium} < {slow}"
        );
    }

    #[test]
    fn queued_writes_consume_bandwidth() {
        let mut mem = queued(DramConfig::paper());
        let before = mem.busy_cycles();
        mem.write(Address::new(0x9000), 0);
        assert_eq!(
            mem.busy_cycles() - before,
            DramConfig::paper().cycles_per_transfer
        );
    }
}
