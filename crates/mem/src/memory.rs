//! Fixed-latency main-memory (DRAM) model with reserved PV regions.

use crate::address::Address;
use crate::config::{DramConfig, PvRegionConfig};
use crate::stats::TrafficBreakdown;

/// The main-memory backing store.
///
/// The model is purely a latency/traffic sink: every access costs the
/// configured latency and is counted as a block read or block write,
/// classified as application or predictor data according to the reserved PV
/// regions.
#[derive(Debug, Clone)]
pub struct MainMemory {
    config: DramConfig,
    pv_regions: PvRegionConfig,
    reads: TrafficBreakdown,
    writes: TrafficBreakdown,
}

impl MainMemory {
    /// Creates a memory model.
    pub fn new(config: DramConfig, pv_regions: PvRegionConfig) -> Self {
        MainMemory {
            config,
            pv_regions,
            reads: TrafficBreakdown::default(),
            writes: TrafficBreakdown::default(),
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Whether `addr` belongs to a reserved predictor region.
    pub fn is_predictor_address(&self, addr: Address) -> bool {
        self.pv_regions.contains(addr)
    }

    /// Performs a block read and returns its latency.
    pub fn read(&mut self, addr: Address) -> u64 {
        self.reads.record(self.is_predictor_address(addr));
        self.config.latency
    }

    /// Performs a block write (write-back) and returns its latency.
    pub fn write(&mut self, addr: Address) -> u64 {
        self.writes.record(self.is_predictor_address(addr));
        self.config.latency
    }

    /// Block reads served so far, split by data class.
    pub fn reads(&self) -> TrafficBreakdown {
        self.reads
    }

    /// Block writes served so far, split by data class.
    pub fn writes(&self) -> TrafficBreakdown {
        self.writes
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.reads = TrafficBreakdown::default();
        self.writes = TrafficBreakdown::default();
    }

    /// The PV-region configuration this memory was built with.
    pub fn pv_regions(&self) -> PvRegionConfig {
        self.pv_regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> MainMemory {
        MainMemory::new(DramConfig::paper(), PvRegionConfig::paper_default(4))
    }

    #[test]
    fn read_and_write_cost_configured_latency() {
        let mut mem = memory();
        assert_eq!(mem.read(Address::new(0x1000)), 400);
        assert_eq!(mem.write(Address::new(0x2000)), 400);
    }

    #[test]
    fn traffic_is_classified_by_region() {
        let mut mem = memory();
        let pv_base = mem.pv_regions().core_base(0);
        mem.read(Address::new(0x1000));
        mem.read(pv_base);
        mem.write(pv_base);
        assert_eq!(mem.reads().application, 1);
        assert_eq!(mem.reads().predictor, 1);
        assert_eq!(mem.writes().predictor, 1);
        assert_eq!(mem.writes().application, 0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut mem = memory();
        mem.read(Address::new(0));
        mem.reset_stats();
        assert_eq!(mem.reads().total(), 0);
        assert_eq!(mem.writes().total(), 0);
    }
}
