//! Windowed prefetch-accuracy sampling.
//!
//! The L1 data caches already keep the two counters that define prefetch
//! accuracy — first demand uses of prefetched lines and prefetched lines
//! evicted before any use — but only as run totals. This module samples
//! them over a configurable *epoch* so a feedback consumer (the throttle
//! controller in `pv-sim`) can react to how useful prefetches are *right
//! now* rather than on average since boot.
//!
//! The [`MemoryHierarchy`](crate::MemoryHierarchy) owns one
//! [`AccuracyWindow`] per (core, [`DataClass`](crate::DataClass)) pair and
//! feeds it from the prefetch bookkeeping it already performs; recording is
//! pure counting and never influences timing, so configurations that ignore
//! the windows behave bit-identically with sampling on or off.

use std::collections::VecDeque;

/// One completed accuracy epoch: how prefetched lines fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracySample {
    /// Prefetched lines first used by a demand access during the epoch.
    pub used: u64,
    /// Prefetched lines evicted (or invalidated) unused during the epoch.
    pub useless: u64,
}

impl AccuracySample {
    /// Useful fraction in `[0, 1]`; zero for an empty sample.
    pub fn accuracy(&self) -> f64 {
        let total = self.used + self.useless;
        if total == 0 {
            0.0
        } else {
            self.used as f64 / total as f64
        }
    }

    /// Whether the sample's accuracy is strictly below `pct` per cent
    /// (integer arithmetic, so feedback decisions stay exactly
    /// reproducible across hosts).
    pub fn below_pct(&self, pct: u8) -> bool {
        self.used * 100 < u64::from(pct) * (self.used + self.useless)
    }

    /// Whether the sample's accuracy is strictly above `pct` per cent.
    pub fn above_pct(&self, pct: u8) -> bool {
        self.used * 100 > u64::from(pct) * (self.used + self.useless)
    }
}

/// Samples prefetch outcomes (used vs. evicted-unused) over fixed-size
/// epochs of `epoch` outcome events each.
///
/// Completed epochs queue up until a consumer drains them with
/// [`AccuracyWindow::pop_completed`]; cumulative totals are kept alongside
/// for end-of-run reporting.
#[derive(Debug, Clone)]
pub struct AccuracyWindow {
    epoch: u64,
    used: u64,
    useless: u64,
    completed: VecDeque<AccuracySample>,
    total_used: u64,
    total_useless: u64,
}

impl AccuracyWindow {
    /// Creates a window sampling every `epoch` prefetch-outcome events.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero — a zero-length epoch would complete a
    /// sample on every event and the backlog would grow without bound.
    pub fn new(epoch: u64) -> Self {
        assert!(epoch > 0, "accuracy epochs must contain at least one event");
        AccuracyWindow {
            epoch,
            used: 0,
            useless: 0,
            // Reserve the full backlog up front: completing an epoch sits
            // on the per-record hot path, which must never allocate.
            completed: VecDeque::with_capacity(Self::MAX_PENDING),
            total_used: 0,
            total_useless: 0,
        }
    }

    /// The configured epoch length in events.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records the first demand use of a prefetched line.
    pub fn record_used(&mut self) {
        self.used += 1;
        self.total_used += 1;
        self.maybe_complete();
    }

    /// Records a prefetched line evicted or invalidated before any use.
    pub fn record_useless(&mut self) {
        self.useless += 1;
        self.total_useless += 1;
        self.maybe_complete();
    }

    /// Completed epochs retained when nobody drains the window. Feedback
    /// consumers (the throttle controller) drain on every access, so they
    /// never come near the cap; in runs without a consumer the backlog
    /// would otherwise grow linearly with run length for nothing.
    pub const MAX_PENDING: usize = 64;

    fn maybe_complete(&mut self) {
        if self.used + self.useless >= self.epoch {
            if self.completed.len() == Self::MAX_PENDING {
                self.completed.pop_front();
            }
            self.completed.push_back(AccuracySample {
                used: self.used,
                useless: self.useless,
            });
            self.used = 0;
            self.useless = 0;
        }
    }

    /// Removes and returns the oldest completed epoch, if any.
    pub fn pop_completed(&mut self) -> Option<AccuracySample> {
        self.completed.pop_front()
    }

    /// Number of completed epochs waiting to be drained.
    pub fn pending(&self) -> usize {
        self.completed.len()
    }

    /// Events recorded in the current (incomplete) epoch.
    pub fn in_flight_events(&self) -> u64 {
        self.used + self.useless
    }

    /// Cumulative used/useless totals since the last reset, including the
    /// current incomplete epoch.
    pub fn totals(&self) -> AccuracySample {
        AccuracySample {
            used: self.total_used,
            useless: self.total_useless,
        }
    }

    /// Clears all samples and counters, keeping the epoch length (used at
    /// the warm-up/measurement boundary).
    pub fn reset(&mut self) {
        self.used = 0;
        self.useless = 0;
        self.completed.clear();
        self.total_used = 0;
        self.total_useless = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_completion_and_drain_order() {
        let mut window = AccuracyWindow::new(4);
        for _ in 0..3 {
            window.record_used();
        }
        assert_eq!(window.pending(), 0);
        assert_eq!(window.in_flight_events(), 3);
        window.record_useless();
        assert_eq!(window.pending(), 1);
        assert_eq!(window.in_flight_events(), 0);
        for _ in 0..4 {
            window.record_useless();
        }
        assert_eq!(window.pending(), 2);
        let first = window.pop_completed().unwrap();
        assert_eq!(
            first,
            AccuracySample {
                used: 3,
                useless: 1
            }
        );
        let second = window.pop_completed().unwrap();
        assert_eq!(
            second,
            AccuracySample {
                used: 0,
                useless: 4
            }
        );
        assert!(window.pop_completed().is_none());
        assert_eq!(
            window.totals(),
            AccuracySample {
                used: 3,
                useless: 5
            }
        );
    }

    #[test]
    fn sample_accuracy_fractions_and_thresholds() {
        let sample = AccuracySample {
            used: 3,
            useless: 1,
        };
        assert!((sample.accuracy() - 0.75).abs() < 1e-12);
        assert!(sample.below_pct(80));
        assert!(!sample.below_pct(75));
        assert!(sample.above_pct(70));
        assert!(!sample.above_pct(75));
        let empty = AccuracySample {
            used: 0,
            useless: 0,
        };
        assert_eq!(empty.accuracy(), 0.0);
        assert!(!empty.below_pct(50), "an empty sample crosses no threshold");
        assert!(!empty.above_pct(50));
    }

    #[test]
    fn reset_clears_counts_and_backlog_but_keeps_epoch() {
        let mut window = AccuracyWindow::new(2);
        window.record_used();
        window.record_used();
        window.record_useless();
        assert_eq!(window.pending(), 1);
        window.reset();
        assert_eq!(window.pending(), 0);
        assert_eq!(window.in_flight_events(), 0);
        assert_eq!(
            window.totals(),
            AccuracySample {
                used: 0,
                useless: 0
            }
        );
        assert_eq!(window.epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_epoch_is_rejected() {
        let _ = AccuracyWindow::new(0);
    }

    /// Undrained windows (every run without a throttle consumer) must not
    /// accumulate samples without bound: the backlog is capped and the
    /// oldest epochs are shed first, while cumulative totals keep counting.
    #[test]
    fn undrained_backlog_is_bounded_and_sheds_oldest() {
        let mut window = AccuracyWindow::new(1);
        for _ in 0..AccuracyWindow::MAX_PENDING + 10 {
            window.record_used();
        }
        window.record_useless();
        assert_eq!(window.pending(), AccuracyWindow::MAX_PENDING);
        assert_eq!(
            window.totals(),
            AccuracySample {
                used: (AccuracyWindow::MAX_PENDING + 10) as u64,
                useless: 1
            }
        );
        // The newest sample survived the shedding; only old ones dropped.
        let newest = std::iter::from_fn(|| window.pop_completed()).last().unwrap();
        assert_eq!(
            newest,
            AccuracySample {
                used: 0,
                useless: 1
            }
        );
    }
}
