//! Cache-line metadata.

use crate::address::BlockAddr;

/// Coherence-less line state: the reproduction models a shared L2 with
/// private L1s and tracks only validity and dirtiness, which is all the
/// paper's traffic metrics require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// The line holds no valid block.
    #[default]
    Invalid,
    /// The line holds a clean copy of the block.
    Clean,
    /// The line holds a modified copy that must be written back on eviction.
    Dirty,
}

impl LineState {
    /// Whether the line holds a valid block.
    pub fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Whether the line must be written back when evicted.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Dirty)
    }
}

/// Metadata for one cache line.
///
/// `ready_at` records the cycle at which the fill that installed this line
/// completes; an access arriving earlier pays the residual latency. This is
/// how prefetch timeliness is modelled without a full event-driven engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Block held by this line (meaningful only when `state` is valid).
    pub block: BlockAddr,
    /// Validity/dirtiness of the line.
    pub state: LineState,
    /// Cycle at which the fill completes and the data is usable.
    pub ready_at: u64,
    /// True when the line was installed by a prefetch and has not yet been
    /// referenced by a demand access (used for over-prediction accounting).
    pub prefetched_unused: bool,
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine {
            block: BlockAddr::new(0),
            state: LineState::Invalid,
            ready_at: 0,
            prefetched_unused: false,
        }
    }
}

impl CacheLine {
    /// A freshly filled line.
    pub fn filled(block: BlockAddr, dirty: bool, ready_at: u64, prefetched: bool) -> Self {
        CacheLine {
            block,
            state: if dirty {
                LineState::Dirty
            } else {
                LineState::Clean
            },
            ready_at,
            prefetched_unused: prefetched,
        }
    }

    /// Whether this line currently holds `block`.
    pub fn matches(&self, block: BlockAddr) -> bool {
        self.state.is_valid() && self.block == block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_line_is_invalid() {
        let line = CacheLine::default();
        assert!(!line.state.is_valid());
        assert!(!line.matches(BlockAddr::new(0)));
    }

    #[test]
    fn filled_line_matches_its_block() {
        let line = CacheLine::filled(BlockAddr::new(42), false, 10, false);
        assert!(line.matches(BlockAddr::new(42)));
        assert!(!line.matches(BlockAddr::new(43)));
        assert_eq!(line.state, LineState::Clean);
    }

    #[test]
    fn dirty_fill_is_dirty() {
        let line = CacheLine::filled(BlockAddr::new(1), true, 0, false);
        assert!(line.state.is_dirty());
        assert!(line.state.is_valid());
    }

    #[test]
    fn invalid_state_is_not_dirty() {
        assert!(!LineState::Invalid.is_dirty());
        assert!(!LineState::Invalid.is_valid());
        assert!(LineState::Clean.is_valid());
        assert!(!LineState::Clean.is_dirty());
    }
}
