//! The multi-core memory hierarchy: private L1 I/D caches per core, a shared
//! L2, and main memory, plus the hook the PVProxy uses to inject requests at
//! the backside of the L1.
//!
//! The hierarchy is the single point through which all memory traffic flows,
//! so it owns the traffic accounting the paper's evaluation reports:
//! L2 requests, L2 misses, L2 write-backs and off-chip traffic, each split
//! into application and predictor data.

use crate::address::{Address, BlockAddr};
use crate::cache::{AccessKind, AccessOutcome, Cache, FillOrigin, HitLevel};
use crate::config::HierarchyConfig;
use crate::memory::MainMemory;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::NextLinePrefetcher;
use crate::stats::HierarchyStats;

/// What kind of agent issued a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequesterKind {
    /// A core's load/store stream through its L1 data cache.
    Data,
    /// A core's instruction-fetch stream through its L1 instruction cache.
    Instruction,
    /// The per-core PVProxy, injecting requests directly at the L2.
    PvProxy,
    /// A data prefetch on behalf of a core (SMS stream).
    DataPrefetch,
}

/// A request source: which core and which agent on that core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Requester {
    /// Core index.
    pub core: usize,
    /// Agent kind.
    pub kind: RequesterKind,
}

impl Requester {
    /// A core's data-access stream.
    pub fn data(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::Data,
        }
    }

    /// A core's instruction-fetch stream.
    pub fn instruction(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::Instruction,
        }
    }

    /// A core's PVProxy.
    pub fn pv_proxy(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::PvProxy,
        }
    }

    /// A data prefetch issued on behalf of a core.
    pub fn prefetch(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::DataPrefetch,
        }
    }
}

/// Classification of the data moved by a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Ordinary application data.
    Application,
    /// Virtualized predictor metadata (PVTable contents).
    Predictor,
}

impl DataClass {
    /// Whether this is predictor data.
    pub fn is_predictor(self) -> bool {
        matches!(self, DataClass::Predictor)
    }
}

/// Result of a demand access through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResponse {
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Which level serviced the request.
    pub level: HitLevel,
    /// Blocks evicted from the requesting core's L1 data cache as a side
    /// effect of this access (used by SMS to close spatial generations).
    pub l1_evictions: Vec<BlockAddr>,
    /// The access was the first demand use of a prefetched L1 line.
    pub first_use_of_prefetch: bool,
    /// The access hit a prefetched line whose fill was still in flight.
    pub late_prefetch: bool,
}

/// Result of a prefetch request into an L1 data cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchResponse {
    /// False when the block was already resident (prefetch dropped).
    pub issued: bool,
    /// Cycle at which the prefetched data becomes usable.
    pub ready_at: u64,
    /// Blocks evicted from the L1 data cache to make room.
    pub l1_evictions: Vec<BlockAddr>,
}

/// The simulated memory system.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1d: Vec<Cache>,
    l1i: Vec<Cache>,
    l1d_mshr: Vec<MshrFile>,
    l1i_mshr: Vec<MshrFile>,
    l2: Cache,
    l2_mshr: MshrFile,
    dram: MainMemory,
    iprefetch: Vec<NextLinePrefetcher>,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        let cores = config.cores;
        let l1d = (0..cores).map(|c| Cache::new(format!("L1D.{c}"), config.l1d)).collect();
        let l1i = (0..cores).map(|c| Cache::new(format!("L1I.{c}"), config.l1i)).collect();
        let l1d_mshr = (0..cores).map(|_| MshrFile::new(config.l1d.mshr_entries)).collect();
        let l1i_mshr = (0..cores).map(|_| MshrFile::new(config.l1i.mshr_entries)).collect();
        let l2 = Cache::new("L2", config.l2);
        let l2_mshr = MshrFile::new(config.l2.mshr_entries);
        let dram = MainMemory::new(config.dram, config.pv_regions);
        MemoryHierarchy {
            config,
            l1d,
            l1i,
            l1d_mshr,
            l1i_mshr,
            l2,
            l2_mshr,
            dram,
            iprefetch: (0..cores).map(|_| NextLinePrefetcher::new()).collect(),
            stats: HierarchyStats::new(cores),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.config.cores
    }

    fn assert_core(&self, core: usize) {
        assert!(
            core < self.config.cores,
            "core {core} out of range ({} cores)",
            self.config.cores
        );
    }

    fn classify(&self, block: BlockAddr) -> DataClass {
        if self.dram.is_predictor_address(block.base_address()) {
            DataClass::Predictor
        } else {
            DataClass::Application
        }
    }

    /// Whether `block` is resident in `core`'s L1 data cache.
    pub fn l1d_contains(&self, core: usize, block: BlockAddr) -> bool {
        self.assert_core(core);
        self.l1d[core].contains(block)
    }

    /// Whether `block` is resident in the shared L2.
    pub fn l2_contains(&self, block: BlockAddr) -> bool {
        self.l2.contains(block)
    }

    /// Performs a demand access on behalf of `requester`.
    ///
    /// * `Data` / `Instruction` requesters go through the core's L1 and, on a
    ///   miss, through the shared L2 and memory; the filled line is installed
    ///   in the L1 (write-allocate).
    /// * `PvProxy` requesters bypass the L1 and are injected at the L2, as in
    ///   the paper's design ("normal memory requests, injected on the
    ///   backside of the L1").
    ///
    /// # Panics
    ///
    /// Panics if `requester.core` is out of range.
    pub fn access(
        &mut self,
        requester: Requester,
        addr: u64,
        kind: AccessKind,
        class: DataClass,
        now: u64,
    ) -> AccessResponse {
        self.assert_core(requester.core);
        let block = Address::new(addr).block();
        match requester.kind {
            RequesterKind::Data => self.l1_path(requester.core, block, kind, class, now, false),
            RequesterKind::Instruction => {
                self.l1_path(requester.core, block, kind, class, now, true)
            }
            RequesterKind::PvProxy | RequesterKind::DataPrefetch => {
                let (latency, level) = self.l2_path(block, kind, class, now);
                AccessResponse {
                    latency,
                    level,
                    l1_evictions: Vec::new(),
                    first_use_of_prefetch: false,
                    late_prefetch: false,
                }
            }
        }
    }

    /// Demand path through a private L1 (data or instruction).
    fn l1_path(
        &mut self,
        core: usize,
        block: BlockAddr,
        kind: AccessKind,
        class: DataClass,
        now: u64,
        instruction: bool,
    ) -> AccessResponse {
        let outcome = if instruction {
            self.l1i[core].access(block, kind, now)
        } else {
            self.l1d[core].access(block, kind, now)
        };
        if outcome.hit {
            return AccessResponse {
                latency: outcome.latency,
                level: HitLevel::L1,
                l1_evictions: Vec::new(),
                first_use_of_prefetch: outcome.first_use_of_prefetch,
                late_prefetch: outcome.late_prefetch,
            };
        }
        self.miss_path(core, block, kind, class, now, instruction, outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn miss_path(
        &mut self,
        core: usize,
        block: BlockAddr,
        kind: AccessKind,
        class: DataClass,
        now: u64,
        instruction: bool,
        outcome: AccessOutcome,
    ) -> AccessResponse {
        // L1 miss: merge into an outstanding fill when possible, otherwise go
        // to the L2 (and possibly memory).
        let below_start = now + outcome.latency;
        let outstanding_ready = {
            let mshr = if instruction {
                &mut self.l1i_mshr[core]
            } else {
                &mut self.l1d_mshr[core]
            };
            mshr.retire(now);
            mshr.lookup(block).map(|entry| entry.ready_at)
        };
        let (below_latency, level) = if let Some(ready) = outstanding_ready {
            let mshr = if instruction {
                &mut self.l1i_mshr[core]
            } else {
                &mut self.l1d_mshr[core]
            };
            let _ = mshr.register(block, now, ready);
            (ready.saturating_sub(below_start), HitLevel::L2)
        } else {
            let (lat, level) = self.l2_path(block, AccessKind::Read, class, below_start);
            let ready = below_start + lat;
            let mshr = if instruction {
                &mut self.l1i_mshr[core]
            } else {
                &mut self.l1d_mshr[core]
            };
            if let MshrOutcome::Full = mshr.register(block, now, ready) {
                // Structural stall: with the paper's 16-entry MSHRs this is
                // rare; the access simply pays the computed latency.
            }
            (lat, level)
        };
        let total_latency = outcome.latency + below_latency;
        let ready_at = now + total_latency;
        let dirty = kind == AccessKind::Write;
        let evicted = if instruction {
            self.l1i[core].fill(block, dirty, ready_at, FillOrigin::Demand)
        } else {
            self.l1d[core].fill(block, dirty, ready_at, FillOrigin::Demand)
        };
        let mut evictions = Vec::new();
        if let Some(ev) = evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block, now);
            }
            if !instruction {
                evictions.push(ev.block);
            }
        }
        // Baseline next-line instruction prefetcher.
        if instruction && self.config.next_line_iprefetch {
            if let Some(target) = self.iprefetch[core].on_instruction_miss(block) {
                self.prefetch_into_l1i(core, target, now);
            }
        }
        AccessResponse {
            latency: total_latency,
            level,
            l1_evictions: evictions,
            first_use_of_prefetch: false,
            late_prefetch: false,
        }
    }

    /// Shared-L2 access path (used by L1 misses, prefetches and the PVProxy).
    /// Returns `(latency, serviced_level)`.
    fn l2_path(
        &mut self,
        block: BlockAddr,
        kind: AccessKind,
        class: DataClass,
        now: u64,
    ) -> (u64, HitLevel) {
        let predictor = class.is_predictor() || self.classify(block).is_predictor();
        self.stats.l2_requests.record(predictor);
        let outcome = self.l2.access(block, kind, now);
        if outcome.hit {
            return (self.config.l2.tag_latency + outcome.latency, HitLevel::L2);
        }
        // L2 miss.
        self.stats.l2_misses.record(predictor);
        self.l2_mshr.retire(now);
        let below_start = now + outcome.latency;
        let dram_latency = if let Some(entry) = self.l2_mshr.lookup(block) {
            let ready = entry.ready_at;
            self.l2_mshr.register(block, now, ready);
            ready.saturating_sub(below_start)
        } else {
            self.stats.dram_reads += 1;
            let lat = self.dram.read(block.base_address());
            let _ = self.l2_mshr.register(block, now, below_start + lat);
            lat
        };
        let total = outcome.latency + dram_latency;
        let dirty = kind == AccessKind::Write;
        let evicted = self.l2.fill(block, dirty, now + total, FillOrigin::Demand);
        if let Some(ev) = evicted {
            if ev.dirty {
                let victim_predictor = self.classify(ev.block).is_predictor();
                self.stats.l2_writebacks.record(victim_predictor);
                self.stats.dram_writes += 1;
                self.dram.write(ev.block.base_address());
            }
        }
        (total, HitLevel::Memory)
    }

    /// A dirty line leaving an L1 (or the PVCache) is written back into the
    /// L2. Write-backs allocate in the L2 without fetching from memory
    /// because the whole block is being overwritten.
    fn writeback_to_l2(&mut self, block: BlockAddr, now: u64) {
        let predictor = self.classify(block).is_predictor();
        self.stats.l2_requests.record(predictor);
        if self.l2.mark_dirty(block) {
            // Count as a write hit for the L2's own statistics.
            let _ = self.l2.access(block, AccessKind::Write, now);
            return;
        }
        let _ = self.l2.access(block, AccessKind::Write, now);
        let evicted = self.l2.fill(
            block,
            true,
            now + self.config.l2.data_latency,
            FillOrigin::Demand,
        );
        if let Some(ev) = evicted {
            if ev.dirty {
                let victim_predictor = self.classify(ev.block).is_predictor();
                self.stats.l2_writebacks.record(victim_predictor);
                self.stats.dram_writes += 1;
                self.dram.write(ev.block.base_address());
            }
        }
    }

    /// Write-back entry point for the PVProxy: a dirty PVCache victim is sent
    /// to the L2 exactly like an L1 write-back would be.
    pub fn writeback(&mut self, requester: Requester, addr: u64, now: u64) {
        self.assert_core(requester.core);
        self.writeback_to_l2(Address::new(addr).block(), now);
    }

    /// Prefetches `block` into `core`'s L1 data cache (SMS stream target).
    ///
    /// The prefetch travels through the L2 like a demand fill would, but the
    /// core does not wait for it; the returned `ready_at` is when the data
    /// becomes usable.
    pub fn prefetch_into_l1d(
        &mut self,
        core: usize,
        block: BlockAddr,
        now: u64,
    ) -> PrefetchResponse {
        self.assert_core(core);
        if self.l1d[core].contains(block) {
            return PrefetchResponse {
                issued: false,
                ready_at: now,
                l1_evictions: Vec::new(),
            };
        }
        self.l1d_mshr[core].retire(now);
        if self.l1d_mshr[core].lookup(block).is_some() {
            // A demand miss or earlier prefetch is already fetching it.
            return PrefetchResponse {
                issued: false,
                ready_at: now,
                l1_evictions: Vec::new(),
            };
        }
        let (latency, _level) = self.l2_path(block, AccessKind::Read, DataClass::Application, now);
        let ready_at = now + latency;
        let _ = self.l1d_mshr[core].register(block, now, ready_at);
        self.stats.l1d_prefetches[core] += 1;
        let evicted = self.l1d[core].fill(block, false, ready_at, FillOrigin::Prefetch);
        let mut evictions = Vec::new();
        if let Some(ev) = evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block, now);
            }
            evictions.push(ev.block);
        }
        PrefetchResponse {
            issued: true,
            ready_at,
            l1_evictions: evictions,
        }
    }

    /// Next-line instruction prefetch into the L1I (internal helper, but
    /// exposed for tests).
    fn prefetch_into_l1i(&mut self, core: usize, block: BlockAddr, now: u64) {
        if self.l1i[core].contains(block) {
            return;
        }
        let (latency, _level) = self.l2_path(block, AccessKind::Read, DataClass::Application, now);
        self.stats.l1i_prefetches[core] += 1;
        let evicted = self.l1i[core].fill(block, false, now + latency, FillOrigin::Prefetch);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block, now);
            }
        }
    }

    /// Snapshot of the current statistics.
    pub fn stats(&self) -> HierarchyStats {
        let mut stats = self.stats.clone();
        stats.l1d = self.l1d.iter().map(|c| *c.stats()).collect();
        stats.l1i = self.l1i.iter().map(|c| *c.stats()).collect();
        stats.l2 = *self.l2.stats();
        stats
    }

    /// Resets all statistics (contents are preserved), e.g. at the end of the
    /// warm-up window.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1d {
            c.reset_stats();
        }
        for c in &mut self.l1i {
            c.reset_stats();
        }
        self.l2.reset_stats();
        self.dram.reset_stats();
        self.stats = HierarchyStats::new(self.config.cores);
    }

    /// Access to the DRAM model (e.g. for PV-region queries).
    pub fn dram(&self) -> &MainMemory {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(2))
    }

    #[test]
    fn cold_read_goes_to_memory_then_hits_in_l1() {
        let mut h = hierarchy();
        let r = h.access(
            Requester::data(0),
            0x10_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        assert_eq!(r.level, HitLevel::Memory);
        assert!(
            r.latency >= 400,
            "cold miss must pay DRAM latency, got {}",
            r.latency
        );
        let r2 = h.access(
            Requester::data(0),
            0x10_0000,
            AccessKind::Read,
            DataClass::Application,
            1000,
        );
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, 2);
    }

    #[test]
    fn second_core_miss_hits_in_shared_l2() {
        let mut h = hierarchy();
        h.access(
            Requester::data(0),
            0x20_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        let r = h.access(
            Requester::data(1),
            0x20_0000,
            AccessKind::Read,
            DataClass::Application,
            1000,
        );
        assert_eq!(r.level, HitLevel::L2);
        assert!(r.latency < 100, "L2 hit should be cheap, got {}", r.latency);
    }

    #[test]
    fn pv_proxy_requests_bypass_l1_and_are_classified_predictor() {
        let mut h = hierarchy();
        let pv_addr = h.dram().pv_regions().core_base(0).raw();
        let r = h.access(
            Requester::pv_proxy(0),
            pv_addr,
            AccessKind::Read,
            DataClass::Predictor,
            0,
        );
        assert_eq!(r.level, HitLevel::Memory);
        let stats = h.stats();
        assert_eq!(stats.l2_requests.predictor, 1);
        assert_eq!(stats.l2_misses.predictor, 1);
        assert_eq!(stats.l1d_total().reads, 0, "PVProxy must not touch the L1");
        // Second access: the PHT block now lives in the L2.
        let r2 = h.access(
            Requester::pv_proxy(0),
            pv_addr,
            AccessKind::Read,
            DataClass::Predictor,
            1000,
        );
        assert_eq!(r2.level, HitLevel::L2);
    }

    #[test]
    fn prefetch_installs_into_l1_and_counts_coverage_on_use() {
        let mut h = hierarchy();
        let block = BlockAddr::new(0x3000);
        let pf = h.prefetch_into_l1d(0, block, 0);
        assert!(pf.issued);
        assert!(pf.ready_at >= 400);
        // Demand access long after the prefetch completed: full L1 hit.
        let r = h.access(
            Requester::data(0),
            block.base_address().raw(),
            AccessKind::Read,
            DataClass::Application,
            10_000,
        );
        assert_eq!(r.level, HitLevel::L1);
        assert!(r.first_use_of_prefetch);
        assert!(!r.late_prefetch);
    }

    #[test]
    fn late_prefetch_pays_partial_latency() {
        let mut h = hierarchy();
        let block = BlockAddr::new(0x4000);
        let pf = h.prefetch_into_l1d(0, block, 0);
        assert!(pf.issued);
        // Demand access 10 cycles later: prefetch still in flight.
        let r = h.access(
            Requester::data(0),
            block.base_address().raw(),
            AccessKind::Read,
            DataClass::Application,
            10,
        );
        assert!(r.late_prefetch);
        assert!(
            r.latency < pf.ready_at,
            "late prefetch should still save time"
        );
        assert!(
            r.latency >= pf.ready_at - 10 - 1,
            "residual latency should be close to remaining time"
        );
    }

    #[test]
    fn duplicate_prefetch_is_dropped() {
        let mut h = hierarchy();
        let block = BlockAddr::new(0x5000);
        assert!(h.prefetch_into_l1d(0, block, 0).issued);
        assert!(!h.prefetch_into_l1d(0, block, 1).issued);
        let stats = h.stats();
        assert_eq!(stats.l1d_prefetches[0], 1);
    }

    #[test]
    fn writes_produce_writebacks_eventually() {
        let mut h = hierarchy();
        // Write a block, then stream enough conflicting blocks through the
        // same L1 set to force the dirty line out.
        let l1_sets = h.config().l1d.sets() as u64;
        let base_block = 7u64;
        h.access(
            Requester::data(0),
            BlockAddr::new(base_block).base_address().raw(),
            AccessKind::Write,
            DataClass::Application,
            0,
        );
        for i in 1..=4u64 {
            let conflicting = BlockAddr::new(base_block + i * l1_sets);
            h.access(
                Requester::data(0),
                conflicting.base_address().raw(),
                AccessKind::Read,
                DataClass::Application,
                i * 1000,
            );
        }
        let stats = h.stats();
        assert!(
            stats.l1d[0].writebacks >= 1,
            "dirty line should have been written back"
        );
        assert!(stats.l2.writes >= 1, "write-back must arrive at the L2");
    }

    #[test]
    fn instruction_misses_trigger_next_line_prefetch() {
        let mut h = hierarchy();
        h.access(
            Requester::instruction(0),
            0x100_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        let stats = h.stats();
        assert_eq!(stats.l1i_prefetches[0], 1);
        // The next sequential block should now be resident (L2 or L1I); a
        // fetch of it must not go to memory.
        let r = h.access(
            Requester::instruction(0),
            0x100_0000 + 64,
            AccessKind::Read,
            DataClass::Application,
            10_000,
        );
        assert_ne!(r.level, HitLevel::Memory);
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut h = hierarchy();
        h.access(
            Requester::data(0),
            0x9000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        h.reset_stats();
        let stats = h.stats();
        assert_eq!(stats.l1d_total().reads, 0);
        // Contents preserved: the block still hits in L1.
        let r = h.access(
            Requester::data(0),
            0x9000,
            AccessKind::Read,
            DataClass::Application,
            10_000,
        );
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn eviction_notifications_are_reported_for_data_accesses() {
        let mut h = hierarchy();
        let l1_sets = h.config().l1d.sets() as u64;
        let ways = h.config().l1d.ways as u64;
        // Fill one L1 set beyond capacity and check that an eviction shows up.
        let mut evictions_seen = 0;
        for i in 0..=ways {
            let block = BlockAddr::new(3 + i * l1_sets);
            let r = h.access(
                Requester::data(0),
                block.base_address().raw(),
                AccessKind::Read,
                DataClass::Application,
                i * 1000,
            );
            evictions_seen += r.l1_evictions.len();
        }
        assert!(evictions_seen >= 1, "overflowing an L1 set must evict");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut h = hierarchy();
        h.access(
            Requester::data(5),
            0,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
    }
}
