//! The multi-core memory hierarchy: private L1 I/D caches per core, a shared
//! L2, and main memory, plus the hook the PVProxy uses to inject requests at
//! the backside of the L1.
//!
//! The hierarchy is the single point through which all memory traffic flows,
//! so it owns the traffic accounting the paper's evaluation reports:
//! L2 requests, L2 misses, L2 write-backs and off-chip traffic, each split
//! into application and predictor data.
//!
//! Under [`ContentionModel::Queued`] the shared resources are also *timed*:
//! L2 tag-pipeline banks have a per-bank occupancy (requests to the same
//! bank serialize), a full MSHR file stalls the requester until an entry
//! drains instead of being a free counter, and the DRAM model queues
//! requests behind finite channel buffers, banks and the data bus. Every
//! wait is reported in the response's `queue_delay` and accumulated into
//! per-class delay statistics, so predictor traffic visibly competes with
//! demand traffic. Under [`ContentionModel::Ideal`] all of this is off and
//! the hierarchy reproduces the original fixed-latency timing bit for bit.

use crate::accuracy::AccuracyWindow;
use crate::address::{Address, BlockAddr};
use crate::cache::{AccessKind, AccessOutcome, Cache, FillOrigin, HitLevel};
use crate::config::{ContentionModel, HierarchyConfig};
use crate::memory::MainMemory;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::NextLinePrefetcher;
use crate::stats::HierarchyStats;

/// What kind of agent issued a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequesterKind {
    /// A core's load/store stream through its L1 data cache.
    Data,
    /// A core's instruction-fetch stream through its L1 instruction cache.
    Instruction,
    /// The per-core PVProxy, injecting requests directly at the L2.
    PvProxy,
    /// A data prefetch on behalf of a core (SMS stream).
    DataPrefetch,
}

/// A request source: which core and which agent on that core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Requester {
    /// Core index.
    pub core: usize,
    /// Agent kind.
    pub kind: RequesterKind,
}

impl Requester {
    /// A core's data-access stream.
    pub fn data(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::Data,
        }
    }

    /// A core's instruction-fetch stream.
    pub fn instruction(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::Instruction,
        }
    }

    /// A core's PVProxy.
    pub fn pv_proxy(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::PvProxy,
        }
    }

    /// A data prefetch issued on behalf of a core.
    pub fn prefetch(core: usize) -> Self {
        Requester {
            core,
            kind: RequesterKind::DataPrefetch,
        }
    }
}

/// Classification of the data moved by a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Ordinary application data.
    Application,
    /// Virtualized predictor metadata (PVTable contents).
    Predictor,
}

impl DataClass {
    /// Whether this is predictor data.
    pub fn is_predictor(self) -> bool {
        matches!(self, DataClass::Predictor)
    }

    /// Dense index (`Application = 0`, `Predictor = 1`), used to key
    /// per-class state such as the prefetch-accuracy windows.
    pub fn index(self) -> usize {
        match self {
            DataClass::Application => 0,
            DataClass::Predictor => 1,
        }
    }
}

/// Caller-owned scratch buffer for L1-eviction reports.
///
/// The hot path used to heap-allocate a `Vec<BlockAddr>` inside every
/// [`AccessResponse`] / [`PrefetchResponse`]; the buffer replaces that with
/// a fixed-capacity inline array the caller threads through
/// [`MemoryHierarchy::access_with_evictions`] and
/// [`MemoryHierarchy::prefetch_into_l1d`] — the same reuse discipline as
/// the simulator's prefetch-action scratch. The hierarchy clears it on
/// entry and pushes at most one victim per access (a single L1 fill evicts
/// at most one line), so the whole response path is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionBuffer {
    len: u8,
    blocks: [BlockAddr; Self::CAPACITY],
}

impl Default for EvictionBuffer {
    fn default() -> Self {
        EvictionBuffer {
            len: 0,
            blocks: [BlockAddr::new(0); Self::CAPACITY],
        }
    }
}

impl EvictionBuffer {
    /// Inline capacity. A demand access or prefetch fills at most one L1
    /// line and therefore evicts at most one; the spare slot keeps the
    /// invariant an assert instead of silent truncation if the fill path
    /// ever grows a second victim source.
    pub const CAPACITY: usize = 2;

    /// Empties the buffer (also done by the hierarchy on entry).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The evicted blocks reported by the last call, in eviction order.
    pub fn as_slice(&self) -> &[BlockAddr] {
        &self.blocks[..self.len as usize]
    }

    /// Whether the last call evicted nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of evictions reported by the last call.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn push(&mut self, block: BlockAddr) {
        let slot = self.len as usize;
        assert!(
            slot < Self::CAPACITY,
            "one access cannot evict more than {} L1 lines",
            Self::CAPACITY
        );
        self.blocks[slot] = block;
        self.len += 1;
    }
}

/// Result of a demand access through the hierarchy.
///
/// The response is plain `Copy` data; evicted blocks are reported through
/// the caller-owned [`EvictionBuffer`] instead of an embedded `Vec`, so
/// returning a response never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResponse {
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Which level serviced the request.
    pub level: HitLevel,
    /// The access was the first demand use of a prefetched L1 line.
    pub first_use_of_prefetch: bool,
    /// The access hit a prefetched line whose fill was still in flight.
    pub late_prefetch: bool,
    /// Cycles of `latency` spent waiting for contended shared resources
    /// (L2 ports, MSHR slots, DRAM queues). Always zero under
    /// [`ContentionModel::Ideal`].
    pub queue_delay: u64,
}

/// Result of a prefetch request into an L1 data cache. Like
/// [`AccessResponse`], evictions are reported through the caller-owned
/// [`EvictionBuffer`], keeping the response `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchResponse {
    /// False when the block was already resident (prefetch dropped).
    pub issued: bool,
    /// Cycle at which the prefetched data becomes usable.
    pub ready_at: u64,
}

/// Result of one shared-L2 path traversal (internal).
#[derive(Debug, Clone, Copy)]
struct L2Path {
    latency: u64,
    level: HitLevel,
    queue_delay: u64,
}

/// The simulated memory system.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1d: Vec<Cache>,
    l1i: Vec<Cache>,
    l1d_mshr: Vec<MshrFile>,
    l1i_mshr: Vec<MshrFile>,
    l2: Cache,
    l2_mshr: MshrFile,
    /// Cycle each L2 tag-pipeline bank becomes free (Queued mode only).
    l2_ports: Vec<u64>,
    dram: MainMemory,
    /// Cached bounds of the reserved PV address range (`[pv_start,
    /// pv_end)`), hoisted from the DRAM model's region config so the
    /// per-request classification is a single inline bound-compare.
    pv_start: u64,
    pv_end: u64,
    iprefetch: Vec<NextLinePrefetcher>,
    /// Per-(core, data-class) windows over L1D prefetch outcomes
    /// (indexed `[core][DataClass::index()]`).
    accuracy: Vec<[AccuracyWindow; 2]>,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        let cores = config.cores;
        let l1d = (0..cores).map(|c| Cache::new(format!("L1D.{c}"), config.l1d)).collect();
        let l1i = (0..cores).map(|c| Cache::new(format!("L1I.{c}"), config.l1i)).collect();
        let l1d_mshr = (0..cores).map(|_| MshrFile::new(config.l1d.mshr_entries)).collect();
        let l1i_mshr = (0..cores).map(|_| MshrFile::new(config.l1i.mshr_entries)).collect();
        let l2 = Cache::new("L2", config.l2);
        let l2_mshr = MshrFile::new(config.l2.mshr_entries);
        let l2_ports = vec![0; config.l2.banks.max(1)];
        let dram = MainMemory::new(config.dram, config.pv_regions, config.contention);
        let pv_start = config.pv_regions.base.raw();
        let pv_end = pv_start + config.pv_regions.total_bytes();
        MemoryHierarchy {
            config,
            l1d,
            l1i,
            l1d_mshr,
            l1i_mshr,
            l2,
            l2_mshr,
            l2_ports,
            dram,
            pv_start,
            pv_end,
            iprefetch: (0..cores).map(|_| NextLinePrefetcher::new()).collect(),
            accuracy: (0..cores)
                .map(|_| {
                    [
                        AccuracyWindow::new(config.accuracy_epoch),
                        AccuracyWindow::new(config.accuracy_epoch),
                    ]
                })
                .collect(),
            stats: HierarchyStats::new(cores),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.config.cores
    }

    /// Invariant: `core < self.config.cores`. Every public entry point is
    /// keyed by a core index that the simulator derived from this same
    /// configuration, and any violation panics immediately afterwards on
    /// the first indexed access (`self.l1d[core]`), so a release-mode
    /// bounds check here would only duplicate work on the hottest path —
    /// debug builds keep the descriptive message.
    #[inline]
    fn assert_core(&self, core: usize) {
        debug_assert!(
            core < self.config.cores,
            "core {core} out of range ({} cores)",
            self.config.cores
        );
    }

    /// Whether `block` lies inside the reserved PV address range — the
    /// hoisted form of [`MainMemory::is_predictor_address`]: one inline
    /// bound-compare against cached bounds, no indirection through the
    /// DRAM model's region config. This is computed once per request on
    /// the L2 path and threaded through the miss/writeback/eviction chain.
    #[inline]
    fn in_pv_region(&self, block: BlockAddr) -> bool {
        let addr = block.base_address().raw();
        addr >= self.pv_start && addr < self.pv_end
    }

    /// Classification of `block` by the reserved PV regions. Exposed so the
    /// perfbench `hierarchy/classify_hoisted` micro can time the hoisted
    /// bound-compare against the un-hoisted region lookup it replaced.
    #[inline]
    pub fn classify(&self, block: BlockAddr) -> DataClass {
        if self.in_pv_region(block) {
            DataClass::Predictor
        } else {
            DataClass::Application
        }
    }

    /// Whether `block` is resident in `core`'s L1 data cache.
    pub fn l1d_contains(&self, core: usize, block: BlockAddr) -> bool {
        self.assert_core(core);
        self.l1d[core].contains(block)
    }

    /// Whether `block` is resident in the shared L2.
    pub fn l2_contains(&self, block: BlockAddr) -> bool {
        self.l2.contains(block)
    }

    /// Performs a demand access on behalf of `requester`.
    ///
    /// * `Data` / `Instruction` requesters go through the core's L1 and, on a
    ///   miss, through the shared L2 and memory; the filled line is installed
    ///   in the L1 (write-allocate).
    /// * `PvProxy` requesters bypass the L1 and are injected at the L2, as in
    ///   the paper's design ("normal memory requests, injected on the
    ///   backside of the L1").
    ///
    /// Debug builds panic if `requester.core` is out of range (release
    /// builds panic on the first indexed access instead).
    ///
    /// Callers that need the evicted blocks (the simulator's engine feed)
    /// use [`Self::access_with_evictions`]; this convenience form discards
    /// them through a throwaway stack scratch, which is free.
    pub fn access(
        &mut self,
        requester: Requester,
        addr: u64,
        kind: AccessKind,
        class: DataClass,
        now: u64,
    ) -> AccessResponse {
        let mut scratch = EvictionBuffer::default();
        self.access_with_evictions(requester, addr, kind, class, now, &mut scratch)
    }

    /// [`Self::access`] with L1 eviction reporting: `evictions` is cleared
    /// and receives the blocks displaced from the requesting core's L1 data
    /// cache (used by SMS to close spatial generations). The buffer is
    /// caller-owned scratch so the response path never allocates.
    pub fn access_with_evictions(
        &mut self,
        requester: Requester,
        addr: u64,
        kind: AccessKind,
        class: DataClass,
        now: u64,
        evictions: &mut EvictionBuffer,
    ) -> AccessResponse {
        evictions.clear();
        self.assert_core(requester.core);
        let block = Address::new(addr).block();
        match requester.kind {
            RequesterKind::Data => {
                self.l1_path(requester.core, block, kind, class, now, false, evictions)
            }
            RequesterKind::Instruction => {
                self.l1_path(requester.core, block, kind, class, now, true, evictions)
            }
            RequesterKind::PvProxy | RequesterKind::DataPrefetch => {
                let below = self.l2_path(block, kind, class, now);
                AccessResponse {
                    latency: below.latency,
                    level: below.level,
                    first_use_of_prefetch: false,
                    late_prefetch: false,
                    queue_delay: below.queue_delay,
                }
            }
        }
    }

    /// The core data-access path, shorn of requester classification: a
    /// demand access through `core`'s L1 data cache with the L1-hit case
    /// handled first. Equivalent to
    /// `access_with_evictions(Requester::data(core), addr, kind,
    /// DataClass::Application, now, evictions)` — the simulator's
    /// per-record hot path calls this so the overwhelmingly common L1 hit
    /// does a single tag probe and returns without touching the requester
    /// `match`, the eviction buffer contents, or any classification work.
    #[inline]
    pub fn access_data(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
        now: u64,
        evictions: &mut EvictionBuffer,
    ) -> AccessResponse {
        evictions.clear();
        self.assert_core(core);
        let block = Address::new(addr).block();
        let outcome = self.l1d[core].access(block, kind, now);
        if outcome.hit {
            if outcome.first_use_of_prefetch {
                self.record_prefetch_outcome(core, block, true);
            }
            return AccessResponse {
                latency: outcome.latency,
                level: HitLevel::L1,
                first_use_of_prefetch: outcome.first_use_of_prefetch,
                late_prefetch: outcome.late_prefetch,
                queue_delay: 0,
            };
        }
        self.miss_path(
            core,
            block,
            kind,
            DataClass::Application,
            now,
            false,
            outcome,
            evictions,
        )
    }

    /// Demand path through a private L1 (data or instruction).
    #[allow(clippy::too_many_arguments)]
    fn l1_path(
        &mut self,
        core: usize,
        block: BlockAddr,
        kind: AccessKind,
        class: DataClass,
        now: u64,
        instruction: bool,
        evictions: &mut EvictionBuffer,
    ) -> AccessResponse {
        let outcome = if instruction {
            self.l1i[core].access(block, kind, now)
        } else {
            self.l1d[core].access(block, kind, now)
        };
        if outcome.hit {
            if !instruction && outcome.first_use_of_prefetch {
                self.record_prefetch_outcome(core, block, true);
            }
            return AccessResponse {
                latency: outcome.latency,
                level: HitLevel::L1,
                first_use_of_prefetch: outcome.first_use_of_prefetch,
                late_prefetch: outcome.late_prefetch,
                queue_delay: 0,
            };
        }
        self.miss_path(
            core,
            block,
            kind,
            class,
            now,
            instruction,
            outcome,
            evictions,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn miss_path(
        &mut self,
        core: usize,
        block: BlockAddr,
        kind: AccessKind,
        class: DataClass,
        now: u64,
        instruction: bool,
        outcome: AccessOutcome,
        evictions: &mut EvictionBuffer,
    ) -> AccessResponse {
        // L1 miss: merge into an outstanding fill when possible, otherwise go
        // to the L2 (and possibly memory).
        let below_start = now + outcome.latency;
        let outstanding_ready = {
            let mshr = if instruction {
                &mut self.l1i_mshr[core]
            } else {
                &mut self.l1d_mshr[core]
            };
            mshr.retire(now);
            mshr.lookup(block).map(|entry| entry.ready_at)
        };
        let (below_latency, level, queue_delay) = if let Some(ready) = outstanding_ready {
            let mshr = if instruction {
                &mut self.l1i_mshr[core]
            } else {
                &mut self.l1d_mshr[core]
            };
            let _ = mshr.register(block, now, ready);
            (ready.saturating_sub(below_start), HitLevel::L2, 0)
        } else {
            // Under queued contention a full L1 MSHR file exerts real
            // backpressure: the miss waits (it is never dropped) until the
            // earliest outstanding fill drains a slot, then issues below.
            let mshr_stall = if self.config.contention == ContentionModel::Queued {
                let mshr = if instruction {
                    &mut self.l1i_mshr[core]
                } else {
                    &mut self.l1d_mshr[core]
                };
                mshr.wait_for_slot(below_start)
            } else {
                0
            };
            let issue_at = below_start + mshr_stall;
            self.stats.mshr_stall_delay.record(class.is_predictor(), mshr_stall);
            let below = self.l2_path(block, AccessKind::Read, class, issue_at);
            let ready = issue_at + below.latency;
            let mshr = if instruction {
                &mut self.l1i_mshr[core]
            } else {
                &mut self.l1d_mshr[core]
            };
            if let MshrOutcome::Full = mshr.register(block, now, ready) {
                // Ideal mode only: the structural stall is not timed; with
                // the paper's 16-entry MSHRs this is rare and the access
                // simply pays the computed latency.
            }
            (
                mshr_stall + below.latency,
                below.level,
                mshr_stall + below.queue_delay,
            )
        };
        let total_latency = outcome.latency + below_latency;
        let ready_at = now + total_latency;
        let dirty = kind == AccessKind::Write;
        let evicted = if instruction {
            self.l1i[core].fill(block, dirty, ready_at, FillOrigin::Demand)
        } else {
            self.l1d[core].fill(block, dirty, ready_at, FillOrigin::Demand)
        };
        if let Some(ev) = evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block, now);
            }
            if !instruction {
                if ev.prefetched_unused {
                    self.record_prefetch_outcome(core, ev.block, false);
                }
                evictions.push(ev.block);
            }
        }
        // Baseline next-line instruction prefetcher.
        if instruction && self.config.next_line_iprefetch {
            if let Some(target) = self.iprefetch[core].on_instruction_miss(block) {
                self.prefetch_into_l1i(core, target, now);
            }
        }
        AccessResponse {
            latency: total_latency,
            level,
            first_use_of_prefetch: false,
            late_prefetch: false,
            queue_delay,
        }
    }

    /// L2 tag-pipeline port arbitration: requests to the same bank serialize
    /// behind earlier ones (Queued mode only). Returns the cycle the request
    /// may start, having occupied the bank and recorded the wait in
    /// `l2_port_delay`. Under `Ideal` the port is free and `now` is returned
    /// unchanged.
    fn acquire_l2_port(&mut self, block: BlockAddr, predictor: bool, now: u64) -> u64 {
        if self.config.contention != ContentionModel::Queued {
            return now;
        }
        let bank = (block.raw() % self.l2_ports.len() as u64) as usize;
        let port_free = self.l2_ports[bank].max(now);
        self.l2_ports[bank] = port_free + self.config.l2.port_occupancy;
        self.stats.l2_port_delay.record(predictor, port_free - now);
        port_free
    }

    /// Shared-L2 access path (used by L1 misses, prefetches and the PVProxy).
    fn l2_path(
        &mut self,
        block: BlockAddr,
        kind: AccessKind,
        class: DataClass,
        now: u64,
    ) -> L2Path {
        // One region bound-compare per request: `region` feeds the DRAM
        // traffic classification below (which splits strictly by address),
        // while the stats rows also honour the requester's claimed class.
        let region = self.in_pv_region(block);
        let predictor = class.is_predictor() || region;
        self.stats.l2_requests.record(predictor);
        let queued = self.config.contention == ContentionModel::Queued;
        let mut queue_delay = 0u64;
        let start = self.acquire_l2_port(block, predictor, now);
        queue_delay += start - now;
        let outcome = self.l2.access(block, kind, start);
        if outcome.hit {
            return L2Path {
                latency: (start - now) + self.config.l2.tag_latency + outcome.latency,
                level: HitLevel::L2,
                queue_delay,
            };
        }
        // L2 miss.
        self.stats.l2_misses.record(predictor);
        self.l2_mshr.retire(start);
        let below_start = start + outcome.latency;
        let dram_latency = if let Some(entry) = self.l2_mshr.lookup(block) {
            let in_flight_ready = entry.ready_at;
            // The registration outcome is authoritative: a secondary miss
            // must actually join the in-flight entry, or occupancy (and with
            // it Queued-mode backpressure) is silently under-counted.
            let ready = match self.l2_mshr.register(block, start, in_flight_ready) {
                MshrOutcome::Merged { ready_at } => ready_at,
                MshrOutcome::Allocated | MshrOutcome::Full => {
                    // A merge can only fail if the looked-up entry vanished
                    // (retired or displaced) between lookup and register.
                    // Count it instead of dropping it on the floor; the
                    // requester still waits for the fill it observed.
                    self.stats.l2_mshr_merge_failures += 1;
                    in_flight_ready
                }
            };
            ready.saturating_sub(below_start)
        } else {
            // Under queued contention a full L2 MSHR file delays the fill
            // until an entry drains; the request is never dropped.
            let mshr_stall = if queued {
                self.l2_mshr.wait_for_slot(below_start)
            } else {
                0
            };
            self.stats.mshr_stall_delay.record(predictor, mshr_stall);
            queue_delay += mshr_stall;
            let issue_at = below_start + mshr_stall;
            self.stats.dram_reads += 1;
            let response = self.dram.read_classified(block.base_address(), region, issue_at);
            queue_delay += response.queue_delay;
            let ready = issue_at + response.latency;
            let _ = self.l2_mshr.register(block, start, ready);
            (issue_at - below_start) + response.latency
        };
        let total = outcome.latency + dram_latency;
        let dirty = kind == AccessKind::Write;
        let evicted = self.l2.fill(block, dirty, start + total, FillOrigin::Demand);
        if let Some(ev) = evicted {
            if ev.dirty {
                let victim_predictor = self.in_pv_region(ev.block);
                self.stats.l2_writebacks.record(victim_predictor);
                self.stats.dram_writes += 1;
                self.dram.write_classified(
                    ev.block.base_address(),
                    victim_predictor,
                    start + total,
                );
            }
        }
        L2Path {
            latency: (start - now) + total,
            level: HitLevel::Memory,
            queue_delay,
        }
    }

    /// A dirty line leaving an L1 (or the PVCache) is written back into the
    /// L2. Write-backs allocate in the L2 without fetching from memory
    /// because the whole block is being overwritten.
    ///
    /// Under `Queued` contention the write-back competes for the same L2
    /// tag-pipeline bank ports as reads: it waits for its bank, occupies it,
    /// and the wait is recorded in `l2_port_delay` under the victim's data
    /// class. No requester blocks on the write-back itself, but the port
    /// occupancy delays subsequent same-bank requests — dirty victims are no
    /// longer free.
    fn writeback_to_l2(&mut self, block: BlockAddr, now: u64) {
        let predictor = self.in_pv_region(block);
        self.stats.l2_requests.record(predictor);
        let start = self.acquire_l2_port(block, predictor, now);
        if self.l2.mark_dirty(block) {
            // Count as a write hit for the L2's own statistics.
            let _ = self.l2.access(block, AccessKind::Write, start);
            return;
        }
        let _ = self.l2.access(block, AccessKind::Write, start);
        let evicted = self.l2.fill(
            block,
            true,
            start + self.config.l2.data_latency,
            FillOrigin::Demand,
        );
        if let Some(ev) = evicted {
            if ev.dirty {
                let victim_predictor = self.in_pv_region(ev.block);
                self.stats.l2_writebacks.record(victim_predictor);
                self.stats.dram_writes += 1;
                self.dram.write_classified(
                    ev.block.base_address(),
                    victim_predictor,
                    start + self.config.l2.data_latency,
                );
            }
        }
    }

    /// Write-back entry point for the PVProxy: a dirty PVCache victim is sent
    /// to the L2 exactly like an L1 write-back would be.
    pub fn writeback(&mut self, requester: Requester, addr: u64, now: u64) {
        self.assert_core(requester.core);
        self.writeback_to_l2(Address::new(addr).block(), now);
    }

    /// Prefetches `block` into `core`'s L1 data cache (SMS stream target).
    ///
    /// The prefetch travels through the L2 like a demand fill would, but the
    /// core does not wait for it; the returned `ready_at` is when the data
    /// becomes usable. `evictions` is cleared and receives the displaced
    /// block, if any (caller-owned scratch, exactly as in
    /// [`Self::access_with_evictions`]).
    pub fn prefetch_into_l1d(
        &mut self,
        core: usize,
        block: BlockAddr,
        now: u64,
        evictions: &mut EvictionBuffer,
    ) -> PrefetchResponse {
        evictions.clear();
        self.assert_core(core);
        if self.l1d[core].contains(block) {
            return PrefetchResponse {
                issued: false,
                ready_at: now,
            };
        }
        self.l1d_mshr[core].retire(now);
        if self.l1d_mshr[core].lookup(block).is_some() {
            // A demand miss or earlier prefetch is already fetching it.
            return PrefetchResponse {
                issued: false,
                ready_at: now,
            };
        }
        let below = self.l2_path(block, AccessKind::Read, DataClass::Application, now);
        let ready_at = now + below.latency;
        let _ = self.l1d_mshr[core].register(block, now, ready_at);
        self.stats.l1d_prefetches[core] += 1;
        let evicted = self.l1d[core].fill(block, false, ready_at, FillOrigin::Prefetch);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block, now);
            }
            if ev.prefetched_unused {
                self.record_prefetch_outcome(core, ev.block, false);
            }
            evictions.push(ev.block);
        }
        PrefetchResponse {
            issued: true,
            ready_at,
        }
    }

    /// Next-line instruction prefetch into the L1I (internal helper, but
    /// exposed for tests).
    fn prefetch_into_l1i(&mut self, core: usize, block: BlockAddr, now: u64) {
        if self.l1i[core].contains(block) {
            return;
        }
        let below = self.l2_path(block, AccessKind::Read, DataClass::Application, now);
        self.stats.l1i_prefetches[core] += 1;
        let evicted = self.l1i[core].fill(block, false, now + below.latency, FillOrigin::Prefetch);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block, now);
            }
        }
    }

    fn record_prefetch_outcome(&mut self, core: usize, block: BlockAddr, used: bool) {
        // `in_pv_region as usize` is exactly `DataClass::index()` of the
        // block's classification (Application = 0, Predictor = 1).
        let class = self.in_pv_region(block) as usize;
        let window = &mut self.accuracy[core][class];
        if used {
            window.record_used();
        } else {
            window.record_useless();
        }
    }

    /// The prefetch-accuracy window of `(core, class)` — windowed used vs.
    /// evicted-unused outcomes of prefetches into `core`'s L1D.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (debug builds fail the descriptive
    /// assertion first; release builds fail the indexed access).
    pub fn prefetch_accuracy(&self, core: usize, class: DataClass) -> &AccuracyWindow {
        self.assert_core(core);
        &self.accuracy[core][class.index()]
    }

    /// Mutable access to a prefetch-accuracy window, used by feedback
    /// consumers to drain completed epochs
    /// ([`AccuracyWindow::pop_completed`]).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (debug builds fail the descriptive
    /// assertion first; release builds fail the indexed access).
    pub fn prefetch_accuracy_mut(&mut self, core: usize, class: DataClass) -> &mut AccuracyWindow {
        self.assert_core(core);
        &mut self.accuracy[core][class.index()]
    }

    /// Snapshot of the current statistics.
    pub fn stats(&self) -> HierarchyStats {
        let mut stats = self.stats.clone();
        stats.l1d = self.l1d.iter().map(|c| *c.stats()).collect();
        stats.l1i = self.l1i.iter().map(|c| *c.stats()).collect();
        stats.next_line = self
            .iprefetch
            .iter()
            .map(|pf| crate::stats::NextLineStats {
                issued: pf.issued(),
                suppressed: pf.suppressed(),
            })
            .collect();
        stats.l2 = *self.l2.stats();
        stats.dram_queue_delay = self.dram.queue_delay();
        stats.dram_read_traffic = self.dram.reads();
        stats.dram_busy_cycles = self.dram.busy_cycles();
        stats
    }

    /// Resets all statistics (contents are preserved), e.g. at the end of the
    /// warm-up window.
    ///
    /// A stats reset marks a measurement-window boundary, where requester
    /// clocks restart from zero (`CoreModel::reset`). The queued-contention
    /// timing state (L2 port `busy_until`s, DRAM channel queues, MSHR
    /// files) is clocked by those requester timestamps, so it is rebased to
    /// zero too — otherwise the new window's first accesses would wait out
    /// absolute warm-up-era busy times as enormous phantom queue delays.
    /// Under `Ideal` contention none of this state is consulted and the
    /// MSHR files are left untouched, preserving the original semantics
    /// bit for bit.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1d {
            c.reset_stats();
        }
        for c in &mut self.l1i {
            c.reset_stats();
        }
        self.l2.reset_stats();
        self.dram.reset_stats();
        for pf in &mut self.iprefetch {
            pf.reset_stats();
        }
        for windows in &mut self.accuracy {
            for window in windows {
                window.reset();
            }
        }
        if self.config.contention == ContentionModel::Queued {
            for port in &mut self.l2_ports {
                *port = 0;
            }
            self.dram.reset_timing();
            for mshr in self.l1d_mshr.iter_mut().chain(self.l1i_mshr.iter_mut()) {
                mshr.clear();
            }
            self.l2_mshr.clear();
        }
        self.stats = HierarchyStats::new(self.config.cores);
    }

    /// Access to the DRAM model (e.g. for PV-region queries).
    pub fn dram(&self) -> &MainMemory {
        &self.dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_baseline(2))
    }

    #[test]
    fn cold_read_goes_to_memory_then_hits_in_l1() {
        let mut h = hierarchy();
        let r = h.access(
            Requester::data(0),
            0x10_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        assert_eq!(r.level, HitLevel::Memory);
        assert!(
            r.latency >= 400,
            "cold miss must pay DRAM latency, got {}",
            r.latency
        );
        let r2 = h.access(
            Requester::data(0),
            0x10_0000,
            AccessKind::Read,
            DataClass::Application,
            1000,
        );
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, 2);
    }

    #[test]
    fn second_core_miss_hits_in_shared_l2() {
        let mut h = hierarchy();
        h.access(
            Requester::data(0),
            0x20_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        let r = h.access(
            Requester::data(1),
            0x20_0000,
            AccessKind::Read,
            DataClass::Application,
            1000,
        );
        assert_eq!(r.level, HitLevel::L2);
        assert!(r.latency < 100, "L2 hit should be cheap, got {}", r.latency);
    }

    #[test]
    fn pv_proxy_requests_bypass_l1_and_are_classified_predictor() {
        let mut h = hierarchy();
        let pv_addr = h.dram().pv_regions().core_base(0).raw();
        let r = h.access(
            Requester::pv_proxy(0),
            pv_addr,
            AccessKind::Read,
            DataClass::Predictor,
            0,
        );
        assert_eq!(r.level, HitLevel::Memory);
        let stats = h.stats();
        assert_eq!(stats.l2_requests.predictor, 1);
        assert_eq!(stats.l2_misses.predictor, 1);
        assert_eq!(stats.l1d_total().reads, 0, "PVProxy must not touch the L1");
        // Second access: the PHT block now lives in the L2.
        let r2 = h.access(
            Requester::pv_proxy(0),
            pv_addr,
            AccessKind::Read,
            DataClass::Predictor,
            1000,
        );
        assert_eq!(r2.level, HitLevel::L2);
    }

    #[test]
    fn prefetch_installs_into_l1_and_counts_coverage_on_use() {
        let mut h = hierarchy();
        let block = BlockAddr::new(0x3000);
        let pf = h.prefetch_into_l1d(0, block, 0, &mut EvictionBuffer::default());
        assert!(pf.issued);
        assert!(pf.ready_at >= 400);
        // Demand access long after the prefetch completed: full L1 hit.
        let r = h.access(
            Requester::data(0),
            block.base_address().raw(),
            AccessKind::Read,
            DataClass::Application,
            10_000,
        );
        assert_eq!(r.level, HitLevel::L1);
        assert!(r.first_use_of_prefetch);
        assert!(!r.late_prefetch);
    }

    #[test]
    fn late_prefetch_pays_partial_latency() {
        let mut h = hierarchy();
        let block = BlockAddr::new(0x4000);
        let pf = h.prefetch_into_l1d(0, block, 0, &mut EvictionBuffer::default());
        assert!(pf.issued);
        // Demand access 10 cycles later: prefetch still in flight.
        let r = h.access(
            Requester::data(0),
            block.base_address().raw(),
            AccessKind::Read,
            DataClass::Application,
            10,
        );
        assert!(r.late_prefetch);
        assert!(
            r.latency < pf.ready_at,
            "late prefetch should still save time"
        );
        assert!(
            r.latency >= pf.ready_at - 10 - 1,
            "residual latency should be close to remaining time"
        );
    }

    #[test]
    fn duplicate_prefetch_is_dropped() {
        let mut h = hierarchy();
        let block = BlockAddr::new(0x5000);
        let mut scratch = EvictionBuffer::default();
        assert!(h.prefetch_into_l1d(0, block, 0, &mut scratch).issued);
        assert!(!h.prefetch_into_l1d(0, block, 1, &mut scratch).issued);
        let stats = h.stats();
        assert_eq!(stats.l1d_prefetches[0], 1);
    }

    #[test]
    fn writes_produce_writebacks_eventually() {
        let mut h = hierarchy();
        // Write a block, then stream enough conflicting blocks through the
        // same L1 set to force the dirty line out.
        let l1_sets = h.config().l1d.sets() as u64;
        let base_block = 7u64;
        h.access(
            Requester::data(0),
            BlockAddr::new(base_block).base_address().raw(),
            AccessKind::Write,
            DataClass::Application,
            0,
        );
        for i in 1..=4u64 {
            let conflicting = BlockAddr::new(base_block + i * l1_sets);
            h.access(
                Requester::data(0),
                conflicting.base_address().raw(),
                AccessKind::Read,
                DataClass::Application,
                i * 1000,
            );
        }
        let stats = h.stats();
        assert!(
            stats.l1d[0].writebacks >= 1,
            "dirty line should have been written back"
        );
        assert!(stats.l2.writes >= 1, "write-back must arrive at the L2");
    }

    #[test]
    fn instruction_misses_trigger_next_line_prefetch() {
        let mut h = hierarchy();
        h.access(
            Requester::instruction(0),
            0x100_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        let stats = h.stats();
        assert_eq!(stats.l1i_prefetches[0], 1);
        // The next sequential block should now be resident (L2 or L1I); a
        // fetch of it must not go to memory.
        let r = h.access(
            Requester::instruction(0),
            0x100_0000 + 64,
            AccessKind::Read,
            DataClass::Application,
            10_000,
        );
        assert_ne!(r.level, HitLevel::Memory);
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut h = hierarchy();
        h.access(
            Requester::data(0),
            0x9000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        h.reset_stats();
        let stats = h.stats();
        assert_eq!(stats.l1d_total().reads, 0);
        // Contents preserved: the block still hits in L1.
        let r = h.access(
            Requester::data(0),
            0x9000,
            AccessKind::Read,
            DataClass::Application,
            10_000,
        );
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn eviction_notifications_are_reported_for_data_accesses() {
        let mut h = hierarchy();
        let l1_sets = h.config().l1d.sets() as u64;
        let ways = h.config().l1d.ways as u64;
        // Fill one L1 set beyond capacity and check that an eviction shows up.
        let mut evictions_seen = 0;
        let mut evictions = EvictionBuffer::default();
        for i in 0..=ways {
            let block = BlockAddr::new(3 + i * l1_sets);
            let _ = h.access_with_evictions(
                Requester::data(0),
                block.base_address().raw(),
                AccessKind::Read,
                DataClass::Application,
                i * 1000,
                &mut evictions,
            );
            evictions_seen += evictions.len();
        }
        assert!(evictions_seen >= 1, "overflowing an L1 set must evict");
    }

    /// The classification-free data path must behave exactly like the
    /// general entry point, hit and miss alike.
    #[test]
    fn access_data_fast_path_matches_general_access() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        let mut ev_a = EvictionBuffer::default();
        let mut ev_b = EvictionBuffer::default();
        let l1_sets = a.config().l1d.sets() as u64;
        for i in 0..64u64 {
            // A mix of fresh misses, re-hits and set-conflict evictions.
            let block = BlockAddr::new((i % 7) * l1_sets + (i % 3));
            let kind = if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let ra = a.access_with_evictions(
                Requester::data(0),
                block.base_address().raw(),
                kind,
                DataClass::Application,
                i * 100,
                &mut ev_a,
            );
            let rb = b.access_data(0, block.base_address().raw(), kind, i * 100, &mut ev_b);
            assert_eq!(ra, rb, "response diverged at access {i}");
            assert_eq!(
                ev_a.as_slice(),
                ev_b.as_slice(),
                "evictions diverged at access {i}"
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    fn queued_hierarchy(l2_mshr_entries: usize) -> MemoryHierarchy {
        let mut config =
            HierarchyConfig::paper_baseline(2).with_contention(ContentionModel::Queued);
        config.l2.mshr_entries = l2_mshr_entries;
        MemoryHierarchy::new(config)
    }

    #[test]
    fn ideal_accesses_report_zero_queue_delay() {
        let mut h = hierarchy();
        for i in 0..32u64 {
            let r = h.access(
                Requester::data(0),
                i * 64,
                AccessKind::Read,
                DataClass::Application,
                0,
            );
            assert_eq!(r.queue_delay, 0);
        }
        let stats = h.stats();
        assert_eq!(stats.total_queue_delay().total_cycles(), 0);
        assert_eq!(stats.dram_busy_cycles, 0);
    }

    #[test]
    fn queued_l2_ports_serialize_same_bank_requests() {
        let mut h = queued_hierarchy(64);
        let banks = h.config().l2.banks as u64;
        // Two PVProxy reads mapping to the same L2 bank at the same cycle:
        // the second must wait for the first's port occupancy.
        h.access(
            Requester::pv_proxy(0),
            0x10_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        let r = h.access(
            Requester::pv_proxy(0),
            0x10_0000 + banks * 64,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        assert!(
            r.queue_delay >= h.config().l2.port_occupancy,
            "same-bank request must wait for the port, got {}",
            r.queue_delay
        );
        assert!(h.stats().l2_port_delay.total_cycles() > 0);
    }

    #[test]
    fn queued_full_l2_mshr_delays_but_never_drops() {
        let mut h = queued_hierarchy(2);
        // Three distinct-block misses at cycle 0 against a 2-entry L2 MSHR
        // file: the third must wait for a drain, and all three must still
        // reach DRAM exactly once each.
        let mut latencies = Vec::new();
        for i in 0..3u64 {
            let r = h.access(
                Requester::pv_proxy(0),
                0x40_0000 + i * 64,
                AccessKind::Read,
                DataClass::Application,
                0,
            );
            assert_eq!(r.level, HitLevel::Memory, "request {i} must be serviced");
            latencies.push(r.latency);
        }
        let stats = h.stats();
        assert_eq!(stats.dram_reads, 3, "delayed requests must not be dropped");
        assert!(
            stats.mshr_stall_delay.total_cycles() > 0,
            "the third miss must have waited for an MSHR slot"
        );
        assert!(
            latencies[2] > latencies[0],
            "the stalled miss must observe a longer latency ({} vs {})",
            latencies[2],
            latencies[0]
        );
    }

    #[test]
    fn queued_mshr_merges_do_not_double_count_dram_traffic() {
        let mut h = queued_hierarchy(64);
        // Two cores miss on the same block while the first fill is still in
        // flight: the second merges and no second DRAM read is issued.
        h.access(
            Requester::data(0),
            0x80_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        let r = h.access(
            Requester::data(1),
            0x80_0000,
            AccessKind::Read,
            DataClass::Application,
            5,
        );
        assert_eq!(r.level, HitLevel::L2, "second miss merges into the fill");
        let stats = h.stats();
        assert_eq!(stats.dram_reads, 1, "a merged miss must not re-read DRAM");
        assert_eq!(stats.l2_misses.total(), 1);
    }

    #[test]
    fn stats_reset_rebases_queued_timing_to_the_new_window() {
        let mut h = queued_hierarchy(64);
        // Drive the shared resources deep into the warm-up timeline.
        for i in 0..256u64 {
            h.access(
                Requester::data(0),
                0x100_0000 + i * 64,
                AccessKind::Read,
                DataClass::Application,
                i * 400,
            );
        }
        h.reset_stats();
        // Measurement window: requester clocks restart at zero. A cold miss
        // must pay a normal unloaded latency, not wait out absolute
        // warm-up-era busy times.
        let r = h.access(
            Requester::data(0),
            0x900_0000,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        assert_eq!(r.level, HitLevel::Memory);
        assert!(
            r.latency < 1_000,
            "first post-reset miss must not inherit warm-up queue state, got {}",
            r.latency
        );
        assert_eq!(r.queue_delay, 0);
    }

    #[test]
    fn queued_dram_queueing_is_observable_under_burst() {
        let mut h = queued_hierarchy(64);
        let mut total_delay = 0;
        for i in 0..128u64 {
            let r = h.access(
                Requester::pv_proxy(0),
                0x200_0000 + i * 64,
                AccessKind::Read,
                DataClass::Application,
                0,
            );
            total_delay += r.queue_delay;
        }
        assert!(
            total_delay > 0,
            "a 128-block burst must queue somewhere in the shared hierarchy"
        );
        let stats = h.stats();
        assert!(stats.dram_queue_delay.total_cycles() > 0);
        assert!(stats.dram_busy_cycles > 0);
    }

    // Core-id bounds are a debug-only assertion; release builds rely on the
    // slice indexing panic instead.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut h = hierarchy();
        h.access(
            Requester::data(5),
            0,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
    }
}
