//! Statistics collected by the memory system.
//!
//! The paper's evaluation reports L1 read misses (for prefetch coverage),
//! L2 request counts, L2 misses and write-backs, and off-chip traffic split
//! into application and predictor data. Every counter needed to regenerate
//! Figures 6-8 and 10 lives here.

use crate::address::BLOCK_BYTES;

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand read accesses (loads / instruction fetches).
    pub reads: u64,
    /// Demand write accesses (stores and write-backs arriving from above).
    pub writes: u64,
    /// Demand read hits.
    pub read_hits: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Demand write hits.
    pub write_hits: u64,
    /// Demand write misses.
    pub write_misses: u64,
    /// Lines installed by prefetches.
    pub prefetch_fills: u64,
    /// Prefetched lines that were evicted or invalidated before any demand
    /// access touched them (the paper's "overpredictions").
    pub prefetched_evicted_unused: u64,
    /// Demand accesses that hit a line still in flight from a prefetch
    /// (partial coverage: the access pays only the residual latency).
    pub late_prefetch_hits: u64,
    /// Dirty lines written back to the level below.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total demand misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Read miss ratio in [0, 1]; zero when no reads were made.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Adds another stats block into this one (used to aggregate per-core L1s).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetched_evicted_unused += other.prefetched_evicted_unused;
        self.late_prefetch_hits += other.late_prefetch_hits;
        self.writebacks += other.writebacks;
    }
}

/// Counters of one core's next-line instruction prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NextLineStats {
    /// Next-line prefetches the predictor asked for on L1I misses.
    pub issued: u64,
    /// Duplicate-miss requests suppressed (stalled fetch streams re-missing
    /// on the same block).
    pub suppressed: u64,
}

/// A counter split into application and predictor (PV) data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// Events attributable to ordinary application data.
    pub application: u64,
    /// Events attributable to virtualized predictor data.
    pub predictor: u64,
}

impl TrafficBreakdown {
    /// Total across both classes.
    pub fn total(&self) -> u64 {
        self.application + self.predictor
    }

    /// Records one event of the given class. Runs on every L2 request under
    /// both contention models, so the update is branchless: each class adds
    /// the bool cast of its own predicate instead of selecting a field.
    #[inline]
    pub fn record(&mut self, predictor: bool) {
        self.predictor += predictor as u64;
        self.application += !predictor as u64;
    }
}

/// Queueing-delay cycles accumulated at a shared resource, split into
/// application and predictor traffic, together with the number of delayed
/// requests of each class (so mean waits can be reported).
///
/// The counters are class-indexed `[u64; 2]` arrays (`Application = 0`,
/// `Predictor = 1`, matching [`crate::DataClass::index`]) so the per-access
/// [`Self::record`] on the contended path is two branchless indexed adds;
/// the per-class views and derived means are folded to read-time accessors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayBreakdown {
    /// Total wait cycles per class, indexed by `predictor as usize`.
    cycles: [u64; 2],
    /// Requests per class that waited at least one cycle, same indexing.
    events: [u64; 2],
}

impl DelayBreakdown {
    /// Records `cycles` of waiting for one request of the given class.
    /// Zero-cycle waits are not counted as events: folding the event
    /// predicate into a bool-cast add keeps the hot path free of both the
    /// early return and the class branch the field-per-class layout needed.
    #[inline]
    pub fn record(&mut self, predictor: bool, cycles: u64) {
        let class = predictor as usize;
        self.cycles[class] += cycles;
        self.events[class] += (cycles != 0) as u64;
    }

    /// Total wait cycles charged to application requests.
    pub fn application_cycles(&self) -> u64 {
        self.cycles[0]
    }

    /// Total wait cycles charged to predictor requests.
    pub fn predictor_cycles(&self) -> u64 {
        self.cycles[1]
    }

    /// Application requests that waited at least one cycle.
    pub fn application_events(&self) -> u64 {
        self.events[0]
    }

    /// Predictor requests that waited at least one cycle.
    pub fn predictor_events(&self) -> u64 {
        self.events[1]
    }

    /// Total wait cycles across both classes.
    pub fn total_cycles(&self) -> u64 {
        self.cycles[0] + self.cycles[1]
    }

    /// Mean wait in cycles over `requests` requests of the application
    /// class (zero when no requests were made).
    pub fn mean_application(&self, requests: u64) -> f64 {
        if requests == 0 {
            0.0
        } else {
            self.cycles[0] as f64 / requests as f64
        }
    }

    /// Mean wait in cycles over `requests` requests of the predictor class
    /// (zero when no requests were made).
    pub fn mean_predictor(&self, requests: u64) -> f64 {
        if requests == 0 {
            0.0
        } else {
            self.cycles[1] as f64 / requests as f64
        }
    }

    /// Adds another breakdown into this one.
    pub fn accumulate(&mut self, other: &DelayBreakdown) {
        for class in 0..2 {
            self.cycles[class] += other.cycles[class];
            self.events[class] += other.events[class];
        }
    }
}

/// System-wide memory statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyStats {
    /// Per-core L1 data-cache stats.
    pub l1d: Vec<CacheStats>,
    /// Per-core L1 instruction-cache stats.
    pub l1i: Vec<CacheStats>,
    /// Shared L2 stats (demand view, both classes).
    pub l2: CacheStats,
    /// L2 requests (reads + writes arriving at the L2) split by class.
    pub l2_requests: TrafficBreakdown,
    /// L2 misses split by class (off-chip block reads).
    pub l2_misses: TrafficBreakdown,
    /// L2 write-backs to memory split by class (off-chip block writes).
    pub l2_writebacks: TrafficBreakdown,
    /// DRAM read accesses.
    pub dram_reads: u64,
    /// DRAM write accesses.
    pub dram_writes: u64,
    /// Prefetches issued into L1 data caches (per core).
    pub l1d_prefetches: Vec<u64>,
    /// Next-line instruction prefetches issued (per core). Counts only
    /// prefetches that actually installed a line (the target was not
    /// already resident); the predictor's own view is in
    /// [`Self::next_line`].
    pub l1i_prefetches: Vec<u64>,
    /// Per-core next-line instruction-prefetcher counters (requests issued
    /// and duplicate-miss suppressions, regardless of residency).
    pub next_line: Vec<NextLineStats>,
    /// Cycles requests waited for a busy L2 tag-pipeline bank
    /// (always zero under `ContentionModel::Ideal`).
    pub l2_port_delay: DelayBreakdown,
    /// Cycles requests waited for a full MSHR file to drain an entry
    /// (always zero under `ContentionModel::Ideal`).
    pub mshr_stall_delay: DelayBreakdown,
    /// Secondary L2 misses whose merge-time MSHR registration did not
    /// actually merge (the observed in-flight entry vanished between lookup
    /// and registration). Expected to stay zero: the miss path retires and
    /// registers against the same cycle, so a looked-up entry cannot retire
    /// in between — but a non-zero count makes any future violation of that
    /// invariant loud instead of silently under-counting occupancy.
    pub l2_mshr_merge_failures: u64,
    /// Cycles DRAM *reads* waited in channel queues / for banks / for the
    /// data bus beyond the unloaded latency (always zero under
    /// `ContentionModel::Ideal`). Write-backs shape the timing state but
    /// are excluded — no requester waits on them.
    pub dram_queue_delay: DelayBreakdown,
    /// DRAM block reads split by data class (the denominator for mean
    /// queueing-delay-per-read reporting; unlike `l2_misses` this excludes
    /// misses that merged into an in-flight fill and issued no read).
    pub dram_read_traffic: TrafficBreakdown,
    /// Channel-cycles the DRAM data buses spent transferring blocks; divide
    /// by elapsed cycles for aggregate bus utilization (may exceed 1.0 with
    /// multiple channels).
    pub dram_busy_cycles: u64,
}

impl HierarchyStats {
    /// Creates zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> Self {
        HierarchyStats {
            l1d: vec![CacheStats::default(); cores],
            l1i: vec![CacheStats::default(); cores],
            l2: CacheStats::default(),
            l2_requests: TrafficBreakdown::default(),
            l2_misses: TrafficBreakdown::default(),
            l2_writebacks: TrafficBreakdown::default(),
            dram_reads: 0,
            dram_writes: 0,
            l1d_prefetches: vec![0; cores],
            l1i_prefetches: vec![0; cores],
            next_line: vec![NextLineStats::default(); cores],
            l2_port_delay: DelayBreakdown::default(),
            mshr_stall_delay: DelayBreakdown::default(),
            l2_mshr_merge_failures: 0,
            dram_queue_delay: DelayBreakdown::default(),
            dram_read_traffic: TrafficBreakdown::default(),
            dram_busy_cycles: 0,
        }
    }

    /// Total queueing-delay cycles across every contended resource (L2
    /// ports, MSHR files, DRAM queues), split by class.
    pub fn total_queue_delay(&self) -> DelayBreakdown {
        let mut total = self.l2_port_delay;
        total.accumulate(&self.mshr_stall_delay);
        total.accumulate(&self.dram_queue_delay);
        total
    }

    /// Aggregate next-line instruction-prefetcher counters over all cores.
    pub fn next_line_total(&self) -> NextLineStats {
        let mut total = NextLineStats::default();
        for s in &self.next_line {
            total.issued += s.issued;
            total.suppressed += s.suppressed;
        }
        total
    }

    /// Aggregate L1 data stats over all cores.
    pub fn l1d_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1d {
            total.accumulate(s);
        }
        total
    }

    /// Aggregate L1 instruction stats over all cores.
    pub fn l1i_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1i {
            total.accumulate(s);
        }
        total
    }

    /// Off-chip traffic in bytes (block reads + block writes).
    pub fn offchip_bytes(&self) -> u64 {
        (self.l2_misses.total() + self.l2_writebacks.total()) * BLOCK_BYTES
    }

    /// Off-chip traffic attributable to predictor data, in bytes.
    pub fn offchip_predictor_bytes(&self) -> u64 {
        (self.l2_misses.predictor + self.l2_writebacks.predictor) * BLOCK_BYTES
    }

    /// Resets every counter while keeping the core count (used at the end of
    /// the warm-up window, mirroring the paper's measurement methodology).
    pub fn reset(&mut self) {
        let cores = self.l1d.len();
        *self = HierarchyStats::new(cores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_totals() {
        let stats = CacheStats {
            reads: 100,
            writes: 50,
            read_hits: 80,
            read_misses: 20,
            write_hits: 45,
            write_misses: 5,
            ..CacheStats::default()
        };
        assert_eq!(stats.accesses(), 150);
        assert_eq!(stats.misses(), 25);
        assert!((stats.read_miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn miss_ratio_with_no_reads_is_zero() {
        assert_eq!(CacheStats::default().read_miss_ratio(), 0.0);
    }

    #[test]
    fn accumulate_adds_fields() {
        let mut a = CacheStats {
            reads: 1,
            writebacks: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            reads: 3,
            writebacks: 4,
            ..CacheStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.reads, 4);
        assert_eq!(a.writebacks, 6);
    }

    #[test]
    fn breakdown_records_by_class() {
        let mut t = TrafficBreakdown::default();
        t.record(false);
        t.record(true);
        t.record(true);
        assert_eq!(t.application, 1);
        assert_eq!(t.predictor, 2);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn delay_breakdown_records_and_averages() {
        let mut delay = DelayBreakdown::default();
        delay.record(false, 10);
        delay.record(false, 0); // zero waits are not events
        delay.record(true, 5);
        delay.record(true, 15);
        assert_eq!(delay.application_cycles(), 10);
        assert_eq!(delay.application_events(), 1);
        assert_eq!(delay.predictor_cycles(), 20);
        assert_eq!(delay.predictor_events(), 2);
        assert_eq!(delay.total_cycles(), 30);
        assert!((delay.mean_application(5) - 2.0).abs() < 1e-12);
        assert!((delay.mean_predictor(10) - 2.0).abs() < 1e-12);
        assert_eq!(delay.mean_application(0), 0.0);
        let mut sum = DelayBreakdown::default();
        sum.accumulate(&delay);
        sum.accumulate(&delay);
        assert_eq!(sum.total_cycles(), 60);
    }

    #[test]
    fn total_queue_delay_sums_all_resources() {
        let mut stats = HierarchyStats::new(1);
        stats.l2_port_delay.record(false, 3);
        stats.mshr_stall_delay.record(true, 4);
        stats.dram_queue_delay.record(false, 5);
        let total = stats.total_queue_delay();
        assert_eq!(total.application_cycles(), 8);
        assert_eq!(total.predictor_cycles(), 4);
        assert_eq!(total.total_cycles(), 12);
    }

    #[test]
    fn hierarchy_stats_aggregate_and_reset() {
        let mut stats = HierarchyStats::new(2);
        stats.l1d[0].reads = 10;
        stats.l1d[1].reads = 20;
        stats.l2_misses.record(false);
        stats.l2_writebacks.record(true);
        assert_eq!(stats.l1d_total().reads, 30);
        assert_eq!(stats.offchip_bytes(), 2 * BLOCK_BYTES);
        assert_eq!(stats.offchip_predictor_bytes(), BLOCK_BYTES);
        stats.reset();
        assert_eq!(stats.l1d_total().reads, 0);
        assert_eq!(stats.l1d.len(), 2);
    }
}
