//! Statistics collected by the memory system.
//!
//! The paper's evaluation reports L1 read misses (for prefetch coverage),
//! L2 request counts, L2 misses and write-backs, and off-chip traffic split
//! into application and predictor data. Every counter needed to regenerate
//! Figures 6-8 and 10 lives here.

use crate::address::BLOCK_BYTES;

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand read accesses (loads / instruction fetches).
    pub reads: u64,
    /// Demand write accesses (stores and write-backs arriving from above).
    pub writes: u64,
    /// Demand read hits.
    pub read_hits: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Demand write hits.
    pub write_hits: u64,
    /// Demand write misses.
    pub write_misses: u64,
    /// Lines installed by prefetches.
    pub prefetch_fills: u64,
    /// Prefetched lines that were evicted or invalidated before any demand
    /// access touched them (the paper's "overpredictions").
    pub prefetched_evicted_unused: u64,
    /// Demand accesses that hit a line still in flight from a prefetch
    /// (partial coverage: the access pays only the residual latency).
    pub late_prefetch_hits: u64,
    /// Dirty lines written back to the level below.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total demand misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Read miss ratio in [0, 1]; zero when no reads were made.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Adds another stats block into this one (used to aggregate per-core L1s).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetched_evicted_unused += other.prefetched_evicted_unused;
        self.late_prefetch_hits += other.late_prefetch_hits;
        self.writebacks += other.writebacks;
    }
}

/// A counter split into application and predictor (PV) data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// Events attributable to ordinary application data.
    pub application: u64,
    /// Events attributable to virtualized predictor data.
    pub predictor: u64,
}

impl TrafficBreakdown {
    /// Total across both classes.
    pub fn total(&self) -> u64 {
        self.application + self.predictor
    }

    /// Records one event of the given class.
    pub fn record(&mut self, predictor: bool) {
        if predictor {
            self.predictor += 1;
        } else {
            self.application += 1;
        }
    }
}

/// System-wide memory statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyStats {
    /// Per-core L1 data-cache stats.
    pub l1d: Vec<CacheStats>,
    /// Per-core L1 instruction-cache stats.
    pub l1i: Vec<CacheStats>,
    /// Shared L2 stats (demand view, both classes).
    pub l2: CacheStats,
    /// L2 requests (reads + writes arriving at the L2) split by class.
    pub l2_requests: TrafficBreakdown,
    /// L2 misses split by class (off-chip block reads).
    pub l2_misses: TrafficBreakdown,
    /// L2 write-backs to memory split by class (off-chip block writes).
    pub l2_writebacks: TrafficBreakdown,
    /// DRAM read accesses.
    pub dram_reads: u64,
    /// DRAM write accesses.
    pub dram_writes: u64,
    /// Prefetches issued into L1 data caches (per core).
    pub l1d_prefetches: Vec<u64>,
    /// Next-line instruction prefetches issued (per core).
    pub l1i_prefetches: Vec<u64>,
}

impl HierarchyStats {
    /// Creates zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> Self {
        HierarchyStats {
            l1d: vec![CacheStats::default(); cores],
            l1i: vec![CacheStats::default(); cores],
            l2: CacheStats::default(),
            l2_requests: TrafficBreakdown::default(),
            l2_misses: TrafficBreakdown::default(),
            l2_writebacks: TrafficBreakdown::default(),
            dram_reads: 0,
            dram_writes: 0,
            l1d_prefetches: vec![0; cores],
            l1i_prefetches: vec![0; cores],
        }
    }

    /// Aggregate L1 data stats over all cores.
    pub fn l1d_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1d {
            total.accumulate(s);
        }
        total
    }

    /// Aggregate L1 instruction stats over all cores.
    pub fn l1i_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.l1i {
            total.accumulate(s);
        }
        total
    }

    /// Off-chip traffic in bytes (block reads + block writes).
    pub fn offchip_bytes(&self) -> u64 {
        (self.l2_misses.total() + self.l2_writebacks.total()) * BLOCK_BYTES
    }

    /// Off-chip traffic attributable to predictor data, in bytes.
    pub fn offchip_predictor_bytes(&self) -> u64 {
        (self.l2_misses.predictor + self.l2_writebacks.predictor) * BLOCK_BYTES
    }

    /// Resets every counter while keeping the core count (used at the end of
    /// the warm-up window, mirroring the paper's measurement methodology).
    pub fn reset(&mut self) {
        let cores = self.l1d.len();
        *self = HierarchyStats::new(cores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_totals() {
        let stats = CacheStats {
            reads: 100,
            writes: 50,
            read_hits: 80,
            read_misses: 20,
            write_hits: 45,
            write_misses: 5,
            ..CacheStats::default()
        };
        assert_eq!(stats.accesses(), 150);
        assert_eq!(stats.misses(), 25);
        assert!((stats.read_miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn miss_ratio_with_no_reads_is_zero() {
        assert_eq!(CacheStats::default().read_miss_ratio(), 0.0);
    }

    #[test]
    fn accumulate_adds_fields() {
        let mut a = CacheStats {
            reads: 1,
            writebacks: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            reads: 3,
            writebacks: 4,
            ..CacheStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.reads, 4);
        assert_eq!(a.writebacks, 6);
    }

    #[test]
    fn breakdown_records_by_class() {
        let mut t = TrafficBreakdown::default();
        t.record(false);
        t.record(true);
        t.record(true);
        assert_eq!(t.application, 1);
        assert_eq!(t.predictor, 2);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn hierarchy_stats_aggregate_and_reset() {
        let mut stats = HierarchyStats::new(2);
        stats.l1d[0].reads = 10;
        stats.l1d[1].reads = 20;
        stats.l2_misses.record(false);
        stats.l2_writebacks.record(true);
        assert_eq!(stats.l1d_total().reads, 30);
        assert_eq!(stats.offchip_bytes(), 2 * BLOCK_BYTES);
        assert_eq!(stats.offchip_predictor_bytes(), BLOCK_BYTES);
        stats.reset();
        assert_eq!(stats.l1d_total().reads, 0);
        assert_eq!(stats.l1d.len(), 2);
    }
}
