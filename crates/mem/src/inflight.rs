//! The per-channel DRAM in-flight request queue.
//!
//! Under [`crate::ContentionModel::Queued`] every memory channel tracks the
//! completion cycles of the requests currently occupying its finite request
//! queue. The hot operations are, per serviced request:
//!
//! 1. **drain** — retire requests whose completion cycle has passed;
//! 2. **admit** — if the queue still holds `queue_depth` requests, delay the
//!    newcomer until enough earlier requests complete for occupancy to drop
//!    below the depth;
//! 3. **push** — append the newcomer's completion cycle.
//!
//! [`InflightRing`] implements all three as O(1) pointer arithmetic over a
//! fixed-capacity power-of-two ring buffer sized from `queue_depth` at
//! construction: it never reallocates, drain is a front-pointer bump, and
//! the admission "search" (`inflight[len - depth]` over the historical
//! `VecDeque`) collapses to reading the front slot. The pre-ring semantics
//! are retained verbatim in [`ReferenceInflightQueue`] and the two are
//! differential-tested against each other over seeded random request
//! streams (`tests/tests/differential.rs`) as well as pinned end-to-end by
//! every Queued-mode digest in the suite.
//!
//! # Why the ring can be exactly `queue_depth` deep
//!
//! The reference deque's length is not bounded by `queue_depth`: admission
//! reads `inflight[len - depth]` but removes nothing, so bursts whose
//! requester clocks lag the completion times grow the deque past the depth
//! and the stale front entries are only dropped by a later drain. The ring
//! instead pops the front entry *at admission time*: when the queue is
//! full, the newcomer enters exactly when the oldest in-flight request
//! completes (completion cycles are non-decreasing along the queue, so the
//! front is the earliest), and from that cycle on the oldest request no
//! longer occupies a slot. Popping it immediately keeps occupancy at most
//! `queue_depth` while every observable start cycle stays identical:
//!
//! * While no drain has intervened, each early pop has shifted the
//!   reference's `len - depth` admission index past exactly the entries the
//!   ring already removed, so both read the same completion cycle — and the
//!   ring is at capacity exactly when the reference holds `depth` or more
//!   entries, so both delay the same requests.
//! * Any drain that removes an entry from the ring has `now` at least the
//!   ring front's completion cycle, which is itself at least every
//!   early-popped completion cycle — so the same drain removes all of the
//!   reference's stale front entries too, and the two queues re-converge to
//!   identical contents.

use std::collections::VecDeque;

/// Fixed-capacity power-of-two ring buffer of in-flight completion cycles.
///
/// Sized from the channel's `queue_depth` at construction; never
/// reallocates. See the module docs for the equivalence argument against
/// [`ReferenceInflightQueue`].
#[derive(Debug, Clone)]
pub struct InflightRing {
    /// Completion cycles, in arrival order; a slot is live iff its offset
    /// from `head` is below `len`. Capacity is a power of two so the
    /// wrap-around is a mask, not a division.
    slots: Box<[u64]>,
    /// Index mask (`slots.len() - 1`).
    mask: usize,
    /// Index of the oldest live entry.
    head: usize,
    /// Number of live entries (at most `depth`).
    len: usize,
    /// Channel queue depth: occupancy at which admission delays.
    depth: usize,
}

impl InflightRing {
    /// Creates a ring for a channel with `queue_depth` request slots.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero (a channel needs at least one slot).
    pub fn new(queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "DRAM queues need at least one slot");
        let capacity = queue_depth.next_power_of_two();
        InflightRing {
            slots: vec![0; capacity].into_boxed_slice(),
            mask: capacity - 1,
            head: 0,
            len: 0,
            depth: queue_depth,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Retires requests whose completion cycle is at or before `now`.
    #[inline]
    pub fn drain(&mut self, now: u64) {
        while self.len > 0 && self.slots[self.head] <= now {
            self.head = (self.head + 1) & self.mask;
            self.len -= 1;
        }
    }

    /// Queue admission at cycle `now`: returns the cycle the request may
    /// start. A full queue delays the newcomer until the oldest in-flight
    /// request completes — and retires that request, which no longer
    /// occupies a slot at the returned start cycle.
    #[inline]
    pub fn admit(&mut self, now: u64) -> u64 {
        if self.len < self.depth {
            return now;
        }
        let start = self.slots[self.head];
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        start
    }

    /// Appends a request completing at `done`. Completion cycles must be
    /// non-decreasing along the queue (guaranteed by the channel data bus:
    /// each transfer finishes no earlier than the previous one's).
    #[inline]
    pub fn push(&mut self, done: u64) {
        debug_assert!(
            self.len < self.slots.len(),
            "admission keeps occupancy at most queue_depth <= capacity"
        );
        debug_assert!(
            self.len == 0 || self.slots[(self.head + self.len - 1) & self.mask] <= done,
            "completion cycles must be non-decreasing along the queue"
        );
        self.slots[(self.head + self.len) & self.mask] = done;
        self.len += 1;
    }

    /// Empties the queue (measurement-window timing rebase).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// The pre-ring in-flight queue, retained verbatim as the differential
/// reference: a growable `VecDeque` whose admission path indexes
/// `inflight[len - depth]` and removes nothing, leaving completed front
/// entries for a later drain to pop.
#[derive(Debug, Clone, Default)]
pub struct ReferenceInflightQueue {
    inflight: VecDeque<u64>,
}

impl ReferenceInflightQueue {
    /// Creates an empty reference queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retires requests whose completion cycle is at or before `now`.
    pub fn drain(&mut self, now: u64) {
        while self.inflight.front().is_some_and(|&done| done <= now) {
            self.inflight.pop_front();
        }
    }

    /// Queue admission at cycle `now` for a channel with `queue_depth`
    /// slots: the request may enter once enough earlier requests complete
    /// for occupancy to drop below the depth.
    pub fn admit(&mut self, now: u64, queue_depth: usize) -> u64 {
        if self.inflight.len() >= queue_depth {
            self.inflight[self.inflight.len() - queue_depth]
        } else {
            now
        }
    }

    /// Appends a request completing at `done`.
    pub fn push(&mut self, done: u64) {
        self.inflight.push_back(done);
    }

    /// Empties the queue.
    pub fn clear(&mut self) {
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_admits_immediately() {
        let mut ring = InflightRing::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.admit(17), 17);
    }

    #[test]
    fn full_ring_delays_until_the_oldest_completes_and_frees_its_slot() {
        let mut ring = InflightRing::new(2);
        ring.push(100);
        ring.push(150);
        // Full at cycle 10: wait until the oldest (100) completes.
        assert_eq!(ring.admit(10), 100);
        // The drained slot is free: occupancy stays at the depth after the
        // newcomer is pushed.
        ring.push(200);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.admit(10), 150);
    }

    #[test]
    fn drain_retires_completed_requests() {
        let mut ring = InflightRing::new(4);
        for done in [10, 20, 30, 40] {
            ring.push(done);
        }
        ring.drain(25);
        assert_eq!(ring.len(), 2);
        ring.drain(9);
        assert_eq!(ring.len(), 2, "an earlier now must not retire anything");
        ring.drain(100);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_wraps_around_without_growing() {
        let mut ring = InflightRing::new(3); // capacity rounds up to 4
        let mut done = 0;
        for round in 0..64u64 {
            ring.drain(round * 5);
            let start = ring.admit(round * 5);
            done = done.max(start) + 7;
            ring.push(done);
            assert!(ring.len() <= 3, "occupancy must never exceed the depth");
        }
    }

    #[test]
    fn clear_empties_the_ring() {
        let mut ring = InflightRing::new(2);
        ring.push(5);
        ring.push(6);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.admit(0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_panics() {
        InflightRing::new(0);
    }

    /// The reference queue admits by indexing, not popping: stale front
    /// entries linger until a drain with a late-enough `now`.
    #[test]
    fn reference_queue_keeps_stale_entries_until_a_drain() {
        let mut queue = ReferenceInflightQueue::new();
        queue.push(100);
        queue.push(150);
        assert_eq!(queue.admit(10, 2), 100);
        queue.push(200);
        // Length grows past the depth; the next admission skips the stale
        // front entry via the `len - depth` index.
        assert_eq!(queue.admit(10, 2), 150);
    }

    /// Seeded random request streams (non-monotone `now`, data-bus-shaped
    /// completion cycles) drive both implementations through identical
    /// drain/admit/push sequences; every admission must return the same
    /// start cycle. The cross-implementation equivalence over the *full*
    /// channel timing model lives in `tests/tests/differential.rs`.
    #[test]
    fn ring_matches_reference_on_seeded_streams() {
        for seed in 0..8u64 {
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (seed << 32 | 0x5bd1);
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            for depth in [1usize, 2, 3, 8, 16] {
                let mut ring = InflightRing::new(depth);
                let mut reference = ReferenceInflightQueue::new();
                let mut bus_busy_until = 0u64;
                let mut clock = 0u64;
                for _ in 0..512 {
                    let r = next();
                    // Requester clocks advance unevenly and occasionally
                    // jump backwards (different cores' timestamps).
                    clock = (clock + r % 37).saturating_sub((r >> 8) % 13);
                    ring.drain(clock);
                    reference.drain(clock);
                    let start_ring = ring.admit(clock);
                    let start_ref = reference.admit(clock, depth);
                    assert_eq!(
                        start_ring, start_ref,
                        "admission diverged (seed {seed}, depth {depth})"
                    );
                    // Completion mirrors the channel data bus: strictly
                    // after both the start and every earlier completion.
                    let done = (start_ring + 3 + (r >> 16) % 29).max(bus_busy_until + 1);
                    bus_busy_until = done;
                    ring.push(done);
                    reference.push(done);
                }
            }
        }
    }
}
