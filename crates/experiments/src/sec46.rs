//! Section 4.6: PVProxy on-chip storage requirements.

use crate::report::{bytes, Table};
use pv_core::PvConfig;
use pv_sms::{PhtGeometry, VirtualizedPht};

/// Renders the storage breakdown of the PV-8 proxy and the reduction factor
/// over the dedicated 1K-set, 11-way PHT.
pub fn report() -> String {
    let budget = VirtualizedPht::storage_budget(&PvConfig::pv8());
    let mut table = Table::new("Section 4.6 — PVProxy on-chip storage breakdown (per core)");
    table.header(["Component", "Measured", "Paper"]);
    let paper = [
        ("PVCache data", "473B"),
        ("PVCache tags", "11B"),
        ("Dirty bits", "1B"),
        ("MSHRs", "84B"),
        ("Evict buffer", "256B"),
        ("Pattern buffer", "64B"),
    ];
    for ((component, measured), (_, paper_value)) in budget.rows().into_iter().zip(paper) {
        table.row([
            component.to_owned(),
            bytes(measured),
            paper_value.to_owned(),
        ]);
    }
    let dedicated = PhtGeometry::paper_1k_11a().total_bytes().unwrap();
    table.row([
        "Total".to_owned(),
        format!("{}B", budget.total_bytes()),
        "889B".to_owned(),
    ]);
    table.note(format!(
        "Dedicated 1K-11a PHT needs {}; virtualization reduces dedicated on-chip storage by {:.0}x (paper: ~68x).",
        bytes(dedicated),
        budget.reduction_factor(dedicated)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn breakdown_totals_889_bytes() {
        let report = super::report();
        assert!(report.contains("889B"));
        assert!(report.contains("PVCache data"));
        assert!(report.contains("68x"));
    }
}
