//! Backend generality: two different predictors on one substrate.
//!
//! The paper's thesis is that Predictor Virtualization is a general
//! mechanism, with SMS only the case study (Sections 2 and 3). This
//! experiment demonstrates it end to end: the SMS prefetcher (43-bit packed
//! entries, 11 per block) and the PC-indexed next-address Markov prefetcher
//! (40-bit entries, 12 per block) both run through the *same* generic
//! PVProxy, and the report compares their packed layouts, on-chip budgets
//! and the predictor-classified memory traffic each induces.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_core::{PvConfig, PvLayout};
use pv_markov::{MarkovEntry, VirtualizedMarkov};
use pv_sim::PrefetcherKind;
use pv_sms::{SmsEntry, VirtualizedPht};
use pv_workloads::WorkloadId;

/// One backend-comparison row.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Workload name.
    pub workload: String,
    /// Backend label (e.g. `"SMS-PV8"`).
    pub config: String,
    /// Packed bits per table entry.
    pub entry_bits: u32,
    /// Entries per 64-byte PVTable block.
    pub entries_per_block: usize,
    /// Dedicated on-chip proxy storage in bytes.
    pub storage_bytes: u64,
    /// Prefetch coverage achieved.
    pub coverage: f64,
    /// PVProxy memory requests issued.
    pub pv_memory_requests: u64,
    /// Predictor-classified L2 requests observed by the hierarchy.
    pub l2_predictor_requests: u64,
}

/// The workloads compared.
pub fn workloads() -> [WorkloadId; 2] {
    [WorkloadId::Qry1, WorkloadId::Oracle]
}

/// Runs both virtualized backends over the comparison workloads.
pub fn rows_for(runner: &Runner, workloads: &[WorkloadId]) -> Vec<BackendRow> {
    let pv = PvConfig::pv8();
    let configs: [(PrefetcherKind, PvLayout, u64); 2] = [
        (
            PrefetcherKind::sms_pv8(),
            PvLayout::of::<SmsEntry>(pv.block_bytes),
            VirtualizedPht::storage_budget(&pv).total_bytes(),
        ),
        (
            PrefetcherKind::markov_pv8(),
            PvLayout::of::<MarkovEntry>(pv.block_bytes),
            VirtualizedMarkov::storage_budget(&pv).total_bytes(),
        ),
    ];
    let specs: Vec<RunSpec> = workloads
        .iter()
        .flat_map(|&w| configs.iter().map(move |(kind, _, _)| RunSpec::base(w, kind.clone())))
        .collect();
    runner.prefetch(&specs);

    let mut rows = Vec::new();
    for &workload in workloads {
        for (kind, layout, storage_bytes) in &configs {
            let metrics = runner.metrics(&RunSpec::base(workload, kind.clone()));
            let pv_stats = metrics.pv.expect("virtualized run must expose PV stats");
            rows.push(BackendRow {
                workload: workload.name().to_owned(),
                config: metrics.configuration.clone(),
                entry_bits: layout.entry_bits(),
                entries_per_block: layout.entries_per_block(),
                storage_bytes: *storage_bytes,
                coverage: metrics.coverage.coverage(),
                pv_memory_requests: pv_stats.memory_requests,
                l2_predictor_requests: metrics.hierarchy.l2_requests.predictor,
            });
        }
    }
    rows
}

/// Renders the backend-generality report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new(
        "Backend generality — two predictors, one virtualization substrate (PVProxy, PV-8)",
    );
    table.header([
        "Workload",
        "Backend",
        "Entry bits",
        "Entries/block",
        "On-chip storage",
        "Coverage",
        "PV memory requests",
        "L2 predictor requests",
    ]);
    for row in rows_for(runner, &workloads()) {
        table.row([
            row.workload,
            row.config,
            row.entry_bits.to_string(),
            row.entries_per_block.to_string(),
            format!("{}B", row.storage_bytes),
            pct(row.coverage),
            row.pv_memory_requests.to_string(),
            row.l2_predictor_requests.to_string(),
        ]);
    }
    table.note(
        "Both backends run through the same generic PVProxy; only the PvEntry implementation differs. \
         The packed geometry (43-bit/11-per-block for SMS, 40-bit/12-per-block for Markov) and the \
         storage budget are derived from each backend's entry widths, not hard-coded.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_differ_between_backends() {
        let pv = PvConfig::pv8();
        let sms = PvLayout::of::<SmsEntry>(pv.block_bytes);
        let markov = PvLayout::of::<MarkovEntry>(pv.block_bytes);
        assert_eq!(sms.entry_bits(), 43);
        assert_eq!(markov.entry_bits(), 40);
        assert_ne!(sms.entries_per_block(), markov.entries_per_block());
    }
}
