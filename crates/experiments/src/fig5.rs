//! Figure 5: coverage across all intermediate PHT sizes for three
//! representative workloads (Apache, Oracle, Query 17).

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_sms::{PhtGeometry, SmsConfig};
use pv_workloads::WorkloadId;

/// One point of the Figure 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: String,
    /// PHT geometry label.
    pub config: String,
    /// Fraction of baseline L1 read misses covered.
    pub covered: f64,
    /// Over-prediction ratio.
    pub overpredictions: f64,
}

/// The representative workloads the paper uses for this figure.
pub fn workloads() -> [WorkloadId; 3] {
    [WorkloadId::Apache, WorkloadId::Oracle, WorkloadId::Qry17]
}

/// Runs the sweep and returns one row per (workload, geometry).
pub fn rows(runner: &Runner) -> Vec<Fig5Row> {
    let geometries = PhtGeometry::figure5_sweep();
    let specs: Vec<RunSpec> = workloads()
        .iter()
        .flat_map(|&workload| {
            geometries.iter().map(move |&geometry| {
                RunSpec::base(workload, PrefetcherKind::Sms(SmsConfig::with_pht(geometry)))
            })
        })
        .collect();
    runner.prefetch(&specs);
    specs
        .iter()
        .map(|spec| {
            let metrics = runner.metrics(spec);
            Fig5Row {
                workload: spec.workload.name().to_owned(),
                config: spec.prefetcher.label().replace("SMS-", ""),
                covered: metrics.coverage.coverage(),
                overpredictions: metrics.coverage.overprediction_ratio(),
            }
        })
        .collect()
}

/// Renders the Figure 5 report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new("Figure 5 — SMS potential across all intermediate PHT sizes");
    table.header(["Workload", "PHT config", "Covered", "Overpredictions"]);
    for row in rows(runner) {
        table.row([
            row.workload,
            row.config,
            pct(row.covered),
            pct(row.overpredictions),
        ]);
    }
    table.note(
        "Paper shape: coverage decreases monotonically (modulo noise) as the table shrinks from 1K to 8 sets, \
         with each workload following its own curve; all workloads lose substantial coverage by 8 sets.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_ten_geometries_for_three_workloads() {
        assert_eq!(workloads().len(), 3);
        assert_eq!(PhtGeometry::figure5_sweep().len(), 10);
    }
}
