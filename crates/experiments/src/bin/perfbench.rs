//! Performance harness: establishes and tracks the simulator's perf
//! trajectory.
//!
//! Times smoke-scale end-to-end runs for every [`PrefetcherKind`] —
//! including the cohabiting SMS+Markov pairs and the feedback-throttled
//! variants — plus micro-benchmarks of the packing codec and the
//! set-associative array against the retained pre-flattening reference
//! implementations and of the memory-hierarchy access path under both
//! contention models and of the DRAM service path under queued contention,
//! and a replay-path row that times decode+simulate over pre-recorded
//! binary traces, plus a fleet-throughput section that sweeps a small grid
//! through the work-stealing fleet driver on one thread and on all host
//! threads (runs/sec each, and the scaling efficiency between them), plus
//! scheduler (`system/schedule`, event heap vs reference scan) and L1-hit
//! fast-path (`hierarchy/access_hit_fastpath`, classification-free vs
//! general entry) micros, plus the dynamically repartitioned scarce-region
//! cohabiting pair (`SMS+Markov-shPV8-dyn`, the live capacity controller
//! on the end-to-end path), plus Queued contended-path micros
//! (`hierarchy/classify_hoisted`, the cached-bounds PV classification vs
//! the region lookup it replaced, and `memory/inflight_ring`, the
//! fixed-capacity DRAM in-flight ring vs the retained `VecDeque`
//! reference) and a Queued-contention end-to-end row whose ratio against
//! its Ideal twin is reported in the summary, and writes the results as
//! `BENCH_PR10.json` (schema `pv-perfbench/2`, documented in the README's
//! Performance section).
//!
//! Each end-to-end row also carries a digest of the run's `RunMetrics`
//! (cycles, misses, traffic, coverage): optimisation PRs must keep those
//! digests unchanged — speed may move, simulated outcomes may not.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pv-experiments --bin perfbench [out.json] \
//!     [--check-against BASELINE.json]
//! cargo run --release -p pv-experiments --bin perfbench -- --profile
//! ```
//!
//! With `--check-against`, the end-to-end rows are compared against the
//! matching rows of a previously-recorded JSON (e.g. the committed
//! `BENCH_PR4.json`): the process exits non-zero when the geometric-mean
//! records/sec ratio regresses by more than 25% — or when the
//! `hierarchy/access_queued` micro regresses by more than 50% against the
//! baseline's recording, so the contended path cannot silently regress
//! behind the end-to-end geomean — and digest mismatches are reported as
//! warnings (behaviour-changing PRs are expected to move them; perf-only
//! PRs are not). Rows with no baseline counterpart — e.g. the replay-path
//! row the PR that wrote `BENCH_PR6.json` introduced — are skipped by the
//! gate.
//!
//! With `--profile`, a lightweight counter mode runs instead: each hot
//! component of the Queued access path is timed in isolation behind
//! `std::hint::black_box` fences and printed as an attribution table (no
//! JSON is written), followed by the `perf`/flamegraph recipe for
//! instruction-level attribution.

use pv_core::{decode_set, encode_set, packing, PvLayout, PvSet, RawEntry};
use pv_experiments::fleet::{run_fleet, FleetGrid, FleetWorkload};
use pv_experiments::Scale;
use pv_mem::{
    AccessKind, BlockAddr, ContentionModel, DataClass, DelayBreakdown, DramConfig, EvictionBuffer,
    HierarchyConfig, InflightRing, MainMemory, MemoryHierarchy, MshrFile, PvRegionConfig,
    ReferenceInflightQueue, ReferenceSetAssociative, ReplacementKind, Requester, SetAssociative,
};
use pv_sim::{run_streams, run_workload, PrefetcherKind, Scheduler, SimConfig, System};
use pv_trace::{record_generator, ReplayStream};
use pv_workloads::{AccessStream, WorkloadId};
use std::time::Instant;

/// End-to-end records/sec measured at commit 3b12054 (the last commit before
/// the allocation-free refactor), same harness, same machine class, keyed by
/// `(prefetcher label, workload name)`. Kept so the JSON always reports the
/// improvement relative to the tracked pre-refactor baseline.
const PRE_REFACTOR_RECORDS_PER_SEC: &[(&str, &str, f64)] = &[
    ("NoPrefetch", "Apache", 1_782_229.0),
    ("NoPrefetch", "Qry1", 2_034_368.0),
    ("SMS-1K-16a", "Apache", 1_399_772.0),
    ("SMS-1K-16a", "Qry1", 1_566_724.0),
    ("SMS-1K-11a", "Apache", 1_405_604.0),
    ("SMS-1K-11a", "Qry1", 1_461_953.0),
    ("SMS-16-11a", "Apache", 1_394_440.0),
    ("SMS-16-11a", "Qry1", 1_489_745.0),
    ("SMS-8-11a", "Apache", 1_474_434.0),
    ("SMS-8-11a", "Qry1", 1_677_657.0),
    ("SMS-Infinite", "Apache", 1_515_066.0),
    ("SMS-Infinite", "Qry1", 1_592_162.0),
    ("SMS-PV8", "Apache", 1_348_113.0),
    ("SMS-PV8", "Qry1", 1_414_554.0),
    ("SMS-PV16", "Apache", 1_293_504.0),
    ("SMS-PV16", "Qry1", 1_554_254.0),
    ("Markov-1K", "Apache", 872_926.0),
    ("Markov-1K", "Qry1", 1_075_464.0),
    ("Markov-PV8", "Apache", 695_109.0),
    ("Markov-PV8", "Qry1", 892_809.0),
];

fn all_kinds() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::sms_1k_16a(),
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
        PrefetcherKind::sms_infinite(),
        PrefetcherKind::sms_pv8(),
        PrefetcherKind::sms_pv16(),
        PrefetcherKind::markov_1k(),
        PrefetcherKind::markov_pv8(),
        PrefetcherKind::composite_dedicated(4),
        PrefetcherKind::composite_shared(8),
        PrefetcherKind::composite_shared_dynamic(8),
        PrefetcherKind::sms_pv8_throttled(),
        PrefetcherKind::markov_pv8_throttled(),
    ]
}

fn smoke_config(prefetcher: PrefetcherKind) -> SimConfig {
    let mut config = SimConfig::quick(prefetcher);
    config.warmup_records = 20_000;
    config.measure_records = 30_000;
    // Cohabiting kinds hold two tables per core; grow the PV region to fit.
    let needed = config.prefetcher.pv_bytes_per_core();
    if needed > config.hierarchy.pv_regions.bytes_per_core {
        config.hierarchy = config.hierarchy.with_pv_bytes_per_core(needed);
    }
    config
}

struct EndToEnd {
    prefetcher: String,
    workload: String,
    records: u64,
    seconds: f64,
    records_per_sec: f64,
    pre_refactor_records_per_sec: Option<f64>,
    digest: String,
}

struct Micro {
    name: String,
    ns_per_op: f64,
    /// `ns_per_op` of a retained reference implementation, when one exists.
    reference_ns_per_op: Option<f64>,
}

impl Micro {
    fn speedup(&self) -> Option<f64> {
        self.reference_ns_per_op.map(|reference| reference / self.ns_per_op)
    }
}

fn full_sms_set(layout: &PvLayout) -> PvSet<RawEntry> {
    let mut set = PvSet::new(layout.entries_per_block());
    for i in 0..layout.entries_per_block() as u64 {
        set.insert(RawEntry::new(i | 0x400, 0x8000_0001 | (i << 8)));
    }
    set
}

/// Round-trip (encode + decode) cost of the word-level codec.
fn bench_codec(iters: u64) -> f64 {
    let layout = PvLayout::new(11, 32, 64);
    let set = full_sms_set(&layout);
    let start = Instant::now();
    for _ in 0..iters {
        let block = encode_set(&set, &layout);
        let decoded: PvSet<RawEntry> = decode_set(&block, &layout);
        std::hint::black_box(decoded);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Same round-trip over the retained bit-at-a-time reference codec.
fn bench_codec_reference(iters: u64) -> f64 {
    let layout = PvLayout::new(11, 32, 64);
    let set = full_sms_set(&layout);
    let start = Instant::now();
    for _ in 0..iters {
        let block = packing::reference::encode_set(&set, &layout);
        let decoded: PvSet<RawEntry> = packing::reference::decode_set(&block, &layout);
        std::hint::black_box(decoded);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Deterministic get/insert mix over a PHT-shaped array (1024 sets x 11
/// ways, LRU), exercised identically for the flat and reference arrays.
macro_rules! bench_set_assoc_impl {
    ($name:ident, $ty:ident) => {
        fn $name(iters: u64) -> f64 {
            let mut arr: $ty<u64> = $ty::new(1024, 11, ReplacementKind::Lru);
            let mut state = 0x1234_5678_9abc_def0u64;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let start = Instant::now();
            for _ in 0..iters {
                let r = next();
                let set = (r % 1024) as usize;
                let tag = (r >> 10) % 64;
                if r & 1 == 0 {
                    std::hint::black_box(arr.get(set, tag));
                } else {
                    std::hint::black_box(arr.insert(set, tag, r));
                }
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        }
    };
}

bench_set_assoc_impl!(bench_set_assoc, SetAssociative);
bench_set_assoc_impl!(bench_set_assoc_reference, ReferenceSetAssociative);

/// Full-hierarchy access path: a deterministic four-core read/write stream
/// over a footprint larger than the L2, timed end to end (L1 + L2 + MSHRs +
/// DRAM). Run once per contention model so the shared-resource bookkeeping
/// cost is tracked explicitly.
fn bench_hierarchy(contention: ContentionModel, iters: u64) -> f64 {
    let config = HierarchyConfig::paper_baseline(4).with_contention(contention);
    let mut hierarchy = MemoryHierarchy::new(config);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut now = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let r = next();
        let core = (r % 4) as usize;
        // 16M blocks = 1 GB footprint: far beyond the 8 MB L2.
        let addr = ((r >> 2) % (16 * 1024 * 1024)) * 64;
        let kind = if r & 16 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let response = hierarchy.access(
            Requester::data(core),
            addr,
            kind,
            DataClass::Application,
            now,
        );
        std::hint::black_box(response.latency);
        now += 3;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_hierarchy_ideal(iters: u64) -> f64 {
    bench_hierarchy(ContentionModel::Ideal, iters)
}

fn bench_hierarchy_queued(iters: u64) -> f64 {
    bench_hierarchy(ContentionModel::Queued, iters)
}

/// The DRAM service path in isolation, under queued contention: a
/// deterministic read stream paced just below the data-bus drain rate, so
/// the per-channel in-flight queues stay populated and every call walks the
/// completed-request drain (the path the `VecDeque` front-pop replaced a
/// full `retain` scan on).
fn bench_memory_service(iters: u64) -> f64 {
    let mut memory = MainMemory::new(
        DramConfig::paper(),
        PvRegionConfig::paper_default(4),
        ContentionModel::Queued,
    );
    let mut state = 0x0123_4567_89ab_cdefu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut now = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let r = next();
        let addr = pv_mem::Address::new(((r >> 2) % (16 * 1024 * 1024)) * 64);
        std::hint::black_box(memory.read(addr, now).latency);
        now += 3;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The per-request PV-region classification: the hoisted form (a single
/// bound-compare against bounds cached in the hierarchy at construction)
/// vs the un-hoisted region lookup through the DRAM model's config that
/// the L2 path used to repeat up to three times per miss. The address mix
/// interleaves application and PV-region blocks so neither branch
/// direction is statically predictable away.
fn bench_classify(hoisted: bool, iters: u64) -> f64 {
    let hierarchy = MemoryHierarchy::new(HierarchyConfig::paper_baseline(4));
    let pv_base = hierarchy.dram().pv_regions().core_base(0).raw();
    let mut state = 0x6a09_e667_f3bc_c908u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let start = Instant::now();
    for _ in 0..iters {
        let r = next();
        let addr = if r & 3 == 0 {
            pv_base + (r >> 8) % (64 * 1024)
        } else {
            (r >> 8) % (1024 * 1024 * 1024)
        };
        let block = pv_mem::Address::new(addr).block();
        if hoisted {
            std::hint::black_box(hierarchy.classify(block).is_predictor());
        } else {
            std::hint::black_box(hierarchy.dram().is_predictor_address(block.base_address()));
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_classify_hoisted(iters: u64) -> f64 {
    bench_classify(true, iters)
}

fn bench_classify_reference(iters: u64) -> f64 {
    bench_classify(false, iters)
}

/// The per-channel DRAM in-flight queue in isolation: the identical
/// drain/admit/push sequence over the fixed-capacity ring and the retained
/// `VecDeque` reference, paced (arrivals every 3 cycles against a
/// 16-cycle transfer) so the queue stays at `queue_depth` and every call
/// exercises the full-queue admission path the ring turned into O(1)
/// pointer arithmetic.
fn bench_inflight(ring: bool, iters: u64) -> f64 {
    let config = DramConfig::paper();
    let depth = config.queue_depth;
    let mut new_queue = InflightRing::new(depth);
    let mut reference = ReferenceInflightQueue::new();
    let mut bus_busy_until = 0u64;
    let mut now = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let admitted = if ring {
            new_queue.drain(now);
            new_queue.admit(now)
        } else {
            reference.drain(now);
            reference.admit(now, depth)
        };
        let done = (admitted + config.latency).max(bus_busy_until + config.cycles_per_transfer);
        bus_busy_until = done;
        if ring {
            new_queue.push(done);
        } else {
            reference.push(done);
        }
        std::hint::black_box(admitted);
        now += 3;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_inflight_ring(iters: u64) -> f64 {
    bench_inflight(true, iters)
}

fn bench_inflight_reference(iters: u64) -> f64 {
    bench_inflight(false, iters)
}

/// `DelayBreakdown::record` in isolation: the branchless class-indexed
/// array update that replaced the branchy per-field one, fed an
/// unpredictable class/cycles mix.
fn bench_stats_record(iters: u64) -> f64 {
    let mut delay = DelayBreakdown::default();
    let mut state = 0xbb67_ae85_84ca_a73bu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let start = Instant::now();
    for _ in 0..iters {
        let r = next();
        delay.record(r & 1 == 0, r >> 58);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(delay.total_cycles());
    elapsed.as_nanos() as f64 / iters as f64
}

/// The L2-MSHR per-miss sequence (retire + lookup + register) with the
/// cached-earliest early exit: on the common nothing-has-completed path
/// each retire is a single compare instead of a map scan.
fn bench_mshr_cycle(iters: u64) -> f64 {
    let mut mshr = MshrFile::new(64);
    let mut state = 0x3c6e_f372_fe94_f82bu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut now = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let r = next();
        let block = BlockAddr::new(r % 4096);
        mshr.retire(now);
        if mshr.lookup(block).is_none() {
            std::hint::black_box(mshr.register(block, now, now + 400));
        }
        now += 3;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The run-loop scheduling cost end to end: a sixteen-core no-prefetcher
/// system consuming records, timed per record, under the given scheduler.
/// The event-heap and reference-scan variants run the identical workload,
/// so their ratio isolates the `min_by_key`-scan removal; sixteen cores
/// (vs the paper's four) is where scan cost is actually visible — the
/// heap's advantage grows with core count while the scan's cost is linear
/// in it.
fn bench_schedule(scheduler: Scheduler, iters: u64) -> f64 {
    let mut config = SimConfig::quick(PrefetcherKind::None);
    config.cores = 16;
    config.hierarchy = HierarchyConfig::paper_baseline(16);
    // Windows are irrelevant: the bench drives phases directly.
    config.warmup_records = 0;
    config.measure_records = 1;
    let cores = config.cores as u64;
    let mut system = System::new(config, &WorkloadId::Qry1.params());
    system.set_scheduler(scheduler);
    let start = Instant::now();
    system.run_records(iters / cores);
    start.elapsed().as_nanos() as f64 / ((iters / cores) * cores) as f64
}

fn bench_schedule_heap(iters: u64) -> f64 {
    bench_schedule(Scheduler::EventHeap, iters)
}

fn bench_schedule_reference(iters: u64) -> f64 {
    bench_schedule(Scheduler::ReferenceScan, iters)
}

/// The L1-hit fast path ([`MemoryHierarchy::access_data`]) against the
/// general requester-classified entry point, on a pure-hit stream: the
/// ratio isolates the classification-skipping and scratch-buffer work.
fn bench_hit_path(general: bool, iters: u64) -> f64 {
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::paper_baseline(1));
    let mut evictions = EvictionBuffer::default();
    let blocks: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
    for &addr in &blocks {
        hierarchy.access_data(0, addr, AccessKind::Read, 0, &mut evictions);
    }
    let start = Instant::now();
    for now in 0..iters {
        let addr = blocks[(now % 64) as usize];
        let latency = if general {
            hierarchy
                .access(
                    Requester::data(0),
                    addr,
                    AccessKind::Read,
                    DataClass::Application,
                    now,
                )
                .latency
        } else {
            hierarchy.access_data(0, addr, AccessKind::Read, now, &mut evictions).latency
        };
        std::hint::black_box(latency);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_hit_fastpath(iters: u64) -> f64 {
    bench_hit_path(false, iters)
}

fn bench_hit_general(iters: u64) -> f64 {
    bench_hit_path(true, iters)
}

/// One fleet-throughput measurement: the small grid swept through the
/// work-stealing driver at smoke scale.
struct FleetBench {
    points: usize,
    threads: usize,
    runs_per_sec: f64,
}

fn bench_fleet(threads: usize) -> FleetBench {
    let grid = FleetGrid {
        kinds: vec![PrefetcherKind::None, PrefetcherKind::sms_pv8()],
        workloads: vec![
            FleetWorkload::Homogeneous(WorkloadId::Qry1),
            FleetWorkload::Homogeneous(WorkloadId::Apache),
        ],
        cycles_per_transfer: vec![0, 64],
        throttle: false,
    };
    let mut sink = Vec::new();
    let summary = run_fleet(grid.points(), Scale::Smoke, threads, &mut sink);
    FleetBench {
        points: summary.points,
        threads: summary.threads,
        runs_per_sec: summary.runs_per_sec,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One `(prefetcher, workload, records_per_sec, digest)` row parsed out of
/// a previously-recorded benchmark JSON.
struct BaselineRow {
    prefetcher: String,
    workload: String,
    records_per_sec: f64,
    digest: Option<String>,
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `end_to_end` rows of a benchmark JSON. The emitter writes one
/// row per line, so a line-oriented scan is sufficient and keeps the binary
/// free of a JSON dependency (the build environment has no crates.io).
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineRow {
                prefetcher: extract_str(line, "\"prefetcher\": \"")?,
                workload: extract_str(line, "\"workload\": \"")?,
                records_per_sec: extract_num(line, "\"records_per_sec\": ")?,
                digest: extract_str(line, "\"digest\": \""),
            })
        })
        .collect()
}

/// Finds the `ns_per_op` of the named `micro` row in a benchmark JSON, via
/// the same line-oriented scan as [`parse_baseline`].
fn parse_baseline_micro(text: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    text.lines()
        .find(|line| line.contains(&needle))
        .and_then(|line| extract_num(line, "\"ns_per_op\": "))
}

/// Geometric mean of `values`; 1.0 for an empty slice. A non-positive or
/// non-finite input (e.g. a corrupt baseline row) poisons the result to NaN
/// through `ln()`, which callers must treat as failure, never success.
fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Compares the fresh end-to-end rows against a recorded baseline. Returns
/// the geometric-mean records/sec ratio over matching rows, or `None` when
/// nothing matches.
fn check_against(runs: &[EndToEnd], baseline: &[BaselineRow]) -> Option<f64> {
    let mut ratios = Vec::new();
    for run in runs {
        let Some(base) = baseline
            .iter()
            .find(|b| b.prefetcher == run.prefetcher && b.workload == run.workload)
        else {
            continue;
        };
        ratios.push(run.records_per_sec / base.records_per_sec);
        if let Some(expected) = &base.digest {
            if *expected != run.digest {
                eprintln!(
                    "digest moved for {} {}: baseline {} vs current {} \
                     (expected for behaviour-changing PRs, forbidden for perf-only PRs)",
                    run.prefetcher, run.workload, expected, run.digest
                );
            }
        }
    }
    if ratios.is_empty() {
        return None;
    }
    Some(geomean(&ratios))
}

/// `--profile`: a lightweight counter mode that attributes the Queued
/// access path's cost across its hot components. Each component is timed
/// in isolation on a representative stream behind `std::hint::black_box`
/// fences — the rows are attribution hints for deciding where to cut, not
/// a strict partition of the end-to-end figure (components overlap and
/// isolation removes cache pressure the full path has). For
/// instruction-level truth the printed `perf`/flamegraph recipe applies.
fn run_profile() {
    const E2E_ITERS: u64 = 1_000_000;
    const COMPONENT_ITERS: u64 = 4_000_000;
    eprintln!("profiling the Queued access path (black_box-fenced sub-timers, best of 3)...");
    let best =
        |f: fn(u64) -> f64, iters: u64| (0..3).map(|_| f(iters)).fold(f64::INFINITY, f64::min);
    let total_queued = best(bench_hierarchy_queued, E2E_ITERS);
    let total_ideal = best(bench_hierarchy_ideal, E2E_ITERS);
    let rows: &[(&str, f64, &str)] = &[
        (
            "hierarchy/access_queued",
            total_queued,
            "end to end: 4-core contended read/write stream, 1 GB footprint",
        ),
        (
            "hierarchy/access_ideal",
            total_ideal,
            "the same stream with contention off (the floor)",
        ),
        (
            "memory/service_queued",
            best(bench_memory_service, E2E_ITERS * 2),
            "DRAM channel service incl. in-flight ring drain/admit",
        ),
        (
            "memory/inflight_ring",
            best(bench_inflight_ring, COMPONENT_ITERS),
            "the in-flight ring alone (drain + admit + push, queue at depth)",
        ),
        (
            "hierarchy/classify",
            best(bench_classify_hoisted, COMPONENT_ITERS),
            "PV-region classification (cached-bounds compare)",
        ),
        (
            "stats/delay_record",
            best(bench_stats_record, COMPONENT_ITERS),
            "DelayBreakdown::record (branchless class-indexed update)",
        ),
        (
            "mshr/retire_register",
            best(bench_mshr_cycle, COMPONENT_ITERS),
            "per-miss MSHR retire + lookup + register (cached earliest)",
        ),
    ];
    eprintln!();
    eprintln!("{:<26} {:>10}  note", "component", "ns/op");
    for (name, ns, note) in rows {
        eprintln!("{name:<26} {ns:>10.2}  {note}");
    }
    eprintln!();
    eprintln!(
        "queued/ideal overhead: {:.3}x ({:.1} vs {:.1} ns/op)",
        total_queued / total_ideal,
        total_queued,
        total_ideal
    );
    eprintln!();
    eprintln!("for instruction-level attribution, use hardware counters:");
    eprintln!("  cargo build --release -p pv-experiments --bin perfbench");
    eprintln!("  perf stat -e cycles,instructions,branches,branch-misses \\");
    eprintln!("      target/release/perfbench /tmp/bench.json");
    eprintln!("  perf record -g --call-graph dwarf target/release/perfbench /tmp/bench.json");
    eprintln!("  perf report --no-children");
    eprintln!("flamegraph (cargo-flamegraph, if installed):");
    eprintln!("  cargo flamegraph --release -p pv-experiments --bin perfbench -- /tmp/bench.json");
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                run_profile();
                return;
            }
            "--check-against" => match args.next() {
                Some(path) => baseline_path = Some(path),
                None => {
                    eprintln!("--check-against requires a path");
                    std::process::exit(2);
                }
            },
            // A mistyped flag must not silently become the output path:
            // that would both disable the regression gate and overwrite
            // whatever file the typo names.
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag '{flag}' (expected [out.json] [--check-against FILE] \
                     [--profile])"
                );
                std::process::exit(2);
            }
            path if out_path.is_none() => out_path = Some(path.to_owned()),
            path => {
                eprintln!("unexpected extra argument '{path}'");
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_PR10.json".to_owned());

    let mut runs = Vec::new();
    for kind in all_kinds() {
        for workload in [WorkloadId::Apache, WorkloadId::Qry1] {
            let config = smoke_config(kind.clone());
            let records = (config.warmup_records + config.measure_records) * config.cores as u64;
            // Best of five repetitions: wall-clock noise (CI runners share
            // cores) must not read as a regression in the tracked trend.
            let mut seconds = f64::INFINITY;
            let mut metrics = None;
            for _ in 0..5 {
                let start = Instant::now();
                let run = run_workload(&config, &workload.params());
                seconds = seconds.min(start.elapsed().as_secs_f64());
                metrics = Some(run);
            }
            let metrics = metrics.expect("at least one repetition ran");
            let row = EndToEnd {
                prefetcher: kind.label(),
                workload: workload.name().to_owned(),
                records,
                seconds,
                records_per_sec: records as f64 / seconds,
                pre_refactor_records_per_sec: PRE_REFACTOR_RECORDS_PER_SEC
                    .iter()
                    .find(|(p, w, _)| *p == kind.label() && *w == workload.name())
                    .map(|(_, _, v)| *v),
                digest: metrics.digest(),
            };
            eprintln!(
                "end_to_end {:<14} {:<8} {:>10.0} records/sec ({})",
                row.prefetcher, row.workload, row.records_per_sec, row.digest
            );
            runs.push(row);
        }
    }

    // Replay path: decode pre-recorded binary traces and simulate from
    // them. The row times the full pipeline (header parse + per-record
    // bit unpacking + simulation); the digest matches the live run's by
    // construction, so the row also guards record/replay fidelity.
    {
        let kind = PrefetcherKind::sms_pv8();
        let workload = WorkloadId::Qry1;
        let config = smoke_config(kind.clone());
        let per_core = config.warmup_records + config.measure_records;
        let traces: Vec<Vec<u8>> = (0..config.cores)
            .map(|core| {
                record_generator(&workload.params(), config.seed, core as u32, per_core)
                    .expect("generated records fit the default trace layout")
            })
            .collect();
        let records = per_core * config.cores as u64;
        let mut seconds = f64::INFINITY;
        let mut metrics = None;
        for _ in 0..5 {
            let start = Instant::now();
            let streams: Vec<Box<dyn AccessStream>> = traces
                .iter()
                .map(|bytes| {
                    Box::new(ReplayStream::new(bytes.clone()).expect("valid trace"))
                        as Box<dyn AccessStream>
                })
                .collect();
            let run = run_streams(&config, streams);
            seconds = seconds.min(start.elapsed().as_secs_f64());
            metrics = Some(run);
        }
        let metrics = metrics.expect("at least one repetition ran");
        let row = EndToEnd {
            prefetcher: kind.label(),
            workload: format!("{}-replay", workload.name()),
            records,
            seconds,
            records_per_sec: records as f64 / seconds,
            pre_refactor_records_per_sec: None,
            digest: metrics.digest(),
        };
        eprintln!(
            "end_to_end {:<14} {:<8} {:>10.0} records/sec ({})",
            row.prefetcher, row.workload, row.records_per_sec, row.digest
        );
        runs.push(row);
    }

    // Queued-contention end-to-end: the (SMS-PV8, Qry1) smoke run under
    // `ContentionModel::Queued` — the mode every bandwidth/throttle/fleet
    // experiment actually runs. Its ratio against the Ideal twin above is
    // the summary's `end_to_end_queued_over_ideal`, tracking what the
    // contended path costs where it is actually paid.
    {
        let kind = PrefetcherKind::sms_pv8();
        let workload = WorkloadId::Qry1;
        let mut config = smoke_config(kind.clone());
        config.hierarchy = config.hierarchy.with_contention(ContentionModel::Queued);
        let records = (config.warmup_records + config.measure_records) * config.cores as u64;
        let mut seconds = f64::INFINITY;
        let mut metrics = None;
        for _ in 0..5 {
            let start = Instant::now();
            let run = run_workload(&config, &workload.params());
            seconds = seconds.min(start.elapsed().as_secs_f64());
            metrics = Some(run);
        }
        let metrics = metrics.expect("at least one repetition ran");
        let row = EndToEnd {
            prefetcher: kind.label(),
            workload: format!("{}-queued", workload.name()),
            records,
            seconds,
            records_per_sec: records as f64 / seconds,
            pre_refactor_records_per_sec: None,
            digest: metrics.digest(),
        };
        eprintln!(
            "end_to_end {:<14} {:<8} {:>10.0} records/sec ({})",
            row.prefetcher, row.workload, row.records_per_sec, row.digest
        );
        runs.push(row);
    }

    // Interleave the current and reference measurements in adjacent windows
    // and keep the best of each: a burst of background load then penalises
    // both sides instead of skewing the ratio.
    let interleaved = |new: fn(u64) -> f64, reference: fn(u64) -> f64, iters: u64| {
        let (mut best_new, mut best_ref) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..5 {
            best_new = best_new.min(new(iters));
            best_ref = best_ref.min(reference(iters));
        }
        (best_new, best_ref)
    };
    let (codec, codec_ref) = interleaved(bench_codec, bench_codec_reference, 200_000);
    let (sa, sa_ref) = interleaved(bench_set_assoc, bench_set_assoc_reference, 1_000_000);
    let (hier_ideal, hier_queued) =
        interleaved(bench_hierarchy_ideal, bench_hierarchy_queued, 2_000_000);
    let memory_service =
        (0..5).map(|_| bench_memory_service(2_000_000)).fold(f64::INFINITY, f64::min);
    let (schedule, schedule_ref) =
        interleaved(bench_schedule_heap, bench_schedule_reference, 400_000);
    let (hit_fast, hit_general) = interleaved(bench_hit_fastpath, bench_hit_general, 4_000_000);
    let (classify, classify_ref) =
        interleaved(bench_classify_hoisted, bench_classify_reference, 8_000_000);
    let (inflight, inflight_ref) =
        interleaved(bench_inflight_ring, bench_inflight_reference, 8_000_000);
    let micros = vec![
        Micro {
            name: "packing/round_trip".to_owned(),
            ns_per_op: codec,
            reference_ns_per_op: Some(codec_ref),
        },
        Micro {
            name: "set_assoc/get_insert".to_owned(),
            ns_per_op: sa,
            reference_ns_per_op: Some(sa_ref),
        },
        Micro {
            name: "hierarchy/access_ideal".to_owned(),
            ns_per_op: hier_ideal,
            reference_ns_per_op: None,
        },
        Micro {
            name: "hierarchy/access_queued".to_owned(),
            ns_per_op: hier_queued,
            reference_ns_per_op: None,
        },
        Micro {
            name: "memory/service_queued".to_owned(),
            ns_per_op: memory_service,
            reference_ns_per_op: None,
        },
        Micro {
            name: "system/schedule".to_owned(),
            ns_per_op: schedule,
            reference_ns_per_op: Some(schedule_ref),
        },
        Micro {
            name: "hierarchy/access_hit_fastpath".to_owned(),
            ns_per_op: hit_fast,
            reference_ns_per_op: Some(hit_general),
        },
        Micro {
            name: "hierarchy/classify_hoisted".to_owned(),
            ns_per_op: classify,
            reference_ns_per_op: Some(classify_ref),
        },
        Micro {
            name: "memory/inflight_ring".to_owned(),
            ns_per_op: inflight,
            reference_ns_per_op: Some(inflight_ref),
        },
    ];
    for micro in &micros {
        match micro.reference_ns_per_op {
            Some(reference) => eprintln!(
                "micro {:<24} {:>8.1} ns/op vs {:>8.1} ns/op reference ({:.2}x)",
                micro.name,
                micro.ns_per_op,
                reference,
                micro.speedup().expect("reference present")
            ),
            None => eprintln!("micro {:<24} {:>8.1} ns/op", micro.name, micro.ns_per_op),
        }
    }

    // Fleet throughput: the same small grid on one thread and on all host
    // threads. Serial first so its cache-warming effects (none — runs are
    // independent) cannot flatter the parallel figure.
    let serial_fleet = bench_fleet(1);
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let parallel_fleet = bench_fleet(host_threads);
    let scaling_efficiency =
        (parallel_fleet.runs_per_sec / serial_fleet.runs_per_sec) / parallel_fleet.threads as f64;
    eprintln!(
        "fleet {} points: {:.2} runs/sec on 1 thread, {:.2} runs/sec on {} threads \
         ({:.0}% scaling efficiency)",
        serial_fleet.points,
        serial_fleet.runs_per_sec,
        parallel_fleet.runs_per_sec,
        parallel_fleet.threads,
        scaling_efficiency * 100.0
    );

    let end_to_end_speedups: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.pre_refactor_records_per_sec.map(|b| r.records_per_sec / b))
        .collect();
    let speedup_geomean = geomean(&end_to_end_speedups);
    let micro_by_name =
        |name: &str| micros.iter().find(|m| m.name == name).expect("known micro name");
    let queued_overhead = micro_by_name("hierarchy/access_queued").ns_per_op
        / micro_by_name("hierarchy/access_ideal").ns_per_op;
    // The end-to-end twin of `queued_overhead`: the full simulator on the
    // same (prefetcher, workload) point, Ideal records/sec over Queued.
    let run_rps = |workload: &str| {
        runs.iter()
            .find(|r| r.prefetcher == "SMS-PV8" && r.workload == workload)
            .expect("known end-to-end row")
            .records_per_sec
    };
    let end_to_end_queued_over_ideal = run_rps("Qry1") / run_rps("Qry1-queued");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pv-perfbench/2\",\n");
    json.push_str("  \"scale\": \"smoke\",\n");
    json.push_str("  \"baseline_commit\": \"3b12054 (pre allocation-free refactor)\",\n");
    json.push_str(
        "  \"baseline_note\": \"pre_refactor_records_per_sec and the derived speedups were \
         recorded on the machine that produced the committed BENCH_PR2.json; on other hosts \
         (e.g. CI runners) only records_per_sec trends, micro speedups (both sides measured \
         live), and digests are comparable\",\n",
    );
    json.push_str("  \"end_to_end\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"prefetcher\": \"{}\", \"workload\": \"{}\", \"records\": {}, \
             \"seconds\": {:.4}, \"records_per_sec\": {:.0}, {}\"digest\": \"{}\"}}{}\n",
            json_escape(&r.prefetcher),
            json_escape(&r.workload),
            r.records,
            r.seconds,
            r.records_per_sec,
            match r.pre_refactor_records_per_sec {
                Some(b) => format!(
                    "\"pre_refactor_records_per_sec\": {:.0}, \"speedup\": {:.3}, ",
                    b,
                    r.records_per_sec / b
                ),
                None => String::new(),
            },
            json_escape(&r.digest),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"micro\": [\n");
    for (i, m) in micros.iter().enumerate() {
        let reference = match (m.reference_ns_per_op, m.speedup()) {
            (Some(reference), Some(speedup)) => {
                format!(", \"reference_ns_per_op\": {reference:.1}, \"speedup\": {speedup:.3}")
            }
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}{}}}{}\n",
            json_escape(&m.name),
            m.ns_per_op,
            reference,
            if i + 1 < micros.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fleet\": {{\"points\": {}, \"runs_per_sec_1t\": {:.2}, \"threads\": {}, \
         \"runs_per_sec_nt\": {:.2}, \"scaling_efficiency\": {:.3}}},\n",
        serial_fleet.points,
        serial_fleet.runs_per_sec,
        parallel_fleet.threads,
        parallel_fleet.runs_per_sec,
        scaling_efficiency,
    ));
    json.push_str(&format!(
        "  \"summary\": {{\"end_to_end_speedup_geomean\": {:.3}, \"packing_speedup\": {:.3}, \
         \"set_assoc_speedup\": {:.3}, \"hierarchy_queued_overhead\": {:.3}, \
         \"end_to_end_queued_over_ideal\": {:.3}, \"classify_hoisted_speedup\": {:.3}, \
         \"inflight_ring_speedup\": {:.3}}}\n",
        speedup_geomean,
        micro_by_name("packing/round_trip").speedup().expect("has reference"),
        micro_by_name("set_assoc/get_insert").speedup().expect("has reference"),
        queued_overhead,
        end_to_end_queued_over_ideal,
        micro_by_name("hierarchy/classify_hoisted").speedup().expect("has reference"),
        micro_by_name("memory/inflight_ring").speedup().expect("has reference"),
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    eprintln!(
        "wrote {out_path}: end-to-end geomean {:.2}x vs pre-refactor, queued-contention \
         hierarchy overhead {:.2}x (end-to-end queued/ideal {:.2}x)",
        speedup_geomean, queued_overhead, end_to_end_queued_over_ideal,
    );

    // Regression gate: compare against a committed baseline JSON.
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("failed to read baseline {path}: {e}"));
        let baseline = parse_baseline(&text);
        match check_against(&runs, &baseline) {
            Some(ratio) => {
                eprintln!(
                    "check-against {path}: end-to-end records/sec geomean ratio {ratio:.3} \
                     (fail threshold 0.75)"
                );
                // A NaN ratio (corrupt baseline) must fail the gate,
                // not slip through a `<` comparison.
                if ratio.is_nan() || ratio < 0.75 {
                    eprintln!("FAIL: end-to-end throughput regressed more than 25% vs {path}");
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("FAIL: no matching end_to_end rows found in {path}");
                std::process::exit(1);
            }
        }
        // Dedicated contended-path gate: the `hierarchy/access_queued` micro
        // must not regress behind the end-to-end geomean (the Ideal rows
        // dominate it, so a Queued-only slowdown could otherwise hide). Both
        // sides are wall-clock ns on the same host, so the threshold is
        // looser than the ratio gate above.
        if let Some(base_queued) = parse_baseline_micro(&text, "hierarchy/access_queued") {
            let current = micro_by_name("hierarchy/access_queued").ns_per_op;
            let ratio = current / base_queued;
            eprintln!(
                "check-against {path}: hierarchy/access_queued {current:.1} ns/op vs \
                 baseline {base_queued:.1} ns/op (ratio {ratio:.3}, fail threshold 1.50)"
            );
            // As above, a NaN ratio (corrupt baseline row) must fail.
            if ratio.is_nan() || ratio > 1.5 {
                eprintln!("FAIL: the Queued contended micro regressed more than 50% vs {path}");
                std::process::exit(1);
            }
        }
    }
}
