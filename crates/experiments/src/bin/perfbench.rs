//! Performance harness: establishes and tracks the simulator's perf
//! trajectory.
//!
//! Times smoke-scale end-to-end runs for every [`PrefetcherKind`], plus
//! micro-benchmarks of the packing codec and the set-associative array
//! against the retained pre-flattening reference implementations, and writes
//! the results as `BENCH_PR2.json` (schema documented in the README's
//! Performance section).
//!
//! Each end-to-end row also carries a digest of the run's `RunMetrics`
//! (cycles, misses, traffic, coverage): optimisation PRs must keep those
//! digests unchanged — speed may move, simulated outcomes may not.
//!
//! Usage: `cargo run --release -p pv-experiments --bin perfbench [out.json]`

use pv_core::{decode_set, encode_set, packing, PvLayout, PvSet, RawEntry};
use pv_mem::{ReferenceSetAssociative, ReplacementKind, SetAssociative};
use pv_sim::{run_workload, PrefetcherKind, RunMetrics, SimConfig};
use pv_workloads::WorkloadId;
use std::time::Instant;

/// End-to-end records/sec measured at commit 3b12054 (the last commit before
/// the allocation-free refactor), same harness, same machine class, keyed by
/// `(prefetcher label, workload name)`. Kept so the JSON always reports the
/// improvement relative to the tracked pre-refactor baseline.
const PRE_REFACTOR_RECORDS_PER_SEC: &[(&str, &str, f64)] = &[
    ("NoPrefetch", "Apache", 1_782_229.0),
    ("NoPrefetch", "Qry1", 2_034_368.0),
    ("SMS-1K-16a", "Apache", 1_399_772.0),
    ("SMS-1K-16a", "Qry1", 1_566_724.0),
    ("SMS-1K-11a", "Apache", 1_405_604.0),
    ("SMS-1K-11a", "Qry1", 1_461_953.0),
    ("SMS-16-11a", "Apache", 1_394_440.0),
    ("SMS-16-11a", "Qry1", 1_489_745.0),
    ("SMS-8-11a", "Apache", 1_474_434.0),
    ("SMS-8-11a", "Qry1", 1_677_657.0),
    ("SMS-Infinite", "Apache", 1_515_066.0),
    ("SMS-Infinite", "Qry1", 1_592_162.0),
    ("SMS-PV8", "Apache", 1_348_113.0),
    ("SMS-PV8", "Qry1", 1_414_554.0),
    ("SMS-PV16", "Apache", 1_293_504.0),
    ("SMS-PV16", "Qry1", 1_554_254.0),
    ("Markov-1K", "Apache", 872_926.0),
    ("Markov-1K", "Qry1", 1_075_464.0),
    ("Markov-PV8", "Apache", 695_109.0),
    ("Markov-PV8", "Qry1", 892_809.0),
];

fn all_kinds() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::sms_1k_16a(),
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
        PrefetcherKind::sms_infinite(),
        PrefetcherKind::sms_pv8(),
        PrefetcherKind::sms_pv16(),
        PrefetcherKind::markov_1k(),
        PrefetcherKind::markov_pv8(),
    ]
}

fn smoke_config(prefetcher: PrefetcherKind) -> SimConfig {
    let mut config = SimConfig::quick(prefetcher);
    config.warmup_records = 20_000;
    config.measure_records = 30_000;
    config
}

/// A stable one-line digest of the simulated outcome; must not move across
/// perf-only PRs.
fn digest(metrics: &RunMetrics) -> String {
    format!(
        "cycles={}|instr={}|l2req={}+{}|l2miss={}+{}|l2wb={}+{}|dram={}r{}w|cov={}c{}u{}o|pf={}",
        metrics.elapsed_cycles,
        metrics.total_instructions,
        metrics.hierarchy.l2_requests.application,
        metrics.hierarchy.l2_requests.predictor,
        metrics.hierarchy.l2_misses.application,
        metrics.hierarchy.l2_misses.predictor,
        metrics.hierarchy.l2_writebacks.application,
        metrics.hierarchy.l2_writebacks.predictor,
        metrics.hierarchy.dram_reads,
        metrics.hierarchy.dram_writes,
        metrics.coverage.covered,
        metrics.coverage.uncovered,
        metrics.coverage.overpredictions,
        metrics.prefetches_issued,
    )
}

struct EndToEnd {
    prefetcher: String,
    workload: String,
    records: u64,
    seconds: f64,
    records_per_sec: f64,
    pre_refactor_records_per_sec: Option<f64>,
    digest: String,
}

struct Micro {
    name: String,
    ns_per_op: f64,
    reference_ns_per_op: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        self.reference_ns_per_op / self.ns_per_op
    }
}

fn full_sms_set(layout: &PvLayout) -> PvSet<RawEntry> {
    let mut set = PvSet::new(layout.entries_per_block());
    for i in 0..layout.entries_per_block() as u64 {
        set.insert(RawEntry::new(i | 0x400, 0x8000_0001 | (i << 8)));
    }
    set
}

/// Round-trip (encode + decode) cost of the word-level codec.
fn bench_codec(iters: u64) -> f64 {
    let layout = PvLayout::new(11, 32, 64);
    let set = full_sms_set(&layout);
    let start = Instant::now();
    for _ in 0..iters {
        let block = encode_set(&set, &layout);
        let decoded: PvSet<RawEntry> = decode_set(&block, &layout);
        std::hint::black_box(decoded);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Same round-trip over the retained bit-at-a-time reference codec.
fn bench_codec_reference(iters: u64) -> f64 {
    let layout = PvLayout::new(11, 32, 64);
    let set = full_sms_set(&layout);
    let start = Instant::now();
    for _ in 0..iters {
        let block = packing::reference::encode_set(&set, &layout);
        let decoded: PvSet<RawEntry> = packing::reference::decode_set(&block, &layout);
        std::hint::black_box(decoded);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Deterministic get/insert mix over a PHT-shaped array (1024 sets x 11
/// ways, LRU), exercised identically for the flat and reference arrays.
macro_rules! bench_set_assoc_impl {
    ($name:ident, $ty:ident) => {
        fn $name(iters: u64) -> f64 {
            let mut arr: $ty<u64> = $ty::new(1024, 11, ReplacementKind::Lru);
            let mut state = 0x1234_5678_9abc_def0u64;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let start = Instant::now();
            for _ in 0..iters {
                let r = next();
                let set = (r % 1024) as usize;
                let tag = (r >> 10) % 64;
                if r & 1 == 0 {
                    std::hint::black_box(arr.get(set, tag));
                } else {
                    std::hint::black_box(arr.insert(set, tag, r));
                }
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        }
    };
}

bench_set_assoc_impl!(bench_set_assoc, SetAssociative);
bench_set_assoc_impl!(bench_set_assoc_reference, ReferenceSetAssociative);

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_PR2.json".to_owned());

    let mut runs = Vec::new();
    for kind in all_kinds() {
        for workload in [WorkloadId::Apache, WorkloadId::Qry1] {
            let config = smoke_config(kind.clone());
            let records = (config.warmup_records + config.measure_records) * config.cores as u64;
            // Best of five repetitions: wall-clock noise (CI runners share
            // cores) must not read as a regression in the tracked trend.
            let mut seconds = f64::INFINITY;
            let mut metrics = None;
            for _ in 0..5 {
                let start = Instant::now();
                let run = run_workload(&config, &workload.params());
                seconds = seconds.min(start.elapsed().as_secs_f64());
                metrics = Some(run);
            }
            let metrics = metrics.expect("at least one repetition ran");
            let row = EndToEnd {
                prefetcher: kind.label(),
                workload: workload.name().to_owned(),
                records,
                seconds,
                records_per_sec: records as f64 / seconds,
                pre_refactor_records_per_sec: PRE_REFACTOR_RECORDS_PER_SEC
                    .iter()
                    .find(|(p, w, _)| *p == kind.label() && *w == workload.name())
                    .map(|(_, _, v)| *v),
                digest: digest(&metrics),
            };
            eprintln!(
                "end_to_end {:<14} {:<8} {:>10.0} records/sec ({})",
                row.prefetcher, row.workload, row.records_per_sec, row.digest
            );
            runs.push(row);
        }
    }

    // Interleave the current and reference measurements in adjacent windows
    // and keep the best of each: a burst of background load then penalises
    // both sides instead of skewing the ratio.
    let interleaved = |new: fn(u64) -> f64, reference: fn(u64) -> f64, iters: u64| {
        let (mut best_new, mut best_ref) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..5 {
            best_new = best_new.min(new(iters));
            best_ref = best_ref.min(reference(iters));
        }
        (best_new, best_ref)
    };
    let (codec, codec_ref) = interleaved(bench_codec, bench_codec_reference, 200_000);
    let (sa, sa_ref) = interleaved(bench_set_assoc, bench_set_assoc_reference, 1_000_000);
    let micros = vec![
        Micro {
            name: "packing/round_trip".to_owned(),
            ns_per_op: codec,
            reference_ns_per_op: codec_ref,
        },
        Micro {
            name: "set_assoc/get_insert".to_owned(),
            ns_per_op: sa,
            reference_ns_per_op: sa_ref,
        },
    ];
    for micro in &micros {
        eprintln!(
            "micro {:<22} {:>8.1} ns/op vs {:>8.1} ns/op reference ({:.2}x)",
            micro.name,
            micro.ns_per_op,
            micro.reference_ns_per_op,
            micro.speedup()
        );
    }

    let end_to_end_speedups: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.pre_refactor_records_per_sec.map(|b| r.records_per_sec / b))
        .collect();
    let geomean = if end_to_end_speedups.is_empty() {
        1.0
    } else {
        (end_to_end_speedups.iter().map(|s| s.ln()).sum::<f64>() / end_to_end_speedups.len() as f64)
            .exp()
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pv-perfbench/1\",\n");
    json.push_str("  \"scale\": \"smoke\",\n");
    json.push_str("  \"baseline_commit\": \"3b12054 (pre allocation-free refactor)\",\n");
    json.push_str(
        "  \"baseline_note\": \"pre_refactor_records_per_sec and the derived speedups were \
         recorded on the machine that produced the committed BENCH_PR2.json; on other hosts \
         (e.g. CI runners) only records_per_sec trends, micro speedups (both sides measured \
         live), and digests are comparable\",\n",
    );
    json.push_str("  \"end_to_end\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"prefetcher\": \"{}\", \"workload\": \"{}\", \"records\": {}, \
             \"seconds\": {:.4}, \"records_per_sec\": {:.0}, {}\"digest\": \"{}\"}}{}\n",
            json_escape(&r.prefetcher),
            json_escape(&r.workload),
            r.records,
            r.seconds,
            r.records_per_sec,
            match r.pre_refactor_records_per_sec {
                Some(b) => format!(
                    "\"pre_refactor_records_per_sec\": {:.0}, \"speedup\": {:.3}, ",
                    b,
                    r.records_per_sec / b
                ),
                None => String::new(),
            },
            json_escape(&r.digest),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"micro\": [\n");
    for (i, m) in micros.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"reference_ns_per_op\": {:.1}, \
             \"speedup\": {:.3}}}{}\n",
            json_escape(&m.name),
            m.ns_per_op,
            m.reference_ns_per_op,
            m.speedup(),
            if i + 1 < micros.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"summary\": {{\"end_to_end_speedup_geomean\": {:.3}, \"packing_speedup\": {:.3}, \
         \"set_assoc_speedup\": {:.3}}}\n",
        geomean,
        micros[0].speedup(),
        micros[1].speedup()
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    eprintln!(
        "wrote {out_path}: end-to-end geomean {:.2}x, packing {:.2}x, set-assoc {:.2}x",
        geomean,
        micros[0].speedup(),
        micros[1].speedup()
    );
}
