//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce all [--scale quick|paper|smoke] [--threads N]
//! reproduce fig4 fig9 --scale paper
//! reproduce --list
//! ```

use pv_experiments::{Experiment, Runner, Scale};
use std::time::Instant;

fn print_usage() {
    println!("Usage: reproduce [EXPERIMENT...] [--scale quick|paper|smoke] [--threads N] [--list]");
    println!();
    println!("Experiments:");
    for experiment in Experiment::all() {
        println!("  {}", experiment.name());
    }
    println!("  all        run every experiment");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::from_env();
    let mut threads: Option<usize> = None;
    let mut selected: Vec<Experiment> = Vec::new();
    let mut run_all = false;

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--list" => {
                for experiment in Experiment::all() {
                    println!("{}", experiment.name());
                }
                return;
            }
            "--scale" => {
                let value = iter.next().map(String::as_str).unwrap_or("");
                match Scale::from_name(value) {
                    Some(parsed) => scale = parsed,
                    None => {
                        eprintln!("unknown scale '{value}' (expected quick, paper or smoke)");
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => {
                let value = iter.next().map(String::as_str).unwrap_or("");
                match value.parse() {
                    Ok(parsed) => threads = Some(parsed),
                    Err(_) => {
                        eprintln!("invalid thread count '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "all" => run_all = true,
            name => match Experiment::from_name(name) {
                Some(experiment) => selected.push(experiment),
                None => {
                    eprintln!("unknown experiment '{name}'");
                    print_usage();
                    std::process::exit(2);
                }
            },
        }
    }

    if run_all || selected.is_empty() {
        selected = Experiment::all();
    }

    let runner = match threads {
        Some(threads) => Runner::new(scale, threads),
        None => Runner::with_default_threads(scale),
    };

    println!("# Predictor Virtualization — reproduction report");
    println!();
    println!(
        "Scale: {:?}; experiments: {}",
        runner.scale(),
        selected.iter().map(|e| e.name()).collect::<Vec<_>>().join(", ")
    );
    println!();
    let start = Instant::now();
    for experiment in selected {
        let t0 = Instant::now();
        let report = experiment.run(&runner);
        println!("{report}");
        eprintln!("[{}] finished in {:.1?}", experiment.name(), t0.elapsed());
    }
    eprintln!(
        "Total: {:.1?} ({} simulations executed)",
        start.elapsed(),
        runner.runs_executed()
    );
}
