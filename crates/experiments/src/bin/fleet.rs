//! Fleet sweep CLI: expand a configuration grid and drain it over
//! work-stealing worker threads, streaming JSON Lines.
//!
//! ```text
//! cargo run --release -p pv-experiments --bin fleet -- \
//!     [--threads N] [--scale quick|paper|smoke] \
//!     [--kinds none,sms-pv8,markov-pv8,composite-shared8] \
//!     [--workloads Apache,DB2,Qry1,Qry17] \
//!     [--cpt 0,32,64,128] \
//!     [--mix Apache+DB2+Qry1+Qry17] \
//!     [--scenarios] [--throttle] [--out sweep.jsonl]
//! ```
//!
//! Defaults sweep the 64-point grid of `FleetGrid::default_grid` at the
//! `PV_REPRO_SCALE` scale over all available host threads. `--cpt 0` is the
//! paper's `Ideal` fixed-latency DRAM; non-zero values run `Queued`
//! contention at that cycles-per-transfer. `--scenarios` appends the
//! non-stationary scenario compositions as additional workload points;
//! `--throttle` additionally sweeps every throttleable kind under the
//! default feedback policy. Rows carry no timing, so
//! `grep '"type": "run"' out.jsonl | sort` is byte-stable across thread
//! counts; wall-clock throughput lives in the summary footer.

use pv_experiments::fleet::{
    default_scenarios, kind_names, parse_kind, parse_workload, run_fleet, FleetGrid, FleetWorkload,
};
use pv_experiments::Scale;

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| fail(&format!("{flag} requires a value")))
}

fn main() {
    let mut grid = FleetGrid::default_grid();
    let mut scale = Scale::from_env();
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut out_path: Option<String> = None;
    let mut scenarios = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = next_value(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads requires a positive integer"));
                if threads == 0 {
                    fail("--threads requires a positive integer");
                }
            }
            "--scale" => {
                let name = next_value(&mut args, "--scale");
                scale = Scale::from_name(&name)
                    .unwrap_or_else(|| fail("--scale expects quick, paper or smoke"));
            }
            "--kinds" => {
                let list = next_value(&mut args, "--kinds");
                grid.kinds = list
                    .split(',')
                    .map(|name| {
                        parse_kind(name.trim()).unwrap_or_else(|| {
                            fail(&format!(
                                "unknown kind '{}' (expected one of {}, each optionally \
                                 suffixed -throttled)",
                                name.trim(),
                                kind_names().join(", ")
                            ))
                        })
                    })
                    .collect();
            }
            "--workloads" => {
                let list = next_value(&mut args, "--workloads");
                grid.workloads = list
                    .split(',')
                    .map(|name| {
                        parse_workload(name.trim())
                            .map(FleetWorkload::Homogeneous)
                            .unwrap_or_else(|| fail(&format!("unknown workload '{}'", name.trim())))
                    })
                    .collect();
            }
            "--cpt" => {
                let list = next_value(&mut args, "--cpt");
                grid.cycles_per_transfer = list
                    .split(',')
                    .map(|v| {
                        v.trim().parse().unwrap_or_else(|_| {
                            fail("--cpt expects comma-separated cycle counts (0 = Ideal)")
                        })
                    })
                    .collect();
            }
            "--mix" => {
                let spec = next_value(&mut args, "--mix");
                let parts: Vec<_> = spec
                    .split('+')
                    .map(|name| {
                        parse_workload(name.trim())
                            .unwrap_or_else(|| fail(&format!("unknown workload '{}'", name.trim())))
                    })
                    .collect();
                let mix: [pv_workloads::WorkloadId; 4] = parts
                    .try_into()
                    .unwrap_or_else(|_| fail("--mix expects exactly four +-joined workloads"));
                grid.workloads.push(FleetWorkload::Mix(mix));
            }
            "--scenarios" => scenarios = true,
            "--throttle" => grid.throttle = true,
            "--out" => out_path = Some(next_value(&mut args, "--out")),
            flag => fail(&format!(
                "unknown argument '{flag}' (expected --threads, --scale, --kinds, --workloads, \
                 --cpt, --mix, --scenarios, --throttle, --out)"
            )),
        }
    }
    if scenarios {
        grid.workloads.extend(default_scenarios(scale));
    }

    let points = grid.points();
    if points.is_empty() {
        fail("the grid expanded to zero points (every axis needs at least one value)");
    }
    eprintln!(
        "fleet: {} points ({} kinds x {} workloads x {} bandwidths{}) over {} threads",
        points.len(),
        grid.kinds.len(),
        grid.workloads.len(),
        grid.cycles_per_transfer.len(),
        if grid.throttle {
            " + throttle axis"
        } else {
            ""
        },
        threads
    );

    let summary = match out_path {
        Some(path) => {
            let file = std::fs::File::create(&path)
                .unwrap_or_else(|e| fail(&format!("failed to create {path}: {e}")));
            let mut sink = std::io::BufWriter::new(file);
            run_fleet(points, scale, threads, &mut sink)
        }
        None => {
            let stdout = std::io::stdout();
            let mut sink = stdout.lock();
            run_fleet(points, scale, threads, &mut sink)
        }
    };
    eprintln!(
        "fleet: {} runs in {:.1}s ({:.2} runs/sec on {} threads)",
        summary.points, summary.seconds, summary.runs_per_sec, summary.threads
    );
}
