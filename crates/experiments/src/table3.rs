//! Table 3: dedicated on-chip storage for the PHT configurations.

use crate::report::{bytes, Table};
use pv_sms::PhtGeometry;

/// The geometries Table 3 lists, with the paper's storage numbers for
/// comparison (tags, patterns, total).
fn paper_rows() -> Vec<(PhtGeometry, &'static str, &'static str, &'static str)> {
    vec![
        (PhtGeometry::paper_1k_16a(), "22KB", "64KB", "86KB"),
        (PhtGeometry::paper_1k_11a(), "15.125KB", "44KB", "59.125KB"),
        (PhtGeometry::small_16_11a(), "374B", "880B", "1.225KB"),
        (PhtGeometry::small_8_11a(), "198B", "440B", "0.623KB"),
    ]
}

/// Computed storage of each configuration, as `(label, tags, patterns,
/// total)` in bytes.
pub fn rows() -> Vec<(String, u64, u64, u64)> {
    paper_rows()
        .into_iter()
        .map(|(geometry, _, _, _)| {
            (
                geometry.label(),
                geometry.tag_bytes().expect("finite geometry"),
                geometry.pattern_bytes().expect("finite geometry"),
                geometry.total_bytes().expect("finite geometry"),
            )
        })
        .collect()
}

/// Renders the measured and paper storage numbers side by side.
pub fn report() -> String {
    let mut table = Table::new("Table 3 — storage for different predictor configurations");
    table.header([
        "Configuration",
        "Tags (measured)",
        "Patterns (measured)",
        "Total (measured)",
        "Tags (paper)",
        "Patterns (paper)",
        "Total (paper)",
    ]);
    for (geometry, paper_tags, paper_patterns, paper_total) in paper_rows() {
        table.row([
            geometry.label(),
            bytes(geometry.tag_bytes().unwrap()),
            bytes(geometry.pattern_bytes().unwrap()),
            bytes(geometry.total_bytes().unwrap()),
            paper_tags.to_owned(),
            paper_patterns.to_owned(),
            paper_total.to_owned(),
        ]);
    }
    table.note(
        "Patterns are 32 bits per entry in this reproduction; the paper's small-table rows appear to account \
         40 bits per entry, which is the only discrepancy.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_table_totals_match_paper_exactly() {
        let rows = rows();
        assert_eq!(rows[0].3, 86 * 1024);
        assert_eq!(rows[1].3, 60_544); // 59.125 KB
    }

    #[test]
    fn report_contains_every_configuration() {
        let report = report();
        for label in ["1K-16a", "1K-11a", "16-11a", "8-11a"] {
            assert!(report.contains(label));
        }
    }
}
