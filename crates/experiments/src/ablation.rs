//! Ablation studies beyond the paper's figures, for the design decisions
//! DESIGN.md calls out: the PVCache capacity and the importance of packing a
//! whole PHT set into one memory block.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_core::PvConfig;
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One PVCache-capacity ablation point.
#[derive(Debug, Clone)]
pub struct PvCacheAblationRow {
    /// Workload name.
    pub workload: String,
    /// Number of PVCache sets.
    pub pvcache_sets: usize,
    /// Coverage achieved.
    pub coverage: f64,
    /// PVCache hit ratio.
    pub pvcache_hit_ratio: f64,
    /// Relative increase in L2 requests over the dedicated 1K-set SMS.
    pub l2_request_increase: f64,
    /// On-chip storage of the proxy in bytes.
    pub storage_bytes: u64,
}

/// The PVCache capacities swept.
pub fn pvcache_sizes() -> [usize; 4] {
    [4, 8, 16, 32]
}

/// The workloads used for the ablation (one capacity-sensitive OLTP workload
/// and one scan).
pub fn workloads() -> [WorkloadId; 2] {
    [WorkloadId::Oracle, WorkloadId::Qry1]
}

/// Runs the PVCache-capacity sweep.
pub fn pvcache_rows(runner: &Runner) -> Vec<PvCacheAblationRow> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in &workloads() {
        specs.push(RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        for &sets in &pvcache_sizes() {
            specs.push(RunSpec::base(
                workload,
                PrefetcherKind::sms_virtualized(PvConfig::pv8().with_pvcache_sets(sets)),
            ));
        }
    }
    runner.prefetch(&specs);
    let mut rows = Vec::new();
    for &workload in &workloads() {
        let dedicated = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        for &sets in &pvcache_sizes() {
            let pv_config = PvConfig::pv8().with_pvcache_sets(sets);
            let metrics = runner.metrics(&RunSpec::base(
                workload,
                PrefetcherKind::sms_virtualized(pv_config),
            ));
            rows.push(PvCacheAblationRow {
                workload: workload.name().to_owned(),
                pvcache_sets: sets,
                coverage: metrics.coverage.coverage(),
                pvcache_hit_ratio: metrics.pv.map(|pv| pv.pvcache_hit_ratio()).unwrap_or(0.0),
                l2_request_increase: metrics.l2_request_increase_over(&dedicated),
                storage_bytes: pv_sms::VirtualizedPht::storage_budget(&pv_config).total_bytes(),
            });
        }
    }
    rows
}

/// Renders the ablation report.
pub fn report(runner: &Runner) -> String {
    let mut out = String::new();
    let mut table =
        Table::new("Ablation — PVCache capacity (supports the paper's choice of 8 sets)");
    table.header([
        "Workload",
        "PVCache sets",
        "Coverage",
        "PVCache hit ratio",
        "L2 request increase",
        "On-chip storage",
    ]);
    for row in pvcache_rows(runner) {
        table.row([
            row.workload,
            row.pvcache_sets.to_string(),
            pct(row.coverage),
            pct(row.pvcache_hit_ratio),
            pct(row.l2_request_increase),
            format!("{}B", row.storage_bytes),
        ]);
    }
    table.note(
        "Paper Section 4.3: growing the PVCache from 8 to 16 or 32 sets barely reduces the extra L2 traffic, so \
         8 sets is the sweet spot. Coverage should stay flat across the sweep while storage grows.",
    );
    out.push_str(&table.render());

    let mut packing = Table::new("Ablation — set packing (Figure 3a layout)");
    packing.header([
        "Layout",
        "Entries per 64B block",
        "PVTable footprint",
        "Requests per PHT-set fetch",
    ]);
    let packed = PvConfig::pv8();
    let ways = pv_core::PvLayout::of::<pv_sms::SmsEntry>(packed.block_bytes).entries_per_block();
    packing.row([
        "Packed (paper)".to_owned(),
        ways.to_string(),
        format!("{}KB", packed.table_bytes() / 1024),
        "1".to_owned(),
    ]);
    packing.row([
        "Unpacked (one entry per block)".to_owned(),
        "1".to_owned(),
        format!("{}KB", ways as u64 * packed.table_bytes() / 1024),
        ways.to_string(),
    ]);
    packing.note(
        "Packing a whole 11-way set into one block is what lets a single L2 request deliver every candidate \
         entry for a lookup; an unpacked layout would need 11x the memory requests and 11x the footprint.",
    );
    out.push_str(&packing.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_definitions_are_consistent() {
        assert_eq!(pvcache_sizes(), [4, 8, 16, 32]);
        assert_eq!(workloads().len(), 2);
    }

    #[test]
    fn storage_grows_with_pvcache_size() {
        let small = pv_sms::VirtualizedPht::storage_budget(&PvConfig::pv8().with_pvcache_sets(4))
            .total_bytes();
        let large = pv_sms::VirtualizedPht::storage_budget(&PvConfig::pv8().with_pvcache_sets(32))
            .total_bytes();
        assert!(small < large);
    }
}
