//! Heterogeneous multi-programmed mixes: four different workloads sharing
//! one memory system.
//!
//! The paper (and every other experiment in this harness) runs the same
//! workload on all four cores. Real consolidated servers do not: a web tier,
//! an OLTP database and two analytics queries share the L2 and the memory
//! channels. [`pv_sim::System::new_mixed`] opens that scenario class; this
//! experiment runs the canonical Apache+DB2+Qry1+Qry17 mix with no
//! prefetching, the dedicated-table SMS and the virtualized SMS-PV8, and
//! reports per-core IPC so the asymmetry is visible: the scan query core
//! speeds up the most, while the OLTP cores see little change but share
//! their L2 with everyone else's prefetches.

use crate::report::{pct, Table};
use crate::runner::{MixSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// The canonical heterogeneous mix: web + OLTP + two DSS queries.
pub fn canonical_mix() -> [WorkloadId; 4] {
    [
        WorkloadId::Apache,
        WorkloadId::Db2,
        WorkloadId::Qry1,
        WorkloadId::Qry17,
    ]
}

/// One mix row: a prefetcher configuration over the canonical mix.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Prefetcher label.
    pub config: String,
    /// IPC of each core (core `i` runs `canonical_mix()[i]`).
    pub per_core_ipc: Vec<f64>,
    /// Aggregate IPC (committed instructions / elapsed cycles).
    pub aggregate_ipc: f64,
    /// Prefetch coverage across the whole mix.
    pub coverage: f64,
    /// Predictor-classified L2 requests (zero for non-virtualized rows).
    pub l2_predictor_requests: u64,
}

/// The prefetcher configurations compared over the mix.
fn configurations() -> [PrefetcherKind; 3] {
    [
        PrefetcherKind::None,
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_pv8(),
    ]
}

/// Runs the canonical mix under every configuration.
pub fn rows(runner: &Runner) -> Vec<MixRow> {
    let specs: Vec<MixSpec> = configurations()
        .into_iter()
        .map(|prefetcher| MixSpec::base(canonical_mix(), prefetcher))
        .collect();
    runner.prefetch_mixed(&specs);
    specs
        .iter()
        .map(|spec| {
            let metrics = runner.metrics_mixed(spec);
            MixRow {
                config: metrics.configuration.clone(),
                per_core_ipc: metrics.per_core_ipc.clone(),
                aggregate_ipc: metrics.aggregate_ipc(),
                coverage: metrics.coverage.coverage(),
                l2_predictor_requests: metrics.hierarchy.l2_requests.predictor,
            }
        })
        .collect()
}

/// Renders the heterogeneous-mix report.
pub fn report(runner: &Runner) -> String {
    let mix = canonical_mix();
    let mut table = Table::new(format!(
        "Heterogeneous mix — {} sharing one L2 and memory",
        mix.iter().map(|w| w.name()).collect::<Vec<_>>().join("+")
    ));
    table.header([
        "Config",
        "IPC Apache",
        "IPC DB2",
        "IPC Qry1",
        "IPC Qry17",
        "Aggregate IPC",
        "Coverage",
        "L2 PV requests",
    ]);
    for row in rows(runner) {
        table.row([
            row.config.clone(),
            format!("{:.3}", row.per_core_ipc[0]),
            format!("{:.3}", row.per_core_ipc[1]),
            format!("{:.3}", row.per_core_ipc[2]),
            format!("{:.3}", row.per_core_ipc[3]),
            format!("{:.3}", row.aggregate_ipc),
            pct(row.coverage),
            row.l2_predictor_requests.to_string(),
        ]);
    }
    table.note(
        "Core i runs the i-th workload of the mix (System::new_mixed); all cores share the L2 \
         and DRAM. Workloads differ per core, so per-core IPCs are asymmetric: the scan query \
         gains the most from prefetching while the web/OLTP cores are bounded by their irregular \
         access components.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_mix_is_heterogeneous() {
        let mix = canonical_mix();
        let mut names: Vec<&str> = mix.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            4,
            "the canonical mix must not repeat workloads"
        );
    }
}
