//! Predictor cohabitation: do two predictors amortize one PVCache?
//!
//! The paper's economic argument (Section 1) is that virtualization lets
//! *many* predictors share one physical resource. This experiment runs SMS
//! and Markov **simultaneously** on every core — each table in its own
//! sub-region of one PV region — and compares the two ways of provisioning
//! the on-chip cache:
//!
//! * **dedicated** — two private PVCaches of C/2 sets each (`SMS+Markov-2xPV4`);
//! * **shared** — one table-tagged PVCache of C sets that both tables
//!   arbitrate for through a single proxy (`SMS+Markov-shPV8`).
//!
//! Total on-chip capacity is identical; only the partitioning differs. The
//! shared cache can shift capacity towards whichever table is hot, at the
//! price of cross-table conflict misses. Rows are reported under both the
//! `Ideal` and the `Queued` timing models — under `Queued` the two tables
//! also compete with demand traffic (and each other) for L2 ports, MSHRs
//! and DRAM bandwidth, and the per-table queueing delays show who paid.

use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, RunSpec, Runner};
use pv_mem::ContentionModel;
use pv_sim::{PrefetcherKind, PvTableStats};
use pv_workloads::WorkloadId;

/// Total PVCache sets per core given to the cohabiting pair (split 2 × C/2
/// in the dedicated arrangement, pooled in the shared one).
pub const TOTAL_PVCACHE_SETS: usize = 8;

/// PV bytes reserved per core: one 64 KB SMS table plus one 64 KB Markov
/// table.
pub const PV_BYTES_PER_CORE: u64 = 128 * 1024;

/// The workloads compared (a web, a scan and a balanced scan-join
/// workload).
pub fn workloads() -> [WorkloadId; 3] {
    [WorkloadId::Apache, WorkloadId::Qry1, WorkloadId::Qry17]
}

/// The two cohabiting configurations under comparison.
pub fn kinds() -> [PrefetcherKind; 2] {
    [
        PrefetcherKind::composite_dedicated(TOTAL_PVCACHE_SETS / 2),
        PrefetcherKind::composite_shared(TOTAL_PVCACHE_SETS),
    ]
}

/// The hierarchy variants the comparison runs under.
pub fn variants() -> [HierarchyVariant; 2] {
    [
        HierarchyVariant::PvRegion {
            bytes_per_core: PV_BYTES_PER_CORE,
            contention: ContentionModel::Ideal,
        },
        HierarchyVariant::PvRegion {
            bytes_per_core: PV_BYTES_PER_CORE,
            contention: ContentionModel::Queued,
        },
    ]
}

/// One cohabitation-comparison row.
#[derive(Debug, Clone)]
pub struct CohabitRow {
    /// Workload name.
    pub workload: String,
    /// Hierarchy variant label (`"pv128KB-ideal"` / `"pv128KB-queued"`).
    pub variant: String,
    /// Configuration label (`"SMS+Markov-2xPV4"` / `"SMS+Markov-shPV8"`).
    pub config: String,
    /// Speedup in aggregate IPC over the no-prefetch baseline on the same
    /// hierarchy variant.
    pub speedup: f64,
    /// Prefetch coverage achieved by the pair together.
    pub coverage: f64,
    /// Per-table proxy statistics (`"SMS"` then `"Markov"`).
    pub tables: Vec<PvTableStats>,
    /// Predictor-classified L2 requests observed by the hierarchy.
    pub l2_predictor_requests: u64,
}

impl CohabitRow {
    fn table(&self, label: &str) -> &PvTableStats {
        self.tables
            .iter()
            .find(|t| t.label == label)
            .expect("cohabiting runs report both tables")
    }
}

/// Runs the comparison grid and gathers one row per
/// (workload, variant, kind).
pub fn rows_for(runner: &Runner, workloads: &[WorkloadId]) -> Vec<CohabitRow> {
    let mut specs = Vec::new();
    for &workload in workloads {
        for variant in variants() {
            specs.push(RunSpec {
                workload,
                prefetcher: PrefetcherKind::None,
                hierarchy: variant,
            });
            for kind in kinds() {
                specs.push(RunSpec {
                    workload,
                    prefetcher: kind,
                    hierarchy: variant,
                });
            }
        }
    }
    runner.prefetch(&specs);

    let mut rows = Vec::new();
    for &workload in workloads {
        for variant in variants() {
            let baseline = runner.metrics(&RunSpec {
                workload,
                prefetcher: PrefetcherKind::None,
                hierarchy: variant,
            });
            for kind in kinds() {
                let metrics = runner.metrics(&RunSpec {
                    workload,
                    prefetcher: kind,
                    hierarchy: variant,
                });
                rows.push(CohabitRow {
                    workload: workload.name().to_owned(),
                    variant: variant.label(),
                    config: metrics.configuration.clone(),
                    speedup: metrics.speedup_over(&baseline),
                    coverage: metrics.coverage.coverage(),
                    tables: metrics.pv_tables.clone(),
                    l2_predictor_requests: metrics.hierarchy.l2_requests.predictor,
                });
            }
        }
    }
    rows
}

/// Renders the cohabitation report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new(format!(
        "Predictor cohabitation — SMS + Markov on one PV region, dedicated 2x{} vs shared {} \
         PVCache sets per core",
        TOTAL_PVCACHE_SETS / 2,
        TOTAL_PVCACHE_SETS
    ));
    table.header([
        "Workload",
        "Hierarchy",
        "Config",
        "Speedup vs NoPf",
        "Coverage",
        "SMS PVC$ hit",
        "Markov PVC$ hit",
        "SMS queue cyc",
        "Markov queue cyc",
        "L2 PV requests",
    ]);
    for row in rows_for(runner, &workloads()) {
        let sms = row.table("SMS");
        let markov = row.table("Markov");
        table.row([
            row.workload.clone(),
            row.variant.clone(),
            row.config.clone(),
            pct(row.speedup),
            pct(row.coverage),
            pct(sms.stats.pvcache_hit_ratio()),
            pct(markov.stats.pvcache_hit_ratio()),
            sms.stats.queue_delay_cycles.to_string(),
            markov.stats.queue_delay_cycles.to_string(),
            row.l2_predictor_requests.to_string(),
        ]);
    }
    table.note(
        "Both configurations run the unchanged SMS and Markov engines simultaneously on every \
         core, each table in its own sub-region of one 128 KB/core PV region. Total PVCache \
         capacity is identical; only the partitioning differs. Queue cycles are the per-table \
         waits the proxies' memory requests observed at contended shared resources (zero under \
         the ideal hierarchy).",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn shared_cache_serves_both_tables_on_every_row() {
        let runner = Runner::new(Scale::Smoke, 4);
        let rows = rows_for(&runner, &[WorkloadId::Qry1]);
        assert_eq!(rows.len(), kinds().len() * variants().len());
        for row in &rows {
            assert_eq!(
                row.tables.len(),
                2,
                "{}: both tables must report",
                row.config
            );
            for table in &row.tables {
                assert!(
                    table.stats.lookups > 0,
                    "{}: table {} must serve lookups",
                    row.config,
                    table.label
                );
            }
            assert!(row.l2_predictor_requests > 0);
            let queued = row.variant.ends_with("queued");
            let total_queue: u64 = row.tables.iter().map(|t| t.stats.queue_delay_cycles).sum();
            if queued {
                assert!(
                    total_queue > 0,
                    "{} {}: queued runs must observe per-table queueing",
                    row.config,
                    row.variant
                );
            } else {
                assert_eq!(total_queue, 0, "ideal runs must not observe queueing");
            }
        }
    }
}
