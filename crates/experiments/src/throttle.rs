//! Feedback-directed throttling: can a prefetcher that knows how useful
//! its prefetches are defend its performance when bandwidth gets scarce?
//!
//! The fixed-degree prefetchers issue every prediction regardless of how
//! many of the resulting lines are ever used, so under queued DRAM
//! contention ([`HierarchyVariant::QueuedDram`]) their useless prefetches
//! compete with the demand stream — and with their own PV metadata
//! traffic — for the same scarce data bus. This experiment sweeps the
//! bandwidth knob (cycles per 64-byte transfer, larger = slower) and
//! compares SMS-PV8 at a fixed degree against the `-throttled` variant,
//! whose issue degree adapts to the windowed prefetch accuracy `pv-mem`
//! samples.
//!
//! Two workloads bracket the feedback policy: the scan query (Qry1)
//! predicts accurately, stays inside the controller's dead band, and must
//! keep its large speedup; the web workload (Apache) mispredicts a third
//! of its prefetches, gets throttled, and at the scarcest point the
//! throttled variant must *strictly* reduce the DRAM queueing delay its
//! predictor traffic observes while matching or beating the fixed-degree
//! IPC — the acceptance invariant pinned in `tests/tests/throttling.rs`.
//!
//! The report also surfaces the baseline next-line instruction
//! prefetcher's issued/suppressed counters, which every configuration
//! runs but no experiment previously printed.

use crate::bandwidth::cycles_per_transfer_sweep;
use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// The workloads compared: an accurate predictor (stays unthrottled) and a
/// wasteful one (gets suppressed).
pub fn workloads() -> [WorkloadId; 2] {
    [WorkloadId::Qry1, WorkloadId::Apache]
}

/// The prefetchers compared at each bandwidth point.
pub fn configurations() -> [PrefetcherKind; 2] {
    [
        PrefetcherKind::sms_pv8(),
        PrefetcherKind::sms_pv8_throttled(),
    ]
}

/// One throttling-sweep row.
#[derive(Debug, Clone)]
pub struct ThrottleRow {
    /// Workload name.
    pub workload: String,
    /// Prefetcher label (`"SMS-PV8"` or `"SMS-PV8-throttled"`).
    pub config: String,
    /// DRAM data-bus cost in cycles per block for this point.
    pub cycles_per_transfer: u64,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Speedup over the no-prefetch baseline at the same bandwidth.
    pub speedup: f64,
    /// Total DRAM queueing-delay cycles charged to predictor traffic.
    pub pv_queue_cycles: u64,
    /// Total DRAM queueing-delay cycles charged to application traffic.
    pub app_queue_cycles: u64,
    /// Data prefetches issued into the L1s.
    pub prefetches_issued: u64,
    /// Predictions dropped by the throttle (zero for fixed-degree runs).
    pub dropped_prefetches: u64,
    /// Windowed prefetch accuracy the controller observed (zero for
    /// fixed-degree runs, which sample nothing).
    pub accuracy: f64,
    /// Deepest throttle level any core reached.
    pub max_level: u8,
    /// Next-line instruction prefetches issued (all configurations run the
    /// baseline I-prefetcher).
    pub next_line_issued: u64,
    /// Next-line duplicate-miss suppressions.
    pub next_line_suppressed: u64,
}

/// Runs the sweep and returns one row per (workload, prefetcher,
/// bandwidth point).
pub fn rows(runner: &Runner) -> Vec<ThrottleRow> {
    rows_for(runner, &workloads())
}

/// Runs the sweep for a subset of workloads (used by tests).
pub fn rows_for(runner: &Runner, workloads: &[WorkloadId]) -> Vec<ThrottleRow> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in workloads {
        for &cycles_per_transfer in &cycles_per_transfer_sweep() {
            let hierarchy = HierarchyVariant::QueuedDram {
                cycles_per_transfer,
            };
            specs.push(RunSpec {
                workload,
                prefetcher: PrefetcherKind::None,
                hierarchy,
            });
            for prefetcher in configurations() {
                specs.push(RunSpec {
                    workload,
                    prefetcher,
                    hierarchy,
                });
            }
        }
    }
    runner.prefetch(&specs);

    let mut rows = Vec::new();
    for &workload in workloads {
        for &cycles_per_transfer in &cycles_per_transfer_sweep() {
            let hierarchy = HierarchyVariant::QueuedDram {
                cycles_per_transfer,
            };
            let baseline = runner.metrics(&RunSpec {
                workload,
                prefetcher: PrefetcherKind::None,
                hierarchy,
            });
            for prefetcher in configurations() {
                let metrics = runner.metrics(&RunSpec {
                    workload,
                    prefetcher,
                    hierarchy,
                });
                let delay = metrics.hierarchy.dram_queue_delay;
                rows.push(ThrottleRow {
                    workload: workload.name().to_owned(),
                    config: metrics.configuration.clone(),
                    cycles_per_transfer,
                    ipc: metrics.aggregate_ipc(),
                    speedup: metrics.speedup_over(&baseline),
                    pv_queue_cycles: delay.predictor_cycles(),
                    app_queue_cycles: delay.application_cycles(),
                    prefetches_issued: metrics.prefetches_issued,
                    dropped_prefetches: metrics.dropped_prefetches(),
                    accuracy: metrics.throttle.as_ref().map_or(0.0, |t| t.accuracy()),
                    max_level: metrics.throttle.as_ref().map_or(0, |t| t.max_level_reached()),
                    next_line_issued: metrics.next_line_issued(),
                    next_line_suppressed: metrics.next_line_suppressed(),
                });
            }
        }
    }
    rows
}

/// Renders the throttling report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new(
        "Feedback-directed throttling — fixed vs adaptive issue degree under queued DRAM \
         contention",
    );
    table.header([
        "Workload",
        "Config",
        "Cycles/transfer",
        "Speedup vs NoPrefetch",
        "PV queue cycles",
        "App queue cycles",
        "Prefetches",
        "Dropped",
        "Window accuracy",
        "Max level",
        "NL issued",
        "NL suppressed",
    ]);
    for row in rows(runner) {
        table.row([
            row.workload,
            row.config,
            row.cycles_per_transfer.to_string(),
            pct(row.speedup),
            row.pv_queue_cycles.to_string(),
            row.app_queue_cycles.to_string(),
            row.prefetches_issued.to_string(),
            row.dropped_prefetches.to_string(),
            if row.accuracy > 0.0 {
                pct(row.accuracy)
            } else {
                "-".to_owned()
            },
            row.max_level.to_string(),
            row.next_line_issued.to_string(),
            row.next_line_suppressed.to_string(),
        ]);
    }
    table.note(
        "The throttle controller maps the windowed prefetch accuracy pv-mem samples (used vs \
         evicted-unused prefetched lines per epoch) to an issue-degree cap with hysteresis. \
         Accurate streams (Qry1) sit in the dead band and keep their full speedup; wasteful \
         streams (Apache) are suppressed, which frees DRAM bandwidth exactly when it is scarce: \
         at the slowest bus the throttled variant strictly reduces the queueing delay predictor \
         traffic observes while matching or beating fixed-degree IPC. NL columns are the \
         baseline next-line instruction prefetcher every configuration runs.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compared_configurations_are_fixed_and_throttled_variants_of_the_same_design() {
        let [fixed, throttled] = configurations();
        assert!(!fixed.is_throttled());
        assert!(throttled.is_throttled());
        assert_eq!(format!("{}-throttled", fixed.label()), throttled.label());
        assert_eq!(fixed.pv_bytes_per_core(), throttled.pv_bytes_per_core());
    }
}
