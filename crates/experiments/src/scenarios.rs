//! Non-stationary scenarios: how the adaptive machinery behaves when the
//! workload's statistics change mid-run.
//!
//! Every other experiment runs stationary streams, so the PR-5 throttle
//! controller and the cohabiting shared PV cache have only ever been
//! measured at their fixed points. This experiment drives them through the
//! `pv_trace::Scenario` compositions:
//!
//! * **Phase flip** (Qry1 ⇄ Apache): the throttled SMS-PV8 run under queued
//!   DRAM contention alternates between an accurate phase (Qry1 stays in
//!   the controller's dead band) and a wasteful one (Apache trips the
//!   suppression watermark). The report measures, per core, how many
//!   accuracy epochs the controller needs to *re-converge* — return to the
//!   unthrottled level after the stream flips back to accurate — which the
//!   probe-trickle relaxation path bounds.
//! * **Cohabitation under shifting demand**: the same flip under a shared
//!   SMS + Markov PV region, reporting per-table PVC$ hit rates when table
//!   demand moves mid-run instead of settling.
//! * **Flash crowd**, **diurnal**, and **antagonist** rows characterise
//!   coverage and IPC when load spikes, breathes, or a thrashing neighbour
//!   pollutes the shared L2.

use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, Runner, Scale, ScenarioSpec};
use pv_mem::ContentionModel;
use pv_sim::throttle::LevelChange;
use pv_sim::PrefetcherKind;
use pv_trace::Scenario;
use pv_workloads::WorkloadId;

/// Records per phase of the flip scenarios at a given scale — long enough
/// for several accuracy epochs (256 prefetch outcomes each) per phase, and
/// short enough that the measurement window sees multiple flips.
pub fn flip_period(scale: Scale) -> u64 {
    match scale {
        Scale::Smoke => 10_000,
        Scale::Quick => 30_000,
        Scale::Paper => 100_000,
    }
}

/// The phase-flip scenario the throttle re-convergence measurement uses:
/// accurate (Qry1) → wasteful (Apache) → accurate again, every
/// [`flip_period`] records.
pub fn throttle_flip(scale: Scale) -> Scenario {
    Scenario::PhaseFlip {
        a: WorkloadId::Qry1,
        b: WorkloadId::Apache,
        period: flip_period(scale),
    }
}

/// The scarce-bandwidth hierarchy the throttle scenarios run under: the
/// slowest point of the bandwidth sweep (where suppression matters most)
/// with a shortened accuracy epoch so the feedback loop completes several
/// epochs per phase and its re-convergence is observable within the run.
pub fn throttle_hierarchy() -> HierarchyVariant {
    HierarchyVariant::QueuedDramEpoch {
        cycles_per_transfer: 64,
        accuracy_epoch: 8,
    }
}

/// The characterisation scenarios (beyond the throttle flip) at a scale.
pub fn characterisation_scenarios(scale: Scale) -> Vec<Scenario> {
    let period = flip_period(scale);
    vec![
        Scenario::FlashCrowd {
            workload: WorkloadId::Oracle,
            calm: period,
            spike: period / 2,
            intensity_pct: 250,
        },
        Scenario::Diurnal {
            workload: WorkloadId::Db2,
            period: 2 * period,
            steps: 8,
            amplitude_pct: 60,
        },
        Scenario::Antagonist {
            workload: WorkloadId::Qry1,
        },
    ]
}

/// Per-core re-convergence measurement extracted from a throttle level
/// trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reconvergence {
    /// Core index.
    pub core: usize,
    /// Deepest throttle level the core reached.
    pub peak_level: u8,
    /// Total level transitions the core's controller made.
    pub transitions: usize,
    /// Accuracy epochs between the core last *reaching* its peak level and
    /// its subsequent return to level 0 — `None` if it never ratcheted up,
    /// or never relaxed back within the run.
    pub epochs_to_reconverge: Option<u64>,
}

/// Computes per-core re-convergence from a run's throttle level trace.
///
/// The trace records every level transition as `(core, 1-based accuracy
/// sample, new level)`. For each core the measurement takes the *last*
/// transition onto the core's peak level (the deepest suppression the
/// wasteful phase caused) and counts the epochs until the level next
/// returns to 0 (fully relaxed on the accurate phase).
pub fn reconvergence_per_core(trace: &[LevelChange], cores: usize) -> Vec<Reconvergence> {
    (0..cores)
        .map(|core| {
            let changes: Vec<&LevelChange> = trace.iter().filter(|c| c.core == core).collect();
            let peak_level = changes.iter().map(|c| c.level).max().unwrap_or(0);
            let epochs_to_reconverge = if peak_level == 0 {
                None
            } else {
                changes.iter().rposition(|c| c.level == peak_level).and_then(|peak_idx| {
                    let peak_sample = changes[peak_idx].sample;
                    changes[peak_idx..]
                        .iter()
                        .find(|c| c.level == 0)
                        .map(|back| back.sample - peak_sample)
                })
            };
            Reconvergence {
                core,
                peak_level,
                transitions: changes.len(),
                epochs_to_reconverge,
            }
        })
        .collect()
}

/// One characterisation row of the scenarios report.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name.
    pub scenario: String,
    /// Prefetcher label.
    pub config: String,
    /// Hierarchy label.
    pub hierarchy: String,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Prefetch coverage.
    pub coverage: f64,
    /// Data prefetches issued.
    pub prefetches_issued: u64,
    /// Predictions dropped by the throttle (zero when unthrottled).
    pub dropped_prefetches: u64,
    /// Deepest throttle level any core reached (zero when unthrottled).
    pub max_level: u8,
    /// Per-table PVC$ hit rates (`label → ratio`), for cohabiting runs.
    pub table_hit_rates: Vec<(String, f64)>,
}

fn row_for(runner: &Runner, spec: &ScenarioSpec) -> ScenarioRow {
    let metrics = runner.metrics_scenario(spec);
    ScenarioRow {
        scenario: spec.scenario.name(),
        config: metrics.configuration.clone(),
        hierarchy: spec.hierarchy.label(),
        ipc: metrics.aggregate_ipc(),
        coverage: metrics.coverage.coverage(),
        prefetches_issued: metrics.prefetches_issued,
        dropped_prefetches: metrics.dropped_prefetches(),
        max_level: metrics.throttle.as_ref().map_or(0, |t| t.max_level_reached()),
        table_hit_rates: metrics
            .pv_tables
            .iter()
            .map(|t| (t.label.clone(), t.stats.pvcache_hit_ratio()))
            .collect(),
    }
}

/// The specs the experiment runs at a scale: the throttled and fixed-degree
/// flips under scarce bandwidth, the cohabiting flip, and the
/// characterisation scenarios with SMS-PV8 on the baseline hierarchy.
pub fn specs(scale: Scale) -> Vec<ScenarioSpec> {
    let mut specs = vec![
        ScenarioSpec {
            scenario: throttle_flip(scale),
            prefetcher: PrefetcherKind::sms_pv8_throttled(),
            hierarchy: throttle_hierarchy(),
        },
        ScenarioSpec {
            scenario: throttle_flip(scale),
            prefetcher: PrefetcherKind::sms_pv8(),
            hierarchy: throttle_hierarchy(),
        },
        ScenarioSpec {
            scenario: throttle_flip(scale),
            prefetcher: PrefetcherKind::composite_shared(8),
            hierarchy: HierarchyVariant::PvRegion {
                bytes_per_core: PrefetcherKind::composite_shared(8).pv_bytes_per_core(),
                contention: ContentionModel::Ideal,
            },
        },
    ];
    for scenario in characterisation_scenarios(scale) {
        specs.push(ScenarioSpec::base(scenario, PrefetcherKind::sms_pv8()));
    }
    specs
}

/// Runs every scenario spec and returns the characterisation rows.
pub fn rows(runner: &Runner) -> Vec<ScenarioRow> {
    let specs = specs(runner.scale());
    runner.prefetch_scenarios(&specs);
    specs.iter().map(|spec| row_for(runner, spec)).collect()
}

/// Renders the scenarios report: the characterisation table plus the
/// throttle re-convergence table for the flip run.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new(
        "Non-stationary scenarios — phase flips, flash crowds, diurnal load, antagonist core",
    );
    table.header([
        "Scenario",
        "Config",
        "Hierarchy",
        "IPC",
        "Coverage",
        "Prefetches",
        "Dropped",
        "Max level",
        "PVC$ hit rates",
    ]);
    for row in rows(runner) {
        let hit_rates = if row.table_hit_rates.is_empty() {
            "-".to_owned()
        } else {
            row.table_hit_rates
                .iter()
                .map(|(label, ratio)| format!("{label} {}", pct(*ratio)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        table.row([
            row.scenario,
            row.config,
            row.hierarchy,
            format!("{:.3}", row.ipc),
            pct(row.coverage),
            row.prefetches_issued.to_string(),
            row.dropped_prefetches.to_string(),
            row.max_level.to_string(),
            hit_rates,
        ]);
    }
    table.note(
        "Scenarios compose the synthetic generators into non-stationary streams (pv-trace). The \
         flip rows alternate an accurate phase (Qry1) with a wasteful one (Apache); under queued \
         DRAM the throttled variant suppresses the wasteful phases and relaxes again on the \
         accurate ones, while the cohabiting run shows per-table PVC$ hit rates under shifting \
         table demand.",
    );
    let mut out = table.render();

    let spec = ScenarioSpec {
        scenario: throttle_flip(runner.scale()),
        prefetcher: PrefetcherKind::sms_pv8_throttled(),
        hierarchy: throttle_hierarchy(),
    };
    let metrics = runner.metrics_scenario(&spec);
    if let Some(throttle) = &metrics.throttle {
        let mut reconverge = Table::new(
            "Throttle re-convergence across the Qry1→Apache→Qry1 phase flip (accuracy epochs)",
        );
        reconverge.header(["Core", "Peak level", "Transitions", "Epochs to re-converge"]);
        for row in reconvergence_per_core(&throttle.level_trace, metrics.per_core_ipc.len()) {
            reconverge.row([
                row.core.to_string(),
                row.peak_level.to_string(),
                row.transitions.to_string(),
                row.epochs_to_reconverge.map_or("-".to_owned(), |e| e.to_string()),
            ]);
        }
        reconverge.note(
            "Epochs between a core last reaching its peak suppression level and returning to \
             level 0 once the stream flips back to the accurate phase. The probe trickle (one \
             prediction in 16 survives even at the drop level) keeps the accuracy signal alive, \
             which is what bounds this recovery.",
        );
        out.push('\n');
        out.push_str(&reconverge.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(core: usize, sample: u64, level: u8) -> LevelChange {
        LevelChange {
            core,
            sample,
            level,
        }
    }

    #[test]
    fn reconvergence_measures_peak_to_zero() {
        let trace = vec![
            change(0, 3, 1),
            change(0, 4, 2),
            change(0, 9, 1),
            change(0, 11, 0),
            change(1, 5, 1),
        ];
        let rows = reconvergence_per_core(&trace, 2);
        assert_eq!(rows[0].peak_level, 2);
        assert_eq!(rows[0].transitions, 4);
        assert_eq!(rows[0].epochs_to_reconverge, Some(7), "samples 4 → 11");
        assert_eq!(rows[1].peak_level, 1);
        assert_eq!(
            rows[1].epochs_to_reconverge, None,
            "core 1 never relaxed back"
        );
    }

    #[test]
    fn reconvergence_uses_the_last_visit_to_the_peak() {
        // Two excursions to level 2; the measurement starts from the second.
        let trace = vec![
            change(0, 2, 2),
            change(0, 6, 0),
            change(0, 10, 2),
            change(0, 13, 0),
        ];
        let rows = reconvergence_per_core(&trace, 1);
        assert_eq!(rows[0].epochs_to_reconverge, Some(3), "samples 10 → 13");
    }

    #[test]
    fn quiet_cores_report_no_excursion() {
        let rows = reconvergence_per_core(&[], 4);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.peak_level == 0));
        assert!(rows.iter().all(|r| r.epochs_to_reconverge.is_none()));
    }

    #[test]
    fn spec_list_covers_throttle_cohabit_and_characterisation() {
        let specs = specs(Scale::Smoke);
        assert_eq!(specs.len(), 6);
        assert!(specs[0].prefetcher.is_throttled());
        assert!(!specs[1].prefetcher.is_throttled());
        assert!(matches!(
            specs[2].hierarchy,
            HierarchyVariant::PvRegion { .. }
        ));
        let flip = throttle_flip(Scale::Smoke);
        assert_eq!(flip.name(), "flip:Qry1>Apache@10000");
    }

    #[test]
    fn periods_grow_with_scale() {
        assert!(flip_period(Scale::Smoke) < flip_period(Scale::Quick));
        assert!(flip_period(Scale::Quick) < flip_period(Scale::Paper));
    }
}
