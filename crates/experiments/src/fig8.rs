//! Figure 8: the PV-8 off-chip traffic increase split into application data
//! and predictor (PV) data.
//!
//! The paper's two observations: predictor entries cached in the L2 do not
//! meaningfully pollute it (application-data misses grow by ~1% on average),
//! and almost all PVProxy requests are filled from the L2, so very little
//! predictor data travels off-chip.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One workload's Figure 8 decomposition.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: String,
    /// Increase in off-chip L2 misses due to application data, relative to
    /// the non-virtualized configuration's off-chip traffic.
    pub miss_increase_app: f64,
    /// Increase in off-chip L2 misses due to predictor data.
    pub miss_increase_pv: f64,
    /// Increase in off-chip write-backs due to application data.
    pub writeback_increase_app: f64,
    /// Increase in off-chip write-backs due to predictor data.
    pub writeback_increase_pv: f64,
    /// Fraction of PVProxy memory requests satisfied on chip (by the L2).
    pub pv_requests_filled_by_l2: f64,
}

/// Runs the PV-8 decomposition for every workload.
pub fn rows(runner: &Runner) -> Vec<Fig8Row> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in &WorkloadId::all() {
        specs.push(RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        specs.push(RunSpec::base(workload, PrefetcherKind::sms_pv8()));
    }
    runner.prefetch(&specs);
    WorkloadId::all()
        .iter()
        .map(|&workload| {
            let dedicated = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
            let pv = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_pv8()));
            let base = dedicated.offchip_blocks().max(1) as f64;
            let miss_app = pv.hierarchy.l2_misses.application as f64
                - dedicated.hierarchy.l2_misses.application as f64;
            let miss_pv = pv.hierarchy.l2_misses.predictor as f64;
            let wb_app = pv.hierarchy.l2_writebacks.application as f64
                - dedicated.hierarchy.l2_writebacks.application as f64;
            let wb_pv = pv.hierarchy.l2_writebacks.predictor as f64;
            let filled_on_chip = if pv.hierarchy.l2_requests.predictor == 0 {
                0.0
            } else {
                1.0 - pv.hierarchy.l2_misses.predictor as f64
                    / pv.hierarchy.l2_requests.predictor as f64
            };
            Fig8Row {
                workload: workload.name().to_owned(),
                miss_increase_app: miss_app / base,
                miss_increase_pv: miss_pv / base,
                writeback_increase_app: wb_app / base,
                writeback_increase_pv: wb_pv / base,
                pv_requests_filled_by_l2: filled_on_chip,
            }
        })
        .collect()
}

/// Renders the Figure 8 report.
pub fn report(runner: &Runner) -> String {
    let rows = rows(runner);
    let mut table =
        Table::new("Figure 8 — PV-8 off-chip traffic increase split into application and PV data");
    table.header([
        "Workload",
        "L2 misses (app)",
        "L2 misses (PV)",
        "Writebacks (app)",
        "Writebacks (PV)",
        "PV requests filled on chip",
    ]);
    let mut filled = 0.0;
    for row in &rows {
        filled += row.pv_requests_filled_by_l2;
        table.row([
            row.workload.clone(),
            pct(row.miss_increase_app),
            pct(row.miss_increase_pv),
            pct(row.writeback_increase_app),
            pct(row.writeback_increase_pv),
            pct(row.pv_requests_filled_by_l2),
        ]);
    }
    table.note(format!(
        "Measured mean fraction of PVProxy requests filled by the L2: {} (paper: more than 98% across all \
         applications; application-data misses grow by ~1% on average, at most 2.5%).",
        pct(filled / rows.len().max(1) as f64)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn smoke_run_shows_pv_data_served_from_l2() {
        let runner = Runner::new(Scale::Smoke, 4);
        let rows = rows_for_one(&runner, WorkloadId::Qry1);
        assert!(
            rows.pv_requests_filled_by_l2 > 0.5,
            "most PV requests should be L2 hits"
        );
    }

    /// Helper used by the smoke test: single-workload version of [`rows`].
    fn rows_for_one(runner: &Runner, workload: WorkloadId) -> Fig8Row {
        let dedicated = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        let pv = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_pv8()));
        let base = dedicated.offchip_blocks().max(1) as f64;
        Fig8Row {
            workload: workload.name().to_owned(),
            miss_increase_app: 0.0,
            miss_increase_pv: pv.hierarchy.l2_misses.predictor as f64 / base,
            writeback_increase_app: 0.0,
            writeback_increase_pv: pv.hierarchy.l2_writebacks.predictor as f64 / base,
            pv_requests_filled_by_l2: if pv.hierarchy.l2_requests.predictor == 0 {
                0.0
            } else {
                1.0 - pv.hierarchy.l2_misses.predictor as f64
                    / pv.hierarchy.l2_requests.predictor as f64
            },
        }
    }
}
