//! Figure 6: percentage increase of L2 memory requests due to
//! virtualization, as a function of the number of PVCache sets.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One bar of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// Virtualized configuration label (`PV-8`, `PV-16`).
    pub config: String,
    /// Relative increase in L2 requests versus the non-virtualized SMS with
    /// the same (1K-set, 11-way) PHT.
    pub l2_request_increase: f64,
    /// PVCache hit ratio of the proxy (diagnostic the paper discusses:
    /// entries are used once or exhibit very short-term temporal locality).
    pub pvcache_hit_ratio: f64,
}

/// The virtualized configurations Figure 6 compares.
pub fn configurations() -> Vec<PrefetcherKind> {
    vec![PrefetcherKind::sms_pv8(), PrefetcherKind::sms_pv16()]
}

/// Runs the comparison for every workload.
pub fn rows(runner: &Runner) -> Vec<Fig6Row> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in &WorkloadId::all() {
        specs.push(RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        for config in configurations() {
            specs.push(RunSpec::base(workload, config));
        }
    }
    runner.prefetch(&specs);
    let mut rows = Vec::new();
    for &workload in &WorkloadId::all() {
        let dedicated = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        for config in configurations() {
            let virtualized = runner.metrics(&RunSpec::base(workload, config.clone()));
            rows.push(Fig6Row {
                workload: workload.name().to_owned(),
                config: config.label().replace("SMS-", ""),
                l2_request_increase: virtualized.l2_request_increase_over(&dedicated),
                pvcache_hit_ratio: virtualized.pv.map(|pv| pv.pvcache_hit_ratio()).unwrap_or(0.0),
            });
        }
    }
    rows
}

/// Renders the Figure 6 report.
pub fn report(runner: &Runner) -> String {
    let rows = rows(runner);
    let mut table = Table::new("Figure 6 — increase of L2 requests due to virtualization");
    table.header([
        "Workload",
        "PVCache",
        "L2 request increase",
        "PVCache hit ratio",
    ]);
    let mut pv8_total = 0.0;
    let mut pv8_count = 0;
    for row in &rows {
        if row.config == "PV8" {
            pv8_total += row.l2_request_increase;
            pv8_count += 1;
        }
        table.row([
            row.workload.clone(),
            row.config.clone(),
            pct(row.l2_request_increase),
            pct(row.pvcache_hit_ratio),
        ]);
    }
    let average = if pv8_count > 0 {
        pv8_total / pv8_count as f64
    } else {
        0.0
    };
    table.note(format!(
        "Measured PV-8 average increase: {} (paper: 25%-44% per workload, 33% on average; growing the PVCache \
         to 16 sets changes little).",
        pct(average)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_virtualized_configurations_are_compared() {
        let labels: Vec<String> = configurations().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["SMS-PV8", "SMS-PV16"]);
    }
}
