//! Report rendering helpers: markdown tables and percentage formatting.

/// A simple markdown table builder used by every experiment report.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the column headers.
    pub fn header<I, S>(&mut self, columns: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            self.header.is_empty() || row.len() == self.header.len(),
            "row has {} cells but the header has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        if !self.header.is_empty() {
            let widths: Vec<usize> = (0..self.header.len())
                .map(|col| {
                    self.rows
                        .iter()
                        .map(|row| row[col].len())
                        .chain(std::iter::once(self.header[col].len()))
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            let format_row = |cells: &[String]| {
                let padded: Vec<String> = cells
                    .iter()
                    .enumerate()
                    .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                    .collect();
                format!("| {} |\n", padded.join(" | "))
            };
            out.push_str(&format_row(&self.header));
            let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&format!("| {} |\n", dashes.join(" | ")));
            for row in &self.rows {
                out.push_str(&format_row(row));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }
}

/// Formats a ratio as a percentage with one decimal (e.g. `0.184` → `18.4%`).
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Formats a byte count the way the paper writes storage sizes
/// (kilobytes with three decimals above 1 KB, bytes below).
pub fn bytes(value: u64) -> String {
    if value >= 1024 {
        format!("{:.3}KB", value as f64 / 1024.0)
    } else {
        format!("{value}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut table = Table::new("Demo");
        table.header(["a", "b"]);
        table.row(["1", "2"]);
        table.row(["longer", "4"]);
        table.note("a note");
        let rendered = table.render();
        assert!(rendered.contains("### Demo"));
        assert!(rendered.contains("| a "));
        assert!(rendered.contains("| longer | 4"));
        assert!(rendered.contains("> a note"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn pct_and_bytes_format() {
        assert_eq!(pct(0.1844), "18.4%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(bytes(889), "889B");
        assert_eq!(bytes(60_544), "59.125KB");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut table = Table::new("Demo");
        table.header(["a", "b"]);
        table.row(["only one"]);
    }
}
