//! Bandwidth sensitivity: where virtualized prefetchers win or lose once
//! predictor traffic actually competes with demand traffic.
//!
//! The paper argues PV's extra memory traffic is small enough not to hurt —
//! an argument that is only testable when the memory system has *finite*
//! bandwidth. This experiment runs under [`ContentionModel::Queued`]
//! (`HierarchyVariant::QueuedDram`) and sweeps the DRAM data-bus transfer
//! cost from fast to slow, comparing the dedicated-table SMS prefetcher
//! against SMS-PV8 at every point. Reported per row: speedup over the
//! no-prefetch baseline *at the same bandwidth*, the measured mean DRAM
//! queueing delay split into application and predictor traffic, and the
//! aggregate data-bus utilization. As bandwidth shrinks the queueing delay
//! must rise monotonically — the contention model's acceptance invariant —
//! and the virtualized design's advantage erodes first, because its PHT
//! misses consume the same scarce bus the demand stream needs.
//!
//! [`ContentionModel::Queued`]: pv_mem::ContentionModel

use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;
use std::sync::Arc;

/// The swept DRAM data-bus costs in cycles per 64-byte block, fastest
/// first. 16 is the baseline 4-byte-per-cycle bus of `DramConfig::paper`;
/// 128 is a starved half-byte-per-cycle bus. Decreasing bandwidth =
/// increasing cycles per transfer.
pub fn cycles_per_transfer_sweep() -> [u64; 4] {
    [16, 32, 64, 128]
}

/// The workloads compared: the scan query (largest prefetching upside) and
/// a web workload (large footprint, more irregular traffic).
pub fn workloads() -> [WorkloadId; 2] {
    [WorkloadId::Qry1, WorkloadId::Apache]
}

/// One bandwidth-sweep row.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Workload name.
    pub workload: String,
    /// Prefetcher label (`"SMS-1K-11a"` or `"SMS-PV8"`).
    pub config: String,
    /// DRAM data-bus cost in cycles per block for this point.
    pub cycles_per_transfer: u64,
    /// Speedup over the no-prefetch baseline at the same bandwidth.
    pub speedup: f64,
    /// Mean DRAM queueing delay per application-class read, in cycles.
    pub app_queue_delay: f64,
    /// Mean DRAM queueing delay per predictor-class read, in cycles.
    pub pv_queue_delay: f64,
    /// Total queueing-delay cycles charged to application traffic.
    pub app_queue_cycles: u64,
    /// Total queueing-delay cycles charged to predictor traffic.
    pub pv_queue_cycles: u64,
    /// Aggregate DRAM data-bus utilization (channel-cycles / elapsed).
    pub dram_utilization: f64,
}

/// The prefetchers compared at each bandwidth point.
fn configurations() -> [PrefetcherKind; 2] {
    [PrefetcherKind::sms_1k_11a(), PrefetcherKind::sms_pv8()]
}

/// Runs the sweep and returns one row per (workload, prefetcher,
/// bandwidth point).
pub fn rows(runner: &Runner) -> Vec<BandwidthRow> {
    rows_for(runner, &workloads())
}

/// Runs the sweep for a subset of workloads (used by tests).
pub fn rows_for(runner: &Runner, workloads: &[WorkloadId]) -> Vec<BandwidthRow> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in workloads {
        for &cycles_per_transfer in &cycles_per_transfer_sweep() {
            let hierarchy = HierarchyVariant::QueuedDram {
                cycles_per_transfer,
            };
            specs.push(RunSpec {
                workload,
                prefetcher: PrefetcherKind::None,
                hierarchy,
            });
            for prefetcher in configurations() {
                specs.push(RunSpec {
                    workload,
                    prefetcher,
                    hierarchy,
                });
            }
        }
    }
    runner.prefetch(&specs);

    let mut rows = Vec::new();
    for &workload in workloads {
        for &cycles_per_transfer in &cycles_per_transfer_sweep() {
            let hierarchy = HierarchyVariant::QueuedDram {
                cycles_per_transfer,
            };
            let baseline = runner.metrics(&RunSpec {
                workload,
                prefetcher: PrefetcherKind::None,
                hierarchy,
            });
            for prefetcher in configurations() {
                let metrics: Arc<_> = runner.metrics(&RunSpec {
                    workload,
                    prefetcher,
                    hierarchy,
                });
                let delay = metrics.hierarchy.dram_queue_delay;
                rows.push(BandwidthRow {
                    workload: workload.name().to_owned(),
                    config: metrics.configuration.clone(),
                    cycles_per_transfer,
                    speedup: metrics.speedup_over(&baseline),
                    app_queue_delay: metrics.dram_queue_delay_application(),
                    pv_queue_delay: metrics.dram_queue_delay_predictor(),
                    app_queue_cycles: delay.application_cycles(),
                    pv_queue_cycles: delay.predictor_cycles(),
                    dram_utilization: metrics.dram_utilization(),
                });
            }
        }
    }
    rows
}

/// Renders the bandwidth-sensitivity report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new(
        "Bandwidth sensitivity — dedicated vs virtualized SMS under queued DRAM contention",
    );
    table.header([
        "Workload",
        "Config",
        "Cycles/transfer",
        "Speedup vs NoPrefetch",
        "App queue cycles",
        "PV queue cycles",
        "App queue delay (cyc/read)",
        "PV queue delay (cyc/read)",
        "DRAM bus utilization",
    ]);
    for row in rows(runner) {
        table.row([
            row.workload,
            row.config,
            row.cycles_per_transfer.to_string(),
            pct(row.speedup),
            row.app_queue_cycles.to_string(),
            row.pv_queue_cycles.to_string(),
            format!("{:.1}", row.app_queue_delay),
            format!("{:.1}", row.pv_queue_delay),
            pct(row.dram_utilization),
        ]);
    }
    table.note(
        "ContentionModel::Queued: L2 banks, MSHR files and DRAM channel queues are all finite, so \
         predictor traffic competes with demand traffic for the same bus. Queueing delay must rise \
         monotonically as the configured bandwidth falls (cycles/transfer grows); the virtualized \
         design loses its edge first because PHT misses spend the bandwidth the demand stream needs.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ordered_fastest_first() {
        let sweep = cycles_per_transfer_sweep();
        assert!(sweep.windows(2).all(|pair| pair[0] < pair[1]));
    }
}
