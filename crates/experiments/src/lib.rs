//! # pv-experiments — reproduction harness
//!
//! One module per table/figure of the paper's evaluation (Section 4), plus a
//! shared [`Runner`] that executes and caches simulation runs, and report
//! helpers that render each experiment as a markdown table with the paper's
//! reference values alongside the measured ones.
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! cargo run --release -p pv-experiments --bin reproduce -- all --scale quick
//! cargo run --release -p pv-experiments --bin reproduce -- fig9 --scale paper
//! ```
//!
//! Every experiment is also exposed as a library function so the Criterion
//! benches in `pv-bench` and the integration tests can call it directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod backends;
pub mod bandwidth;
pub mod cohabit;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod mixes;
pub mod repartition;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod sec46;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod throttle;

pub use fleet::{run_fleet, FleetGrid, FleetPoint, FleetSummary, FleetWorkload};
pub use report::Table;
pub use runner::{HierarchyVariant, MixSpec, RunSpec, Runner, Scale, ScenarioSpec};

/// Identifier of one reproducible experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experiment {
    /// Table 1: system configuration.
    Table1,
    /// Table 2: workloads.
    Table2,
    /// Table 3: PHT storage per configuration.
    Table3,
    /// Figure 4: SMS performance potential vs PHT size.
    Fig4,
    /// Figure 5: coverage across all intermediate PHT sizes.
    Fig5,
    /// Figure 6: increase in L2 requests due to virtualization.
    Fig6,
    /// Figure 7: off-chip bandwidth increase (L2 misses + write-backs).
    Fig7,
    /// Figure 8: off-chip increase split into application vs PV data.
    Fig8,
    /// Figure 9: speedup of dedicated and virtualized prefetchers.
    Fig9,
    /// Figure 10: sensitivity to L2 cache size.
    Fig10,
    /// Figure 11: sensitivity to L2 latency.
    Fig11,
    /// Section 4.6: PVProxy storage breakdown.
    Sec46,
    /// Ablation studies beyond the paper's figures.
    Ablation,
    /// Backend generality: SMS and Markov on the same substrate.
    Backends,
    /// Bandwidth sensitivity under queued DRAM contention.
    Bandwidth,
    /// Heterogeneous multi-programmed workload mixes.
    Mixes,
    /// Predictor cohabitation: SMS + Markov sharing one PV region and one
    /// PVCache (dedicated vs shared provisioning).
    Cohabit,
    /// Feedback-directed throttling: fixed vs adaptive issue degree under
    /// queued DRAM contention.
    Throttle,
    /// Non-stationary scenarios: phase flips, flash crowds, diurnal load,
    /// and an antagonist core (trace-composed workloads).
    Scenarios,
    /// Dynamic PV-region repartitioning: static vs utility-driven sub-region
    /// boundaries on a scarce region, across non-stationary scenarios.
    Repartition,
}

impl Experiment {
    /// Every experiment, in presentation order.
    pub fn all() -> Vec<Experiment> {
        use Experiment::*;
        vec![
            Table1,
            Table2,
            Table3,
            Fig4,
            Fig5,
            Fig6,
            Fig7,
            Fig8,
            Fig9,
            Fig10,
            Fig11,
            Sec46,
            Ablation,
            Backends,
            Bandwidth,
            Mixes,
            Cohabit,
            Throttle,
            Scenarios,
            Repartition,
        ]
    }

    /// Command-line name (e.g. `"fig4"`).
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Fig4 => "fig4",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Sec46 => "sec46",
            Experiment::Ablation => "ablation",
            Experiment::Backends => "backends",
            Experiment::Bandwidth => "bandwidth",
            Experiment::Mixes => "mixes",
            Experiment::Cohabit => "cohabit",
            Experiment::Throttle => "throttle",
            Experiment::Scenarios => "scenarios",
            Experiment::Repartition => "repartition",
        }
    }

    /// Parses a command-line name.
    pub fn from_name(name: &str) -> Option<Experiment> {
        Experiment::all().into_iter().find(|e| e.name() == name)
    }

    /// Runs the experiment and renders its report.
    pub fn run(self, runner: &Runner) -> String {
        match self {
            Experiment::Table1 => table1::report(),
            Experiment::Table2 => table2::report(),
            Experiment::Table3 => table3::report(),
            Experiment::Fig4 => fig4::report(runner),
            Experiment::Fig5 => fig5::report(runner),
            Experiment::Fig6 => fig6::report(runner),
            Experiment::Fig7 => fig7::report(runner),
            Experiment::Fig8 => fig8::report(runner),
            Experiment::Fig9 => fig9::report(runner),
            Experiment::Fig10 => fig10::report(runner),
            Experiment::Fig11 => fig11::report(runner),
            Experiment::Sec46 => sec46::report(),
            Experiment::Ablation => ablation::report(runner),
            Experiment::Backends => backends::report(runner),
            Experiment::Bandwidth => bandwidth::report(runner),
            Experiment::Mixes => mixes::report(runner),
            Experiment::Cohabit => cohabit::report(runner),
            Experiment::Throttle => throttle::report(runner),
            Experiment::Scenarios => scenarios::report(runner),
            Experiment::Repartition => repartition::report(runner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_round_trip() {
        for experiment in Experiment::all() {
            assert_eq!(Experiment::from_name(experiment.name()), Some(experiment));
        }
        assert_eq!(Experiment::from_name("fig99"), None);
    }

    #[test]
    fn static_reports_render_without_simulation() {
        assert!(table1::report().contains("L2"));
        assert!(table2::report().contains("Oracle"));
        assert!(table3::report().contains("1K-16a"));
        assert!(sec46::report().contains("889"));
    }
}
